//! The replay differential: the serving pipeline with the deterministic
//! engine as oracle.
//!
//! **Exact side** — `unit_server::replay` pushes the golden trace through
//! a real bounded MPSC channel (producer thread → engine consumer) under
//! a `VirtualClock`, and must be `report_digest`-**bit-identical** to a
//! direct `run_simulation` of the same trace/policy/config — across all
//! 4 policies × 3 scheduling disciplines. This pins that the channelled
//! ingress adds *nothing* to behaviour: the live server's pipeline shape
//! is behaviour-free, so any wall-clock divergence is attributable to
//! wall time alone.
//!
//! **Statistical side** — a `WallClock` serve of a compressed trace must
//! conserve queries (every submitted query reaches exactly one outcome),
//! emit a well-formed per-worker observability stream (monotone times,
//! dense sequence numbers within each worker lane), and land its outcome
//! *distribution* within a stated tolerance of the oracle's.

use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};
use unit_core::clock::{Clock, VirtualClock};
use unit_core::config::UnitConfig;
use unit_core::policy::Policy;
use unit_core::time::SimDuration;
use unit_core::time::SimTime;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_obs::ObsEvent;
use unit_server::{outcome_agreement, replay, serve, MemBackend, ServeConfig, WallClock};
use unit_sim::{report_digest, run_simulation, SchedulingDiscipline, SimConfig};
use unit_workload::{
    QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume,
};

const SCALE: u64 = 8;
const SEED: u64 = 0x5EED_0011;
/// Ingress channel bound for the replay pipeline (arrivals in flight).
const CHUNK: usize = 64;

/// The golden workload at scale=8: fig3's med-unif bundle (the same
/// bundle the cluster differential pins against).
fn golden_bundle() -> TraceBundle {
    let qcfg = QueryTraceConfig::default().scaled_down(SCALE);
    let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
        .with_total((UpdateVolume::Med.total_updates() / SCALE).max(1));
    TraceBundle::generate(&qcfg, &ucfg)
}

fn sim_config(horizon: SimDuration, discipline: SchedulingDiscipline) -> SimConfig {
    SimConfig::new(horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10))
        .with_discipline(discipline)
}

const DISCIPLINES: [(SchedulingDiscipline, &str); 3] = [
    (SchedulingDiscipline::DualPriorityEdf, "dual"),
    (SchedulingDiscipline::GlobalEdf, "global"),
    (SchedulingDiscipline::QueryFirst, "qfirst"),
];

/// For every discipline: digest(channelled replay under VirtualClock) ==
/// digest(direct simulation), and the virtual clock ends at the horizon.
fn differential<P: Policy + Send>(policy_name: &str, make: impl Fn() -> P) {
    let bundle = golden_bundle();
    for (discipline, dname) in DISCIPLINES {
        let cfg = sim_config(bundle.horizon, discipline);
        let direct = run_simulation(&bundle.trace, make(), cfg);
        let clock = VirtualClock::new();
        let replayed = replay(&bundle.trace, make(), cfg, CHUNK, &clock);
        assert_eq!(
            report_digest(&replayed),
            report_digest(&direct),
            "{policy_name}/{dname}: channelled replay diverged from the engine \
             (usm {} vs {})",
            replayed.average_usm(),
            direct.average_usm(),
        );
        assert_eq!(
            clock.now(),
            SimTime::ZERO + cfg.horizon,
            "{policy_name}/{dname}: replay clock did not reach the horizon"
        );
    }
}

#[test]
fn replay_is_bit_identical_unit() {
    differential("UNIT", || {
        UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(SEED))
    });
}

#[test]
fn replay_is_bit_identical_imu() {
    differential("IMU", ImuPolicy::new);
}

#[test]
fn replay_is_bit_identical_odu() {
    differential("ODU", OduPolicy::new);
}

#[test]
fn replay_is_bit_identical_qmf() {
    differential("QMF", QmfPolicy::default);
}

#[test]
fn wall_clock_smoke_conserves_and_streams_monotone_obs() {
    // A heavily scaled-down bundle compressed ~60,000x: the wall serve
    // takes ~0.5 s while keeping scaled deadlines (16 µs – 1.6 ms) wide
    // enough that the run exercises all outcome classes without being
    // degenerate.
    let qcfg = QueryTraceConfig::default().scaled_down(128);
    let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
        .with_total((UpdateVolume::Med.total_updates() / 128).max(1));
    let bundle = TraceBundle::generate(&qcfg, &ucfg);
    let time_scale = (bundle.horizon.0 / 500_000).max(1); // ≈0.5 s wall

    let cfg = ServeConfig::new(4, time_scale)
        .with_weights(UsmWeights::low_high_cfm())
        .with_observation();
    let clock = WallClock::new();
    let backend = MemBackend::new(bundle.trace.n_items, 8);
    let report = serve(&cfg, &clock, &backend, &bundle.trace, bundle.horizon, |i| {
        UnitPolicy::new(
            UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(SEED + i as u64),
        )
    });

    // Conservation: every submitted query reached exactly one outcome.
    assert_eq!(report.submitted, bundle.trace.queries.len() as u64);
    assert!(
        report.conserves(),
        "outcome tally {} != submitted {}",
        report.counts.total(),
        report.submitted
    );
    assert!(report.ops_per_sec() > 0.0);
    assert_eq!(report.policy, "UNIT");

    // The obs stream is shard-wrapped per worker, with dense per-lane
    // sequence numbers and monotone event times within each lane.
    assert!(!report.events.is_empty(), "observation was on");
    let mut lane_seq = vec![0u64; report.workers];
    let mut lane_time = vec![SimTime::ZERO; report.workers];
    for event in &report.events {
        match event {
            ObsEvent::Shard { shard, seq, event } => {
                let lane = *shard as usize;
                assert!(lane < report.workers, "unknown worker lane {lane}");
                assert_eq!(*seq, lane_seq[lane], "lane {lane} skipped a seq");
                lane_seq[lane] += 1;
                let t = event.time();
                assert!(
                    t >= lane_time[lane],
                    "lane {lane} went backwards: {t:?} after {:?}",
                    lane_time[lane]
                );
                lane_time[lane] = t;
            }
            other => panic!("unwrapped event in live stream: {other:?}"),
        }
    }

    // Statistical oracle: the live outcome mix agrees with the engine's
    // within a stated tolerance. The bound is deliberately loose — the
    // live server's worker-local admission and completion-time deadline
    // detection shift individual outcomes — but it catches wholesale
    // divergence (e.g. everything rejected, or conservation by
    // double-counting).
    let oracle = run_simulation(
        &bundle.trace,
        UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(SEED)),
        SimConfig::new(bundle.horizon).with_weights(UsmWeights::low_high_cfm()),
    );
    let agreement = outcome_agreement(&report.counts, &oracle.counts);
    assert!(
        agreement.within(0.75),
        "live outcome distribution diverged wholesale from the oracle: \
         distance {:.3} (live {:?} vs oracle {:?})",
        agreement.distance,
        report.counts,
        oracle.counts
    );
}
