//! # `SimBackend` — the engine's state behind the transaction API
//!
//! Adapts the deterministic engine's data-state (a
//! [`FreshnessTable`]: per-item applied-version and lag counters) to
//! [`unit_core::txn::TransactionManager`], so oracle-side code and the
//! live server's `MemBackend` are driven through the same five calls.
//!
//! Single-threaded by design — interior mutability is a [`RefCell`],
//! matching the engine's one-event-at-a-time execution model. The
//! backend is deterministic: token allocation is sequential, and every
//! observable number (versions, lag, freshness) is a pure function of
//! the call sequence.

use std::cell::RefCell;
use unit_core::freshness::FreshnessTable;
use unit_core::time::SimTime;
use unit_core::txn::{CommitSummary, ReadVersion, TransactionManager, TxnError, TxnToken};
use unit_core::types::{DataId, TxnClass};

/// One open transaction's scratch state.
struct OpenTxn {
    token: TxnToken,
    reads: u32,
    /// Items this transaction has staged an apply for (installed at
    /// commit, discarded at abort).
    staged_applies: Vec<DataId>,
    min_freshness: f64,
}

/// Engine-state adapter: a [`FreshnessTable`] plus per-item applied
/// version counters, behind the storage-agnostic transaction trait.
pub struct SimBackend {
    inner: RefCell<Inner>,
}

struct Inner {
    freshness: FreshnessTable,
    /// Applied-version counter per item (commits of staged applies).
    versions: Vec<u64>,
    open: Vec<OpenTxn>,
    next_token: u64,
}

impl SimBackend {
    /// A backend over `n_items` fully-fresh items.
    #[must_use]
    pub fn new(n_items: usize) -> Self {
        SimBackend {
            inner: RefCell::new(Inner {
                freshness: FreshnessTable::new(n_items),
                versions: vec![0; n_items],
                open: Vec::new(),
                next_token: 0,
            }),
        }
    }

    fn check_item(inner: &Inner, item: DataId) -> Result<(), TxnError> {
        if item.index() >= inner.versions.len() {
            return Err(TxnError::UnknownItem(item));
        }
        Ok(())
    }

    fn open_idx(inner: &Inner, txn: TxnToken) -> Result<usize, TxnError> {
        inner
            .open
            .iter()
            .position(|t| t.token == txn)
            .ok_or(TxnError::UnknownTxn(txn))
    }
}

impl TransactionManager for SimBackend {
    fn begin(&self, _class: TxnClass, _now: SimTime) -> Result<TxnToken, TxnError> {
        let mut inner = self.inner.borrow_mut();
        let token = TxnToken::from_raw(inner.next_token);
        inner.next_token += 1;
        inner.open.push(OpenTxn {
            token,
            reads: 0,
            staged_applies: Vec::new(),
            min_freshness: 1.0,
        });
        Ok(token)
    }

    fn read(&self, txn: TxnToken, item: DataId, _now: SimTime) -> Result<ReadVersion, TxnError> {
        let mut inner = self.inner.borrow_mut();
        Self::check_item(&inner, item)?;
        let idx = Self::open_idx(&inner, txn)?;
        let udrop = inner.freshness.udrop(item);
        // lint: allow(D6) — check_item() range-checked the item above
        let version = inner.versions[item.index()];
        let rv = ReadVersion {
            item,
            version,
            udrop,
        };
        // lint: allow(D6) — open_idx() returned a live position above
        let open = &mut inner.open[idx];
        open.reads += 1;
        open.min_freshness = open.min_freshness.min(rv.freshness());
        Ok(rv)
    }

    fn apply(&self, txn: TxnToken, item: DataId, _now: SimTime) -> Result<(), TxnError> {
        let mut inner = self.inner.borrow_mut();
        Self::check_item(&inner, item)?;
        let idx = Self::open_idx(&inner, txn)?;
        // lint: allow(D6) — open_idx() returned a live position above
        inner.open[idx].staged_applies.push(item);
        Ok(())
    }

    fn commit(&self, txn: TxnToken, now: SimTime) -> Result<CommitSummary, TxnError> {
        let mut inner = self.inner.borrow_mut();
        let idx = Self::open_idx(&inner, txn)?;
        let open = inner.open.swap_remove(idx);
        for item in &open.staged_applies {
            // Installing the latest version clears the item's whole
            // accumulated lag — the engine's (and the paper's) semantics.
            inner.freshness.record_applied(*item, now);
            // lint: allow(D6) — apply() range-checked the item before staging it
            inner.versions[item.index()] += 1;
        }
        Ok(CommitSummary {
            txn: open.token,
            commit_time: now,
            reads: open.reads,
            writes: open.staged_applies.len() as u32,
            min_freshness: open.min_freshness,
        })
    }

    fn abort(&self, txn: TxnToken) -> Result<(), TxnError> {
        let mut inner = self.inner.borrow_mut();
        let idx = Self::open_idx(&inner, txn)?;
        inner.open.swap_remove(idx);
        Ok(())
    }

    fn observe_version(&self, item: DataId, now: SimTime) -> Result<(), TxnError> {
        let mut inner = self.inner.borrow_mut();
        Self::check_item(&inner, item)?;
        inner.freshness.record_arrival(item, now);
        Ok(())
    }

    fn udrop(&self, item: DataId) -> Result<u64, TxnError> {
        let inner = self.inner.borrow();
        Self::check_item(&inner, item)?;
        Ok(inner.freshness.udrop(item))
    }

    fn n_items(&self) -> usize {
        self.inner.borrow().versions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime(0);

    #[test]
    fn read_sees_lag_and_commit_clears_it() {
        let be = SimBackend::new(2);
        let item = DataId(0);
        be.observe_version(item, T0).unwrap();
        be.observe_version(item, T0).unwrap();
        assert_eq!(be.udrop(item).unwrap(), 2);

        // A query transaction reads the lagging item: freshness 1/(1+2).
        let q = be.begin(TxnClass::Query, T0).unwrap();
        let rv = be.read(q, item, T0).unwrap();
        assert_eq!(rv.udrop, 2);
        assert_eq!(rv.version, 0);
        let summary = be.commit(q, T0).unwrap();
        assert_eq!(summary.reads, 1);
        assert!((summary.min_freshness - 1.0 / 3.0).abs() < 1e-12);

        // An update transaction installs one version: lag drops, version
        // counter rises.
        let u = be.begin(TxnClass::Update, T0).unwrap();
        be.apply(u, item, T0).unwrap();
        let summary = be.commit(u, T0).unwrap();
        assert_eq!(summary.writes, 1);
        assert_eq!(be.udrop(item).unwrap(), 0, "install clears the whole lag");
        let q2 = be.begin(TxnClass::Query, T0).unwrap();
        assert_eq!(be.read(q2, item, T0).unwrap().version, 1);
        be.abort(q2).unwrap();
    }

    #[test]
    fn abort_discards_staged_applies() {
        let be = SimBackend::new(1);
        let item = DataId(0);
        be.observe_version(item, T0).unwrap();
        let u = be.begin(TxnClass::Update, T0).unwrap();
        be.apply(u, item, T0).unwrap();
        be.abort(u).unwrap();
        assert_eq!(be.udrop(item).unwrap(), 1, "abort must not install");
        assert_eq!(be.commit(u, T0).unwrap_err(), TxnError::UnknownTxn(u));
    }

    #[test]
    fn bad_ids_are_typed_errors() {
        let be = SimBackend::new(1);
        let q = be.begin(TxnClass::Query, T0).unwrap();
        assert_eq!(
            be.read(q, DataId(7), T0).unwrap_err(),
            TxnError::UnknownItem(DataId(7))
        );
        let stale = TxnToken::from_raw(999);
        assert_eq!(
            be.read(stale, DataId(0), T0).unwrap_err(),
            TxnError::UnknownTxn(stale)
        );
    }
}
