//! The discrete-event web-database server (§3.1, Figure 1 — data flow).
//!
//! A single-CPU server processes two transaction classes under a
//! **dual-priority** discipline: update transactions outrank user queries,
//! and EDF orders each class internally. The CPU is preemptive (a newly
//! arrived higher-priority transaction takes over; the preempted one keeps
//! its locks and its progress). Concurrency control is **2PL-HP**: a
//! higher-priority transaction that hits a lock conflict evicts
//! lower-priority holders, which restart from scratch. Queries have **firm
//! deadlines** — at expiry an uncommitted query is aborted and counted as a
//! Deadline-Missed Failure.
//!
//! The engine is policy-agnostic: every decision (admission, which versions
//! to apply, on-demand refreshes, feedback control) is delegated to a
//! [`Policy`]. Freshness bookkeeping follows §2.2: version arrivals from the
//! sources raise per-item `Udrop`; applying an update clears it; a query's
//! freshness is the strict minimum over its read set, captured **when its
//! read locks are granted** (the versions it actually reads — any update
//! applied later would evict it through 2PL-HP and force a re-read).
//!
//! Determinism: given `(trace, policy, config)` a run is bit-reproducible —
//! event ties pop in insertion order and the engine itself uses no
//! randomness (policies carry their own seeded RNGs).

use crate::events::{Event, EventQueue};
use crate::faults::{FaultHook, HealthState, UpdateFault};
use crate::locks::{LockManager, ReadAcquire, WriteAcquire};
use crate::stats::{FaultCounts, SignalCounts, SimReport, TimelineSample};
use crate::txn::{Txn, TxnId, TxnKind, TxnState};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;
use unit_core::fenwick::Fenwick;
use unit_core::freshness::FreshnessTable;
use unit_core::freshness_model::FreshnessModel;
use unit_core::policy::{ControlSignal, Policy};
use unit_core::snapshot::{QueueEntryView, QueueSource, SnapshotView};
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, Outcome, QueryId, QuerySpec, Trace, TxnClass};
use unit_core::usm::{OutcomeCounts, UsmWeights};
use unit_obs::{FaultPhase, ObsEvent, Observer};

/// How the single CPU orders ready transactions.
///
/// The paper fixes the dual-priority discipline (§3.1); the alternatives
/// exist to *measure* that choice (see the ablation binary): global EDF
/// lets urgent queries pre-empt update work, and query-first shows what
/// happens when the foreground always wins (freshness starves).
///
/// Caveat: on-demand refresh policies (ODU, DEF) assume their refresh
/// transactions outrank the waiting query — which only the dual-priority
/// (and, by deadline, usually the global-EDF) discipline guarantees. Under
/// `QueryFirst` a spawned refresh sits *behind* its requester, so pair the
/// ablation disciplines with policies that do not rely on demand refreshes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulingDiscipline {
    /// Updates strictly outrank queries; EDF within each class (the paper).
    #[default]
    DualPriorityEdf,
    /// One EDF order across both classes (updates keyed by their
    /// temporal-validity deadline, queries by their firm deadline).
    GlobalEdf,
    /// Queries strictly outrank updates; EDF within each class.
    QueryFirst,
}

impl SchedulingDiscipline {
    /// Class rank under this discipline (lower runs first).
    fn rank(self, class: TxnClass) -> u8 {
        match (self, class) {
            (SchedulingDiscipline::DualPriorityEdf, TxnClass::Update) => 0,
            (SchedulingDiscipline::DualPriorityEdf, TxnClass::Query) => 1,
            (SchedulingDiscipline::GlobalEdf, _) => 0,
            (SchedulingDiscipline::QueryFirst, TxnClass::Query) => 0,
            (SchedulingDiscipline::QueryFirst, TxnClass::Update) => 1,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Weights used to classify nothing (outcomes are weight-independent)
    /// but to report USM and to drive weight-aware policies' `on_tick`.
    pub weights: UsmWeights,
    /// Workload horizon: sources and control ticks stop here; in-flight
    /// work drains afterwards.
    pub horizon: SimDuration,
    /// Control-tick period (drives `Policy::on_tick`).
    pub tick_period: SimDuration,
    /// Record a [`TimelineSample`] at every control tick.
    pub record_timeline: bool,
    /// Freshness semantics used to judge query read sets (§2.2's three
    /// metric families; the paper uses the lag-based default).
    pub freshness_model: FreshnessModel,
    /// CPU scheduling discipline (the paper's dual-priority EDF by default).
    pub discipline: SchedulingDiscipline,
    /// Number of CPUs (the paper's server has 1). With `k` CPUs the `k`
    /// highest-priority ready transactions run concurrently; 2PL-HP then
    /// resolves genuinely simultaneous lock conflicts.
    pub n_cpus: usize,
    /// Record every per-query outcome as an [`crate::stats::OutcomeRecord`]
    /// (virtual time, query id, outcome, sequence number) in the report.
    /// The cluster layer merges these logs across shards; off by default so
    /// single-server runs carry no extra allocation.
    pub record_outcomes: bool,
}

impl SimConfig {
    /// A config with the given horizon and 1-second control ticks.
    pub fn new(horizon: SimDuration) -> Self {
        SimConfig {
            weights: UsmWeights::naive(),
            horizon,
            tick_period: SimDuration::from_secs(1),
            record_timeline: false,
            freshness_model: FreshnessModel::default(),
            discipline: SchedulingDiscipline::default(),
            n_cpus: 1,
            record_outcomes: false,
        }
    }

    /// Enable per-query outcome logging (see [`SimConfig::record_outcomes`]).
    #[must_use]
    pub fn with_outcome_log(mut self) -> Self {
        self.record_outcomes = true;
        self
    }

    /// Set the reporting/policy weights.
    #[must_use]
    pub fn with_weights(mut self, weights: UsmWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Enable timeline recording.
    #[must_use]
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Override the control-tick period.
    #[must_use]
    pub fn with_tick_period(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "tick period must be positive");
        self.tick_period = period;
        self
    }

    /// Override the scheduling discipline (for ablations).
    #[must_use]
    pub fn with_discipline(mut self, discipline: SchedulingDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Set the number of CPUs (≥ 1).
    ///
    /// # Panics
    /// Panics if `n_cpus` is zero.
    #[must_use]
    pub fn with_cpus(mut self, n_cpus: usize) -> Self {
        assert!(n_cpus >= 1, "need at least one CPU");
        self.n_cpus = n_cpus;
        self
    }

    /// Override the freshness semantics.
    ///
    /// # Panics
    /// Panics on degenerate model parameters.
    #[must_use]
    pub fn with_freshness_model(mut self, model: FreshnessModel) -> Self {
        if let Err(e) = model.validate() {
            // lint: allow(panic) — documented constructor contract, caught at config time
            panic!("invalid freshness model: {e}");
        }
        self.freshness_model = model;
        self
    }
}

/// Run `policy` over `trace` and return the report. Convenience wrapper
/// around [`Simulator`].
pub fn run_simulation<P: Policy>(trace: &Trace, policy: P, cfg: SimConfig) -> SimReport {
    Simulator::new(trace, policy, cfg).run()
}

#[derive(Debug, Clone, Copy)]
struct RunningTxn {
    id: TxnId,
    started: SimTime,
    generation: u64,
}

type PriorityKey = (u8, SimTime, TxnId);

/// An admitted, unfinished query as tracked by the deadline index.
#[derive(Debug, Clone, Copy)]
struct AdmittedEntry {
    /// The live transaction carrying this query.
    txn: TxnId,
    /// Stored remaining service, synced whenever the transaction's
    /// `remaining` changes at rest (preemption, 2PL-HP restart). The
    /// in-progress slice of a *running* query is subtracted at view time.
    remaining: SimDuration,
    /// Submitting user's preference class.
    pref_class: u32,
}

/// Borrowed, Fenwick-indexed [`QueueSource`] over the simulator's admitted
/// queries: `O(log N_rq)` work probes, `O(N_rq)` materialization only when a
/// policy explicitly asks for the whole list.
struct EngineQueue<'b> {
    clock: SimTime,
    admitted: &'b BTreeMap<(SimTime, QueryId), AdmittedEntry>,
    deadline_coords: &'b [SimTime],
    work_index: &'b Fenwick<u64>,
    running: &'b [RunningTxn],
    txns: &'b [Txn],
    scratch: &'b RefCell<Vec<QueueEntryView>>,
}

impl EngineQueue<'_> {
    /// In-progress slice of `id` when it currently holds a CPU.
    fn running_elapsed(&self, id: TxnId) -> SimDuration {
        self.running
            .iter()
            .find(|r| r.id == id)
            .map_or(SimDuration::ZERO, |r| {
                self.clock.saturating_since(r.started)
            })
    }

    fn entry_view(&self, key: &(SimTime, QueryId), e: &AdmittedEntry) -> QueueEntryView {
        QueueEntryView {
            id: key.1,
            deadline: key.0,
            remaining: e.remaining.saturating_sub(self.running_elapsed(e.txn)),
            pref_class: e.pref_class,
        }
    }

    /// Already-served (not yet synced) work of current query-class runners
    /// with deadline `<= deadline`; pass [`SimTime::MAX`] for all of them.
    /// `O(n_cpus)`.
    fn running_query_elapsed_before(&self, deadline: SimTime) -> SimDuration {
        let mut elapsed = SimDuration::ZERO;
        for r in self.running {
            let txn = &self.txns[r.id.index()];
            if txn.is_query() && txn.edf_deadline <= deadline {
                elapsed += self.clock.saturating_since(r.started);
            }
        }
        elapsed
    }
}

impl QueueSource for EngineQueue<'_> {
    fn query_count(&self) -> usize {
        self.admitted.len()
    }

    fn total_query_work(&self) -> SimDuration {
        SimDuration(self.work_index.total())
            .saturating_sub(self.running_query_elapsed_before(SimTime::MAX))
    }

    fn query_work_at_or_before(&self, deadline: SimTime) -> SimDuration {
        let count = self.deadline_coords.partition_point(|&d| d <= deadline);
        SimDuration(self.work_index.prefix_sum(count))
            .saturating_sub(self.running_query_elapsed_before(deadline))
    }

    fn for_each_later(&self, after: SimTime, visit: &mut dyn FnMut(QueueEntryView) -> bool) {
        // Keys strictly above `(after, MAX)` are exactly those with
        // deadline > after (no trace query carries id u64::MAX).
        let from = (
            Bound::Excluded((after, QueryId(u64::MAX))),
            Bound::Unbounded,
        );
        for (key, e) in self.admitted.range(from) {
            if !visit(self.entry_view(key, e)) {
                return;
            }
        }
    }

    fn with_queries(&self, f: &mut dyn FnMut(&[QueueEntryView])) {
        let mut buf = self.scratch.borrow_mut();
        buf.clear();
        buf.extend(self.admitted.iter().map(|(k, e)| self.entry_view(k, e)));
        f(&buf);
    }
}

enum DispatchResult {
    /// Candidate is now running.
    Running,
    /// Candidate blocked on a lock; it left the ready queue.
    Blocked,
    /// On-demand refresh updates were spawned; candidate went back to ready.
    SpawnedRefresh,
}

/// The discrete-event server. Most users want [`run_simulation`].
pub struct Simulator<'a, P: Policy> {
    trace: &'a Trace,
    policy: P,
    cfg: SimConfig,

    clock: SimTime,
    /// Whether the run has been started (trace arrivals seeded, policy
    /// initialized). Flipped by the first [`Simulator::step`].
    started: bool,
    events: EventQueue,
    txns: Vec<Txn>,
    ready: BTreeSet<PriorityKey>,
    blocked: Vec<TxnId>,
    running: Vec<RunningTxn>,
    next_generation: u64,
    locks: LockManager,
    freshness: FreshnessTable,
    /// Per-item execution time of the item's update stream (for on-demand
    /// refreshes); `None` when the item has no stream.
    item_update_exec: Vec<Option<SimDuration>>,
    /// Items with a queued-but-uncommitted on-demand refresh.
    pending_ondemand: Vec<bool>,
    /// Sum of `remaining` over every unfinished update transaction, kept
    /// incrementally so snapshot scalars are O(n_cpus) even when the update
    /// backlog holds tens of thousands of transactions.
    outstanding_update_work: SimDuration,
    /// Admitted, unfinished queries keyed by `(deadline, trace id)` — the
    /// exact ascending order [`QueueSource`] iteration must follow.
    admitted: BTreeMap<(SimTime, QueryId), AdmittedEntry>,
    /// Sorted, deduplicated deadlines of every trace query: the coordinate
    /// space of `work_index`.
    deadline_coords: Vec<SimTime>,
    /// Remaining admitted-query work (ticks) per deadline coordinate, so
    /// `work_ahead_of(deadline)` probes are O(log N) instead of a walk.
    work_index: Fenwick<u64>,
    /// Reusable buffer behind `QueueSource::with_queries`.
    view_scratch: RefCell<Vec<QueueEntryView>>,
    /// Optional fault-injection hook ([`crate::faults`]). `None` — the
    /// common case — takes exactly the fault-free code paths.
    faults: Option<Box<dyn FaultHook>>,
    /// Optional observability sink (`unit-obs`). Every emission site is
    /// gated on `is_some()`, so an absent observer costs one branch and an
    /// installed one is `report_digest`-bit-neutral (events carry only
    /// derived data; the differential suite pins both properties).
    obs: Option<&'a mut dyn Observer>,

    // --- accounting -----------------------------------------------------
    counts: OutcomeCounts,
    class_counts: Vec<OutcomeCounts>,
    cpu_busy: SimDuration,
    window_busy: SimDuration,
    window_start: SimTime,
    preemptions: u64,
    query_restarts: u64,
    demand_refreshes: u64,
    signals: SignalCounts,
    fault_counts: FaultCounts,
    dispatch_freshness_sum: f64,
    dispatch_freshness_n: u64,
    timeline: Vec<TimelineSample>,
    events_processed: u64,
    /// Per-query outcome records (only filled when
    /// [`SimConfig::record_outcomes`] is set; exported through the report
    /// for the cluster merge layer).
    outcome_records: Vec<crate::stats::OutcomeRecord>,
    /// Raw per-query outcome log, kept only in validate builds so the USM
    /// tallies can be recounted from first principles at every control tick.
    #[cfg(feature = "validate")]
    outcome_log: Vec<Outcome>,
}

impl<'a, P: Policy> Simulator<'a, P> {
    /// Build a simulator; validates the trace.
    ///
    /// # Panics
    /// Panics if the trace is malformed (use [`Trace::validate`] to check
    /// beforehand).
    pub fn new(trace: &'a Trace, policy: P, cfg: SimConfig) -> Self {
        if let Err(e) = trace.validate() {
            // lint: allow(panic) — documented constructor contract, caught before the run
            panic!("invalid trace: {e}");
        }
        let n = trace.n_items;
        let mut item_update_exec = vec![None; n];
        for u in &trace.updates {
            let slot = &mut item_update_exec[u.item.index()];
            if slot.is_none() {
                *slot = Some(u.exec_time);
            }
        }
        let mut deadline_coords: Vec<SimTime> =
            trace.queries.iter().map(QuerySpec::deadline).collect();
        deadline_coords.sort_unstable();
        deadline_coords.dedup();
        let work_index = Fenwick::new(deadline_coords.len());
        Simulator {
            trace,
            policy,
            cfg,
            clock: SimTime::ZERO,
            started: false,
            events: EventQueue::new(),
            txns: Vec::new(),
            ready: BTreeSet::new(),
            blocked: Vec::new(),
            running: Vec::new(),
            next_generation: 0,
            locks: LockManager::new(n),
            freshness: FreshnessTable::new(n),
            item_update_exec,
            pending_ondemand: vec![false; n],
            outstanding_update_work: SimDuration::ZERO,
            admitted: BTreeMap::new(),
            deadline_coords,
            work_index,
            view_scratch: RefCell::new(Vec::new()),
            faults: None,
            obs: None,
            counts: OutcomeCounts::default(),
            class_counts: Vec::new(),
            cpu_busy: SimDuration::ZERO,
            window_busy: SimDuration::ZERO,
            window_start: SimTime::ZERO,
            preemptions: 0,
            query_restarts: 0,
            demand_refreshes: 0,
            signals: SignalCounts::default(),
            fault_counts: FaultCounts::default(),
            dispatch_freshness_sum: 0.0,
            dispatch_freshness_n: 0,
            timeline: Vec::new(),
            events_processed: 0,
            outcome_records: Vec::new(),
            #[cfg(feature = "validate")]
            outcome_log: Vec::new(),
        }
    }

    /// Install a fault-injection hook ([`crate::faults::FaultHook`]). Must
    /// be called before the first [`Simulator::step`] so the schedule's
    /// transition events can be seeded with the trace arrivals.
    ///
    /// # Panics
    /// Debug-panics when called after the run has started.
    #[must_use]
    pub fn with_faults(mut self, hook: Box<dyn FaultHook>) -> Self {
        debug_assert!(!self.started, "install the fault hook before stepping");
        self.faults = Some(hook);
        self
    }

    /// Install an observability sink (`unit-obs`): typed events for every
    /// admission decision, outcome, control tick, modulation boundary, and
    /// fault transition, stamped in virtual time. Must be installed before
    /// the first [`Simulator::step`] so the policy's observation buffers are
    /// armed from the start. Observation is passive — the run's
    /// `report_digest` stays bit-identical.
    ///
    /// # Panics
    /// Debug-panics when called after the run has started.
    #[must_use]
    pub fn with_observer(mut self, observer: &'a mut dyn Observer) -> Self {
        debug_assert!(!self.started, "install the observer before stepping");
        self.obs = Some(observer);
        self
    }

    /// Forward one event to the installed observer, if any. O(1) plus the
    /// observer's own cost; callers gate event *construction* on
    /// [`Option::is_some`] so the uninstalled path stays one branch.
    #[inline]
    fn emit(&mut self, event: ObsEvent) {
        if let Some(o) = self.obs.as_deref_mut() {
            o.on_event(&event);
        }
    }

    /// Execute the whole run: process every trace arrival, drain in-flight
    /// work, and assemble the report.
    pub fn run(self) -> SimReport {
        self.run_with_policy().0
    }

    /// Like [`Simulator::run`], but also hand back the policy so callers can
    /// inspect its final internal state (controller counters, periods, ...).
    pub fn run_with_policy(mut self) -> (SimReport, P) {
        while self.step() {}
        self.finish()
    }

    /// Seed the run: initialize the policy and schedule every trace arrival
    /// plus the first control tick. Called lazily by the first
    /// [`Simulator::step`]. O((N_q + N_u) log N_ev), once per run.
    fn start(&mut self) {
        debug_assert!(!self.started);
        self.started = true;
        self.policy.set_observed(self.obs.is_some());
        self.policy.init(self.trace.n_items, &self.trace.updates);

        for (i, q) in self.trace.queries.iter().enumerate() {
            self.events
                .push(q.arrival, Event::QueryArrival { spec_idx: i });
        }
        for (j, u) in self.trace.updates.iter().enumerate() {
            if u.first_arrival.0 <= self.cfg.horizon.0 {
                self.events
                    .push(u.first_arrival, Event::VersionArrival { stream_idx: j });
            }
        }
        self.events
            .push(SimTime::ZERO + self.cfg.tick_period, Event::ControlTick);

        // Fault transitions: every crash-window boundary and burst instant,
        // sorted and deduplicated so the event-seq assignment (and thus
        // same-instant tie-breaking) is a pure function of the schedule. An
        // absent hook or an empty schedule pushes nothing — the event
        // stream is bit-identical to a fault-free run.
        if let Some(hook) = &self.faults {
            let mut times = hook.transition_times();
            times.sort_unstable();
            times.dedup();
            for t in times {
                self.events.push(t, Event::FaultTransition);
            }
        }
    }

    /// Process the next pending event, advancing the virtual clock. Returns
    /// `false` once the run has drained (no events left). The embeddable
    /// half of the engine: a cluster shard is driven by calling this in a
    /// loop and then harvesting [`Simulator::finish`]. O(log N_ev) plus the
    /// dispatched handler's cost.
    pub fn step(&mut self) -> bool {
        if !self.started {
            self.start();
        }
        let Some((t, ev)) = self.events.pop() else {
            return false;
        };
        debug_assert!(t >= self.clock, "time went backwards");
        self.clock = t;
        self.events_processed += 1;
        match ev {
            Event::QueryArrival { spec_idx } => self.on_query_arrival(spec_idx),
            Event::VersionArrival { stream_idx } => self.on_version_arrival(stream_idx),
            Event::Completion { txn, generation } => self.on_completion(txn, generation),
            Event::QueryDeadline { txn } => self.on_query_deadline(txn),
            Event::ControlTick => self.on_control_tick(),
            Event::FaultTransition => self.on_fault_transition(),
            Event::DelayedApply {
                item,
                exec,
                edf_deadline,
            } => self.on_delayed_apply(item, exec, edf_deadline),
        }
        true
    }

    /// The current virtual clock (the timestamp of the last processed
    /// event). O(1).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Finish a drained run: check the end-of-run invariants and assemble
    /// the report plus the policy's final state. Call only after
    /// [`Simulator::step`] has returned `false`; finishing mid-run trips
    /// the drain assertions in debug builds and misreports in-flight work
    /// in release builds. O(N_d) for the report's histogram moves.
    pub fn finish(mut self) -> (SimReport, P) {
        debug_assert!(self.started, "finish() before the run was stepped");
        debug_assert!(self.ready.is_empty(), "ready transactions left behind");
        debug_assert!(self.running.is_empty(), "running transactions left behind");
        debug_assert!(self.admitted.is_empty(), "admitted queries left behind");
        debug_assert_eq!(self.work_index.total(), 0, "work index must drain to zero");
        debug_assert_eq!(
            self.counts.total() as usize,
            self.trace.queries.len(),
            "every submitted query must have exactly one outcome"
        );
        #[cfg(feature = "validate")]
        self.validate_invariants();

        let report = self.report();
        (report, self.policy)
    }

    /// Assemble the final report, moving the accumulated histograms and
    /// timeline out of the simulator instead of cloning them.
    fn report(&mut self) -> SimReport {
        let query_accesses = self.trace.query_access_histogram();
        let freshness = std::mem::replace(&mut self.freshness, FreshnessTable::new(0));
        let (versions_arrived, updates_applied) = freshness.into_histograms();
        SimReport {
            policy: self.policy.name().to_string(),
            weights: self.cfg.weights,
            counts: self.counts,
            class_counts: std::mem::take(&mut self.class_counts),
            query_accesses,
            versions_arrived,
            updates_applied,
            hp_aborts: self.locks.hp_aborts(),
            query_restarts: self.query_restarts,
            preemptions: self.preemptions,
            demand_refreshes: self.demand_refreshes,
            cpu_busy: self.cpu_busy,
            end_time: self.clock,
            horizon: self.cfg.horizon,
            n_cpus: self.cfg.n_cpus,
            signals: self.signals,
            mean_dispatch_freshness: if self.dispatch_freshness_n == 0 {
                1.0
            } else {
                self.dispatch_freshness_sum / self.dispatch_freshness_n as f64
            },
            timeline: std::mem::take(&mut self.timeline),
            events_processed: self.events_processed,
            outcome_records: std::mem::take(&mut self.outcome_records),
            faults: self.fault_counts,
        }
    }

    /// Ready-queue ordering key for a transaction under the configured
    /// scheduling discipline.
    fn pkey_of(&self, txn: &Txn) -> PriorityKey {
        (
            self.cfg.discipline.rank(txn.class),
            txn.edf_deadline,
            txn.id,
        )
    }

    /// Ready-queue ordering key by transaction id.
    fn pkey(&self, id: TxnId) -> PriorityKey {
        self.pkey_of(&self.txns[id.index()])
    }

    // --- event handlers --------------------------------------------------

    /// Query-arrival hook: admission decision plus ready-queue insertion.
    /// O(log N_rq) for the policy's slack probe and the index inserts, plus
    /// the [`Simulator::reschedule`] that follows.
    fn on_query_arrival(&mut self, spec_idx: usize) {
        if let Some(until) = self.paused_until() {
            // Crash window: the server is not listening. Defer the arrival
            // to the recovery instant.
            self.fault_counts.deferred_events += 1;
            self.events.push(until, Event::QueryArrival { spec_idx });
            return;
        }
        let trace = self.trace;
        let spec = &trace.queries[spec_idx];
        if self.faults.is_some() && spec.deadline() <= self.clock {
            // Dead on arrival: the firm deadline expired while the arrival
            // sat deferred through a crash window. Unreachable fault-free
            // (relative deadlines are strictly positive).
            self.record_outcome(spec_idx, Outcome::DeadlineMiss);
            return;
        }
        let decision = self.with_view(|policy, view| policy.on_query_arrival(spec, view));
        if self.obs.is_some() {
            let (verdict, c_flex) = match self.policy.last_admission() {
                Some(a) => (Some(a.verdict), Some(a.c_flex)),
                None => (None, None),
            };
            self.emit(ObsEvent::Admission {
                time: self.clock,
                query: spec.id,
                decision,
                verdict,
                c_flex,
            });
        }
        if !decision.is_admit() {
            self.record_outcome(spec_idx, Outcome::Rejected);
            return;
        }
        let id = TxnId(self.txns.len() as u64);
        let txn = Txn {
            id,
            class: TxnClass::Query,
            edf_deadline: spec.deadline(),
            exec_time: spec.exec_time,
            remaining: spec.exec_time,
            state: TxnState::Ready,
            holds_locks: false,
            blocked_on: None,
            kind: TxnKind::Query {
                spec_idx,
                freshness_at_dispatch: None,
                restarts: 0,
            },
        };
        self.events
            .push(txn.edf_deadline, Event::QueryDeadline { txn: id });
        self.ready.insert(self.pkey_of(&txn));
        self.txns.push(txn);
        self.insert_admitted(spec_idx, id);
        if self.policy.refresh_at_admission() {
            // Eager on-demand policies (ODU) check staleness the moment the
            // query enters the system.
            self.spawn_demand_refreshes(spec_idx);
        }
        self.reschedule();
    }

    /// Ask the policy which of `spec`'s items need an on-demand refresh and
    /// spawn update transactions for them. Returns true if any were spawned.
    fn spawn_demand_refreshes(&mut self, spec_idx: usize) -> bool {
        let trace = self.trace;
        let spec = &trace.queries[spec_idx];
        let freshness = &self.freshness;
        let wanted = self
            .policy
            .demand_refresh(spec, &|d: DataId| freshness.udrop(d));
        let mut spawned = false;
        for d in wanted {
            if self.pending_ondemand[d.index()] {
                continue; // a refresh for this item is already queued
            }
            let Some(exec) = self.item_update_exec[d.index()] else {
                continue; // no stream -> cannot be stale
            };
            self.pending_ondemand[d.index()] = true;
            self.demand_refreshes += 1;
            // EDF deadline "now": on-demand refreshes precede periodic
            // updates that arrived earlier with later validity deadlines.
            self.spawn_update(d, exec, self.clock, true);
            spawned = true;
        }
        spawned
    }

    /// Version-arrival hook: freshness bookkeeping, the policy's
    /// apply/skip decision, and the next arrival's scheduling.
    /// O(log N_ev) for the event pushes; the policy callback is O(1) for
    /// every shipped policy.
    fn on_version_arrival(&mut self, stream_idx: usize) {
        let u = &self.trace.updates[stream_idx];
        let item = u.item;
        let period = u.period;
        let exec = u.exec_time;
        // Sources are external: the version is observed (Udrop rises) even
        // when a fault keeps it from being applied.
        self.freshness.record_arrival(item, self.clock);

        let fault = match self.faults.as_deref() {
            None => UpdateFault::Apply,
            // Down or degraded windows drop every application; staleness
            // then accrues honestly through the ordinary Udrop path.
            Some(h) if h.health(self.clock).updates_dropped() => UpdateFault::Drop,
            Some(h) => h.update_fault(item, self.clock),
        };
        match fault {
            UpdateFault::Apply => {
                let action =
                    self.with_view(|policy, view| policy.on_version_arrival(item, view.now, view));
                if action.is_apply() {
                    self.spawn_update(item, exec, self.clock + period, false);
                    self.reschedule();
                }
            }
            UpdateFault::Drop => {
                self.fault_counts.update_drops += 1;
            }
            UpdateFault::Delay(d) => {
                // The policy still decides whether this version is worth
                // applying; the fault only postpones the application. The
                // EDF deadline stays at the version's temporal-validity
                // deadline, not the delayed spawn instant.
                let action =
                    self.with_view(|policy, view| policy.on_version_arrival(item, view.now, view));
                if action.is_apply() {
                    self.fault_counts.update_delays += 1;
                    self.events.push(
                        self.clock + d,
                        Event::DelayedApply {
                            item,
                            exec,
                            edf_deadline: self.clock + period,
                        },
                    );
                }
            }
        }

        let next = self.clock + period;
        if next.0 <= self.cfg.horizon.0 {
            self.events.push(next, Event::VersionArrival { stream_idx });
        }
    }

    /// Completion hook: commit the transaction, release its locks, record
    /// the outcome. O(W + log N_rq) where W is the freed waiter count, plus
    /// the trailing [`Simulator::reschedule`].
    fn on_completion(&mut self, id: TxnId, generation: u64) {
        // Stale completions (the transaction was preempted or aborted after
        // this event was scheduled) are ignored.
        let Some(pos) = self
            .running
            .iter()
            .position(|r| r.id == id && r.generation == generation)
        else {
            return;
        };
        let run = self.running.swap_remove(pos);
        let elapsed = self.clock.saturating_since(run.started);
        self.charge_cpu(elapsed);

        let (outcome_to_record, committed_update): (Option<(usize, Outcome)>, Option<DataId>) = {
            let txn = &mut self.txns[id.index()];
            debug_assert_eq!(txn.state, TxnState::Running);
            debug_assert!(elapsed == txn.remaining, "completion fired early or late");
            txn.remaining = SimDuration::ZERO;
            txn.state = TxnState::Finished;
            txn.holds_locks = false;
            match txn.kind {
                TxnKind::Query {
                    spec_idx,
                    freshness_at_dispatch,
                    ..
                } => {
                    let spec = &self.trace.queries[spec_idx];
                    debug_assert!(self.clock <= spec.deadline(), "firm deadline violated");
                    // Freshness verdict: the data the query actually *read*,
                    // i.e. the strict-minimum freshness captured when its
                    // read locks were granted (§2.2). Read-time evaluation is
                    // what makes the paper's ODU baseline achieve 100%
                    // freshness: any version *applied* during execution would
                    // have evicted the query via 2PL-HP, so the captured
                    // value is exact for the versions read.
                    let f = freshness_at_dispatch.unwrap_or(1.0);
                    let outcome = if f >= spec.freshness_req {
                        Outcome::Success
                    } else {
                        Outcome::DataStale
                    };
                    (Some((spec_idx, outcome)), None)
                }
                TxnKind::Update { item, on_demand } => {
                    if on_demand {
                        self.pending_ondemand[item.index()] = false;
                    }
                    self.outstanding_update_work =
                        self.outstanding_update_work.saturating_sub(elapsed);
                    (None, Some(item))
                }
                TxnKind::Background => {
                    // Injected load: consumes CPU, touches nothing.
                    self.outstanding_update_work =
                        self.outstanding_update_work.saturating_sub(elapsed);
                    (None, None)
                }
            }
        };

        let freed = self.locks.release_all(id);
        self.unblock_waiters(&freed);

        if let Some(item) = committed_update {
            self.freshness.record_applied(item, self.clock);
            let exec = self.txns[id.index()].exec_time;
            self.policy.on_update_commit(item, exec);
        }
        if let Some((spec_idx, outcome)) = outcome_to_record {
            self.remove_admitted(id);
            self.record_outcome(spec_idx, outcome);
        }
        self.reschedule();
    }

    /// Firm-deadline hook: abort an expired query wherever it currently
    /// sits. O(n_cpus + log N_rq) to evict it from the run/ready/admitted
    /// structures, plus the trailing [`Simulator::reschedule`].
    fn on_query_deadline(&mut self, id: TxnId) {
        if let Some(until) = self.paused_until() {
            // Crash window: the abort (and its DMF outcome) is deferred to
            // the recovery instant, so no outcome lands inside the window.
            self.fault_counts.deferred_events += 1;
            self.events.push(until, Event::QueryDeadline { txn: id });
            return;
        }
        if self.txns[id.index()].state == TxnState::Finished {
            return; // committed (or already aborted) before expiry
        }
        self.remove_admitted(id);
        // Firm deadline: abort wherever the query currently is.
        if let Some(pos) = self.running.iter().position(|r| r.id == id) {
            let run = self.running.swap_remove(pos);
            let elapsed = self.clock.saturating_since(run.started);
            self.charge_cpu(elapsed);
            let txn = &mut self.txns[id.index()];
            txn.remaining = txn.remaining.saturating_sub(elapsed);
        }
        let key = self.pkey(id);
        self.ready.remove(&key);
        self.blocked.retain(|&b| b != id);

        let spec_idx = {
            let txn = &mut self.txns[id.index()];
            txn.state = TxnState::Finished;
            txn.holds_locks = false;
            match txn.kind {
                TxnKind::Query { spec_idx, .. } => spec_idx,
                TxnKind::Update { .. } | TxnKind::Background => {
                    // lint: allow(panic) — only QueryDeadline events carry query txn ids
                    unreachable!("updates have no deadline events")
                }
            }
        };
        let freed = self.locks.release_all(id);
        self.unblock_waiters(&freed);
        self.record_outcome(spec_idx, Outcome::DeadlineMiss);
        self.reschedule();
    }

    /// Control-tick hook: run the policy's feedback loop and sample the
    /// timeline. O(T log N_ev) where T is the tick-triggered refresh count;
    /// the policy's `on_tick` is O(1) amortized for UNIT (lottery batches
    /// are credited against the signals that trigger them, DESIGN.md §2.1).
    fn on_control_tick(&mut self) {
        if let Some(until) = self.paused_until() {
            // Crash window: the controller is down with the rest of the
            // server; the tick train restarts at the recovery instant.
            self.fault_counts.deferred_events += 1;
            self.events.push(until, Event::ControlTick);
            return;
        }
        // One view serves both the policy tick and the timeline sample, so
        // the sample reflects pre-tick state exactly as the policy saw it.
        let observing = self.obs.is_some();
        let (signals, ready_queries, update_backlog_secs, utilization, query_backlog_secs) = self
            .with_view(|policy, view| {
                let query_backlog_secs = if observing {
                    view.query_backlog().as_secs_f64()
                } else {
                    0.0
                };
                (
                    policy.on_tick(view.now, view),
                    view.ready_queue_len(),
                    view.update_backlog.as_secs_f64(),
                    view.recent_utilization,
                    query_backlog_secs,
                )
            });
        for &s in &signals {
            self.signals.record(s);
        }
        if observing {
            self.emit(ObsEvent::ControlTick {
                time: self.clock,
                ready_queries,
                query_backlog_secs,
                update_backlog_secs,
                utilization,
                usm: self.counts.average_usm(&self.cfg.weights),
            });
            if let Some(ctl) = self.policy.controller_obs() {
                let count =
                    |sig: ControlSignal| signals.iter().filter(|&&s| s == sig).count() as u32;
                self.emit(ObsEvent::ControlStep {
                    time: self.clock,
                    c_flex: ctl.c_flex,
                    tac: count(ControlSignal::TightenAdmission),
                    lac: count(ControlSignal::LoosenAdmission),
                    degrade: count(ControlSignal::DegradeUpdates),
                    upgrade: count(ControlSignal::UpgradeUpdates),
                    degraded_items: ctl.degraded_items,
                    ticket_sum: ctl.ticket_sum,
                });
            }
            let now = self.clock;
            for m in self.policy.drain_modulation_obs() {
                self.emit(ObsEvent::TicketMass {
                    time: now,
                    item: m.item,
                    ticket: m.ticket,
                    old_period: m.old_period,
                    new_period: m.new_period,
                });
            }
        }
        // Time-triggered refreshes (deferrable-update style policies).
        let wanted = {
            let freshness = &self.freshness;
            self.policy
                .tick_refreshes(self.clock, &|d: DataId| freshness.udrop(d))
        };
        let mut spawned = false;
        for d in wanted {
            if self.pending_ondemand[d.index()] {
                continue;
            }
            let Some(exec) = self.item_update_exec[d.index()] else {
                continue;
            };
            self.pending_ondemand[d.index()] = true;
            self.demand_refreshes += 1;
            self.spawn_update(d, exec, self.clock, true);
            spawned = true;
        }
        if spawned {
            self.reschedule();
        }
        if self.cfg.record_timeline {
            self.timeline.push(TimelineSample {
                time: self.clock,
                usm: self.counts.average_usm(&self.cfg.weights),
                ready_queries,
                update_backlog_secs,
                utilization,
            });
        }
        // New utilization window.
        self.window_busy = SimDuration::ZERO;
        self.window_start = self.clock;

        #[cfg(feature = "validate")]
        self.validate_invariants();

        let next = self.clock + self.cfg.tick_period;
        if next.0 <= self.cfg.horizon.0 {
            self.events.push(next, Event::ControlTick);
        }
    }

    /// Fault-transition hook: at a crash-window start preempt every running
    /// transaction (their scheduled completions go stale through the
    /// generation check, so nothing commits inside the window); at a
    /// recovery or burst instant inject any scheduled background load and
    /// re-fill the CPUs. O(n_cpus · log N_rq + B_now) plus the trailing
    /// [`Simulator::reschedule`].
    fn on_fault_transition(&mut self) {
        let Some(health) = self.faults.as_deref().map(|h| h.health(self.clock)) else {
            debug_assert!(false, "FaultTransition scheduled without a hook");
            return;
        };
        if self.obs.is_some() {
            let (phase, until) = match health {
                HealthState::Up => (FaultPhase::Up, None),
                HealthState::Degraded { until } => (FaultPhase::Degraded, Some(until)),
                HealthState::Down { until } => (FaultPhase::Down, Some(until)),
            };
            self.emit(ObsEvent::FaultWindow {
                time: self.clock,
                phase,
                until,
            });
        }
        if health.queries_paused() {
            while !self.running.is_empty() {
                self.preempt_running(0);
            }
            return;
        }
        let loads = self
            .faults
            .as_deref()
            .map(|h| h.load_at(self.clock))
            .unwrap_or_default();
        for load in loads {
            self.fault_counts.background_spawned += 1;
            self.spawn_background(load.exec);
        }
        // Recovery instants reach here with an empty load list: this
        // reschedule is what restarts the work preempted at window start.
        self.reschedule();
    }

    /// Delayed-apply hook: spawn the update transaction that
    /// [`UpdateFault::Delay`] postponed, unless a crash/degradation window
    /// now drops it. O(log N_rq) plus the trailing
    /// [`Simulator::reschedule`].
    fn on_delayed_apply(&mut self, item: DataId, exec: SimDuration, edf_deadline: SimTime) {
        let dropped = self
            .faults
            .as_deref()
            .is_some_and(|h| h.health(self.clock).updates_dropped());
        if dropped {
            self.fault_counts.update_drops += 1;
            return;
        }
        self.spawn_update(item, exec, edf_deadline, false);
        self.reschedule();
    }

    /// The recovery instant of the current crash window, when the fault
    /// hook reports the server [`HealthState::Down`] at the current clock
    /// with a strictly-future recovery (the strictness guard makes a
    /// degenerate `until == now` window inert instead of self-deferring
    /// forever). `None` on every fault-free path. O(log F).
    fn paused_until(&self) -> Option<SimTime> {
        let hook = self.faults.as_deref()?;
        match hook.health(self.clock) {
            HealthState::Down { until } if until > self.clock => Some(until),
            _ => None,
        }
    }

    /// Cross-check the incremental engine structures against naive
    /// recomputation (see [`crate::validate`]): the Fenwick work index vs an
    /// O(N) recount over the admitted set, and the USM tallies vs the raw
    /// outcome log. Runs at every control tick and once at end of run.
    #[cfg(feature = "validate")]
    fn validate_invariants(&self) {
        unit_core::validate_check!(
            "work-index",
            crate::validate::check_work_index(
                &self.work_index,
                &self.deadline_coords,
                self.admitted
                    .iter()
                    .map(|(&(deadline, _), e)| (deadline, e.remaining.0)),
            )
        );
        unit_core::validate_check!(
            "usm-identity",
            crate::validate::check_usm_identity(&self.counts, &self.outcome_log, &self.cfg.weights)
        );
    }

    // --- scheduling ------------------------------------------------------

    /// Re-evaluate CPU ownership: fill idle CPUs with the highest-priority
    /// ready transactions, preempting lower-priority incumbents when every
    /// CPU is busy. Loops until no dispatchable candidate outranks the
    /// worst incumbent. O(D · (n_cpus + log N_rq)) where D is the number of
    /// dispatch attempts this call actually performs (usually 0 or 1).
    fn reschedule(&mut self) {
        if self.paused_until().is_some() {
            return; // crash window: nothing dispatches until recovery
        }
        loop {
            let Some(&key) = self.ready.iter().next() else {
                return;
            };
            if self.running.len() >= self.cfg.n_cpus {
                // All CPUs busy: preempt the lowest-priority incumbent if
                // the best ready candidate outranks it.
                let (pos, worst_key) = self
                    .running
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (i, self.pkey(r.id)))
                    .max_by_key(|&(_, k)| k)
                    // lint: allow(panic) — running.len() >= n_cpus >= 1 on this branch
                    .expect("running is non-empty");
                if worst_key <= key {
                    return; // incumbents keep their CPUs
                }
                self.preempt_running(pos);
            }
            self.ready.remove(&key);
            let cand = key.2;
            match self.try_dispatch(cand) {
                DispatchResult::Running
                | DispatchResult::Blocked
                | DispatchResult::SpawnedRefresh => {}
            }
        }
    }

    fn preempt_running(&mut self, pos: usize) {
        let run = self.running.swap_remove(pos);
        let elapsed = self.clock.saturating_since(run.started);
        self.charge_cpu(elapsed);
        let txn = &mut self.txns[run.id.index()];
        debug_assert_eq!(txn.state, TxnState::Running);
        txn.remaining = txn.remaining.saturating_sub(elapsed);
        if !txn.is_query() {
            self.outstanding_update_work = self.outstanding_update_work.saturating_sub(elapsed);
        }
        txn.state = TxnState::Ready;
        let key = self.pkey(run.id);
        self.ready.insert(key);
        self.sync_admitted_remaining(run.id);
        self.preemptions += 1;
    }

    fn try_dispatch(&mut self, id: TxnId) -> DispatchResult {
        debug_assert!(self.running.len() < self.cfg.n_cpus);
        match self.txns[id.index()].kind {
            TxnKind::Query { spec_idx, .. } => self.try_dispatch_query(id, spec_idx),
            TxnKind::Update { item, .. } => self.try_dispatch_update(id, item),
            TxnKind::Background => {
                // Injected load takes no locks: straight onto the CPU.
                self.start_running(id);
                DispatchResult::Running
            }
        }
    }

    fn try_dispatch_query(&mut self, id: TxnId, spec_idx: usize) -> DispatchResult {
        // Copy the `&'a Trace` reference out of `self` so `spec` does not
        // keep `self` borrowed across the mutating calls below.
        let trace = self.trace;
        let spec = &trace.queries[spec_idx];

        // On-demand refreshes (ODU): before the query touches data, the
        // policy may demand update transactions for its stale items. Those
        // are update-class, so they will run first.
        if !self.txns[id.index()].holds_locks {
            let spawned = self.spawn_demand_refreshes(spec_idx);
            if spawned {
                // The query goes back to the ready queue; the caller's loop
                // re-evaluates who runs next.
                self.txns[id.index()].state = TxnState::Ready;
                let key = self.pkey(id);
                self.ready.insert(key);
                return DispatchResult::SpawnedRefresh;
            }
        }

        if !self.txns[id.index()].holds_locks {
            match self.locks.acquire_read(id, &spec.items) {
                ReadAcquire::Granted => {
                    let f = self.cfg.freshness_model.read_set_freshness(
                        &self.freshness,
                        &spec.items,
                        self.clock,
                    );
                    self.dispatch_freshness_sum += f;
                    self.dispatch_freshness_n += 1;
                    {
                        let txn = &mut self.txns[id.index()];
                        txn.holds_locks = true;
                        if let TxnKind::Query {
                            freshness_at_dispatch,
                            ..
                        } = &mut txn.kind
                        {
                            *freshness_at_dispatch = Some(f);
                        }
                    }
                    self.policy.on_query_dispatch(spec, f);
                }
                ReadAcquire::BlockedOn(d) => {
                    let txn = &mut self.txns[id.index()];
                    txn.state = TxnState::Blocked;
                    txn.blocked_on = Some(d);
                    self.blocked.push(id);
                    return DispatchResult::Blocked;
                }
            }
        }
        self.start_running(id);
        DispatchResult::Running
    }

    fn try_dispatch_update(&mut self, id: TxnId, item: DataId) -> DispatchResult {
        if !self.txns[id.index()].holds_locks {
            let my_key = self.pkey(id);
            let txns = &self.txns;
            let discipline = self.cfg.discipline;
            let result = self.locks.acquire_write(id, item, |holder: TxnId| {
                let h = &txns[holder.index()];
                my_key < (discipline.rank(h.class), h.edf_deadline, h.id)
            });
            match result {
                WriteAcquire::Granted { aborted } => {
                    self.txns[id.index()].holds_locks = true;
                    for victim in aborted {
                        self.restart_victim(victim);
                    }
                }
                WriteAcquire::BlockedOn(d) => {
                    let txn = &mut self.txns[id.index()];
                    txn.state = TxnState::Blocked;
                    txn.blocked_on = Some(d);
                    self.blocked.push(id);
                    return DispatchResult::Blocked;
                }
            }
        }
        self.start_running(id);
        DispatchResult::Running
    }

    /// A lock holder evicted by 2PL-HP: full restart (§3.1). Its locks were
    /// already released by the lock manager. With multiple CPUs the victim
    /// may be running concurrently — stop it first.
    fn restart_victim(&mut self, victim: TxnId) {
        if let Some(pos) = self.running.iter().position(|r| r.id == victim) {
            let run = self.running.swap_remove(pos);
            let elapsed = self.clock.saturating_since(run.started);
            self.charge_cpu(elapsed);
            let txn = &mut self.txns[victim.index()];
            txn.remaining = txn.remaining.saturating_sub(elapsed);
            if !txn.is_query() {
                self.outstanding_update_work = self.outstanding_update_work.saturating_sub(elapsed);
            }
            txn.state = TxnState::Ready;
            // Not reinserted into ready here: restart() below re-queues it.
        }
        let key = self.pkey(victim);
        self.ready.remove(&key);
        let txn = &mut self.txns[victim.index()];
        debug_assert_ne!(txn.state, TxnState::Finished, "finished txns hold no locks");
        let was_query = txn.is_query();
        let lost_progress = txn.exec_time.saturating_sub(txn.remaining);
        txn.restart();
        let key = self.pkey(victim);
        self.ready.insert(key);
        if was_query {
            self.sync_admitted_remaining(victim);
            self.query_restarts += 1;
        } else {
            // An update victim restarts with its full demand again.
            self.outstanding_update_work += lost_progress;
        }
    }

    fn start_running(&mut self, id: TxnId) {
        let txn = &mut self.txns[id.index()];
        txn.state = TxnState::Running;
        txn.blocked_on = None;
        let remaining = txn.remaining;
        let generation = self.next_generation;
        self.next_generation += 1;
        self.running.push(RunningTxn {
            id,
            started: self.clock,
            generation,
        });
        self.events.push(
            self.clock + remaining,
            Event::Completion {
                txn: id,
                generation,
            },
        );
    }

    fn spawn_update(
        &mut self,
        item: DataId,
        exec: SimDuration,
        edf_deadline: SimTime,
        on_demand: bool,
    ) {
        let id = TxnId(self.txns.len() as u64);
        let txn = Txn {
            id,
            class: TxnClass::Update,
            edf_deadline,
            exec_time: exec,
            remaining: exec,
            state: TxnState::Ready,
            holds_locks: false,
            blocked_on: None,
            kind: TxnKind::Update { item, on_demand },
        };
        self.outstanding_update_work += exec;
        self.ready.insert(self.pkey_of(&txn));
        self.txns.push(txn);
    }

    /// Inject one background-load transaction (fault-schedule burst):
    /// update-class CPU demand, no locks, no item, no outcome. Its EDF
    /// deadline is the injection instant, so it outranks every pending
    /// periodic update — bursts bite immediately.
    fn spawn_background(&mut self, exec: SimDuration) {
        let id = TxnId(self.txns.len() as u64);
        let txn = Txn {
            id,
            class: TxnClass::Update,
            edf_deadline: self.clock,
            exec_time: exec,
            remaining: exec,
            state: TxnState::Ready,
            holds_locks: false,
            blocked_on: None,
            kind: TxnKind::Background,
        };
        self.outstanding_update_work += exec;
        self.ready.insert(self.pkey_of(&txn));
        self.txns.push(txn);
    }

    fn unblock_waiters(&mut self, freed: &[DataId]) {
        if freed.is_empty() || self.blocked.is_empty() {
            return;
        }
        let mut unblocked = Vec::new();
        self.blocked.retain(|&b| {
            let txn = &self.txns[b.index()];
            match txn.blocked_on {
                Some(d) if freed.contains(&d) => {
                    unblocked.push(b);
                    false
                }
                _ => true,
            }
        });
        for id in unblocked {
            {
                let txn = &mut self.txns[id.index()];
                txn.state = TxnState::Ready;
                txn.blocked_on = None;
            }
            let key = self.pkey(id);
            self.ready.insert(key);
        }
    }

    // --- bookkeeping -----------------------------------------------------

    fn charge_cpu(&mut self, elapsed: SimDuration) {
        self.cpu_busy += elapsed;
        self.window_busy += elapsed;
    }

    fn record_outcome(&mut self, spec_idx: usize, outcome: Outcome) {
        self.counts.record(outcome);
        #[cfg(feature = "validate")]
        self.outcome_log.push(outcome);
        if self.cfg.record_outcomes {
            self.outcome_records.push(crate::stats::OutcomeRecord {
                seq: self.outcome_records.len() as u64,
                time: self.clock,
                query: self.trace.queries[spec_idx].id,
                outcome,
            });
        }
        let spec = &self.trace.queries[spec_idx];
        let class = spec.pref_class as usize;
        if self.class_counts.len() <= class {
            self.class_counts
                .resize(class + 1, OutcomeCounts::default());
        }
        self.class_counts[class].record(outcome);
        self.policy.on_query_outcome(spec, outcome);
        if self.obs.is_some() {
            self.emit(ObsEvent::QueryOutcome {
                time: self.clock,
                query: spec.id,
                outcome,
            });
        }
    }

    // --- policy views ----------------------------------------------------

    /// The cheap [`SnapshotView`] scalars — the update backlog adjusted for
    /// the in-progress slices of running updates, and the windowed CPU
    /// utilization — in `O(n_cpus)`.
    fn view_scalars(&self) -> (SimDuration, f64) {
        let mut update_backlog = self.outstanding_update_work;
        for r in &self.running {
            if !self.txns[r.id.index()].is_query() {
                update_backlog =
                    update_backlog.saturating_sub(self.clock.saturating_since(r.started));
            }
        }

        let window = self.clock.saturating_since(self.window_start);
        let mut busy = self.window_busy;
        for r in &self.running {
            // Include the in-progress slice of each current runner.
            let started = r.started.max(self.window_start);
            busy += self.clock.saturating_since(started);
        }
        let recent_utilization = if window.is_zero() {
            0.0
        } else {
            (busy.as_secs_f64() / (window.as_secs_f64() * self.cfg.n_cpus as f64)).min(1.0)
        };
        (update_backlog, recent_utilization)
    }

    /// Run `f(policy, view)` with a borrowed [`SnapshotView`] over the live
    /// indexes: no admitted-query list is materialized unless the policy
    /// asks for one, and work probes go through the Fenwick index.
    fn with_view<R>(&mut self, f: impl FnOnce(&mut P, &SnapshotView<'_>) -> R) -> R {
        let (update_backlog, recent_utilization) = self.view_scalars();
        let Simulator {
            policy,
            clock,
            admitted,
            deadline_coords,
            work_index,
            running,
            txns,
            view_scratch,
            ..
        } = self;
        let source = EngineQueue {
            clock: *clock,
            admitted: &*admitted,
            deadline_coords: &*deadline_coords,
            work_index: &*work_index,
            running: &*running,
            txns: &*txns,
            scratch: &*view_scratch,
        };
        let view = SnapshotView::new(*clock, update_backlog, recent_utilization, &source);
        f(policy, &view)
    }

    // --- admitted-query index maintenance --------------------------------

    /// Coordinate of `deadline` in the work index.
    fn coord_of(&self, deadline: SimTime) -> usize {
        self.deadline_coords
            .binary_search(&deadline)
            // lint: allow(panic) — coords are built from all trace deadlines up front
            .expect("every admitted deadline is a trace coordinate")
    }

    fn insert_admitted(&mut self, spec_idx: usize, txn: TxnId) {
        let trace = self.trace;
        let spec = &trace.queries[spec_idx];
        let deadline = spec.deadline();
        let coord = self.coord_of(deadline);
        let prev = self.admitted.insert(
            (deadline, spec.id),
            AdmittedEntry {
                txn,
                remaining: spec.exec_time,
                pref_class: spec.pref_class,
            },
        );
        debug_assert!(prev.is_none(), "query admitted twice");
        self.work_index.add(coord, spec.exec_time.0);
    }

    /// Re-sync the stored remaining of an admitted query after its
    /// transaction's `remaining` changed at rest (preemption or 2PL-HP
    /// restart). No-op for update transactions.
    fn sync_admitted_remaining(&mut self, id: TxnId) {
        let txn = &self.txns[id.index()];
        let TxnKind::Query { spec_idx, .. } = txn.kind else {
            return;
        };
        let key = (txn.edf_deadline, self.trace.queries[spec_idx].id);
        let coord = self.coord_of(txn.edf_deadline);
        let new = txn.remaining;
        let entry = self
            .admitted
            .get_mut(&key)
            // lint: allow(panic) — insert/remove are paired with txn lifecycle
            .expect("unfinished query must be admitted");
        let old = entry.remaining;
        entry.remaining = new;
        if new >= old {
            self.work_index.add(coord, new.0 - old.0);
        } else {
            self.work_index.sub(coord, old.0 - new.0);
        }
    }

    fn remove_admitted(&mut self, id: TxnId) {
        let txn = &self.txns[id.index()];
        let TxnKind::Query { spec_idx, .. } = txn.kind else {
            // lint: allow(panic) — callers pass ids from the admitted index
            unreachable!("only queries enter the admitted index");
        };
        let key = (txn.edf_deadline, self.trace.queries[spec_idx].id);
        let coord = self.coord_of(txn.edf_deadline);
        let entry = self
            .admitted
            .remove(&key)
            // lint: allow(panic) — insert/remove are paired with txn lifecycle
            .expect("unfinished query must be admitted");
        self.work_index.sub(coord, entry.remaining.0);
    }
}
