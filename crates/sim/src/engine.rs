//! The discrete-event web-database server (§3.1, Figure 1 — data flow).
//!
//! A single-CPU server processes two transaction classes under a
//! **dual-priority** discipline: update transactions outrank user queries,
//! and EDF orders each class internally. The CPU is preemptive (a newly
//! arrived higher-priority transaction takes over; the preempted one keeps
//! its locks and its progress). Concurrency control is **2PL-HP**: a
//! higher-priority transaction that hits a lock conflict evicts
//! lower-priority holders, which restart from scratch. Queries have **firm
//! deadlines** — at expiry an uncommitted query is aborted and counted as a
//! Deadline-Missed Failure.
//!
//! The engine is policy-agnostic: every decision (admission, which versions
//! to apply, on-demand refreshes, feedback control) is delegated to a
//! [`Policy`]. Freshness bookkeeping follows §2.2: version arrivals from the
//! sources raise per-item `Udrop`; applying an update clears it; a query's
//! freshness is the strict minimum over its read set, captured **when its
//! read locks are granted** (the versions it actually reads — any update
//! applied later would evict it through 2PL-HP and force a re-read).
//!
//! Determinism: given `(trace, policy, config)` a run is bit-reproducible —
//! event ties pop in insertion order and the engine itself uses no
//! randomness (policies carry their own seeded RNGs).

use crate::events::{Event, EventQueue};
use crate::faults::{FaultHook, HealthState, UpdateFault};

#[path = "engine_checkpoint.rs"]
mod checkpoint;
use crate::locks::{LockManager, ReadAcquire, WriteAcquire};
use crate::stats::{FaultCounts, SignalCounts, SimReport, TimelineSample};
use crate::txn::{Txn, TxnId, TxnKind, TxnState};
use crate::worktreap::WorkTreap;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;
use unit_core::fenwick::Fenwick;
use unit_core::freshness::FreshnessTable;
use unit_core::freshness_model::FreshnessModel;
use unit_core::policy::{ControlSignal, Policy};
use unit_core::snapshot::{QueueEntryView, QueueSource, SnapshotView};
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, Outcome, QueryId, QuerySpec, Trace, TxnClass, UpdateSpec};
use unit_core::usm::{OutcomeCounts, UsmWeights};
use unit_obs::{FaultPhase, ObsEvent, Observer};

/// How the single CPU orders ready transactions.
///
/// The paper fixes the dual-priority discipline (§3.1); the alternatives
/// exist to *measure* that choice (see the ablation binary): global EDF
/// lets urgent queries pre-empt update work, and query-first shows what
/// happens when the foreground always wins (freshness starves).
///
/// Caveat: on-demand refresh policies (ODU, DEF) assume their refresh
/// transactions outrank the waiting query — which only the dual-priority
/// (and, by deadline, usually the global-EDF) discipline guarantees. Under
/// `QueryFirst` a spawned refresh sits *behind* its requester, so pair the
/// ablation disciplines with policies that do not rely on demand refreshes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulingDiscipline {
    /// Updates strictly outrank queries; EDF within each class (the paper).
    #[default]
    DualPriorityEdf,
    /// One EDF order across both classes (updates keyed by their
    /// temporal-validity deadline, queries by their firm deadline).
    GlobalEdf,
    /// Queries strictly outrank updates; EDF within each class.
    QueryFirst,
}

impl SchedulingDiscipline {
    /// Class rank under this discipline (lower runs first).
    fn rank(self, class: TxnClass) -> u8 {
        match (self, class) {
            (SchedulingDiscipline::DualPriorityEdf, TxnClass::Update) => 0,
            (SchedulingDiscipline::DualPriorityEdf, TxnClass::Query) => 1,
            (SchedulingDiscipline::GlobalEdf, _) => 0,
            (SchedulingDiscipline::QueryFirst, TxnClass::Query) => 0,
            (SchedulingDiscipline::QueryFirst, TxnClass::Update) => 1,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Weights used to classify nothing (outcomes are weight-independent)
    /// but to report USM and to drive weight-aware policies' `on_tick`.
    pub weights: UsmWeights,
    /// Workload horizon: sources and control ticks stop here; in-flight
    /// work drains afterwards.
    pub horizon: SimDuration,
    /// Control-tick period (drives `Policy::on_tick`).
    pub tick_period: SimDuration,
    /// Record a [`TimelineSample`] at every control tick.
    pub record_timeline: bool,
    /// Freshness semantics used to judge query read sets (§2.2's three
    /// metric families; the paper uses the lag-based default).
    pub freshness_model: FreshnessModel,
    /// CPU scheduling discipline (the paper's dual-priority EDF by default).
    pub discipline: SchedulingDiscipline,
    /// Number of CPUs (the paper's server has 1). With `k` CPUs the `k`
    /// highest-priority ready transactions run concurrently; 2PL-HP then
    /// resolves genuinely simultaneous lock conflicts.
    pub n_cpus: usize,
    /// Record every per-query outcome as an [`crate::stats::OutcomeRecord`]
    /// (virtual time, query id, outcome, sequence number) in the report.
    /// The cluster layer merges these logs across shards; off by default so
    /// single-server runs carry no extra allocation.
    pub record_outcomes: bool,
}

impl SimConfig {
    /// A config with the given horizon and 1-second control ticks.
    pub fn new(horizon: SimDuration) -> Self {
        SimConfig {
            weights: UsmWeights::naive(),
            horizon,
            tick_period: SimDuration::from_secs(1),
            record_timeline: false,
            freshness_model: FreshnessModel::default(),
            discipline: SchedulingDiscipline::default(),
            n_cpus: 1,
            record_outcomes: false,
        }
    }

    /// Enable per-query outcome logging (see [`SimConfig::record_outcomes`]).
    #[must_use]
    pub fn with_outcome_log(mut self) -> Self {
        self.record_outcomes = true;
        self
    }

    /// Set the reporting/policy weights.
    #[must_use]
    pub fn with_weights(mut self, weights: UsmWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Enable timeline recording.
    #[must_use]
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Override the control-tick period.
    #[must_use]
    pub fn with_tick_period(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "tick period must be positive");
        self.tick_period = period;
        self
    }

    /// Override the scheduling discipline (for ablations).
    #[must_use]
    pub fn with_discipline(mut self, discipline: SchedulingDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Set the number of CPUs (≥ 1).
    ///
    /// # Panics
    /// Panics if `n_cpus` is zero.
    #[must_use]
    pub fn with_cpus(mut self, n_cpus: usize) -> Self {
        assert!(n_cpus >= 1, "need at least one CPU");
        self.n_cpus = n_cpus;
        self
    }

    /// Override the freshness semantics.
    ///
    /// # Panics
    /// Panics on degenerate model parameters.
    #[must_use]
    pub fn with_freshness_model(mut self, model: FreshnessModel) -> Self {
        if let Err(e) = model.validate() {
            // lint: allow(panic) — documented constructor contract, caught at config time
            panic!("invalid freshness model: {e}");
        }
        self.freshness_model = model;
        self
    }
}

/// Run `policy` over `trace` and return the report. Convenience wrapper
/// around [`Simulator`].
pub fn run_simulation<P: Policy>(trace: &Trace, policy: P, cfg: SimConfig) -> SimReport {
    Simulator::new(trace, policy, cfg).run()
}

#[derive(Debug, Clone, Copy)]
struct RunningTxn {
    id: TxnId,
    started: SimTime,
    generation: u64,
}

type PriorityKey = (u8, SimTime, TxnId);

/// An admitted, unfinished query as tracked by the deadline index.
#[derive(Debug, Clone, Copy)]
struct AdmittedEntry {
    /// The live transaction carrying this query.
    txn: TxnId,
    /// Stored remaining service, synced whenever the transaction's
    /// `remaining` changes at rest (preemption, 2PL-HP restart). The
    /// in-progress slice of a *running* query is subtracted at view time.
    remaining: SimDuration,
    /// Submitting user's preference class.
    pref_class: u32,
}

/// Where the engine's query specs live.
///
/// The materialized variant borrows the trace's query list (the classic
/// path). The streamed variant owns a small slab holding only *in-flight*
/// specs — interned by [`Simulator::feed_query`], released the moment the
/// query's outcome is recorded — so a run over tens of millions of queries
/// keeps O(in-flight + lookahead) specs resident instead of O(N_q).
enum QueryStore<'a> {
    /// All specs up front, borrowed from the trace.
    Materialized(&'a [QuerySpec]),
    /// Slab of in-flight specs; `spec_idx` is a slot index.
    Streamed {
        /// In-flight (and recycled) spec slots.
        slab: Vec<QuerySpec>,
        /// Slots whose outcome has been recorded, free for reuse.
        free: Vec<usize>,
    },
}

impl QueryStore<'_> {
    /// The spec behind `spec_idx` (a trace index when materialized, a slab
    /// slot when streamed). O(1).
    fn get(&self, idx: usize) -> &QuerySpec {
        match self {
            QueryStore::Materialized(qs) => &qs[idx],
            QueryStore::Streamed { slab, .. } => &slab[idx],
        }
    }

    /// Intern a streamed spec, recycling a freed slot when one exists.
    /// Returns the slot index. O(1) amortized.
    fn intern(&mut self, spec: QuerySpec) -> usize {
        match self {
            QueryStore::Materialized(_) => {
                // lint: allow(panic) — feed_query is only reachable on streaming runs
                unreachable!("cannot intern into a materialized store")
            }
            QueryStore::Streamed { slab, free } => match free.pop() {
                Some(slot) => {
                    slab[slot] = spec;
                    slot
                }
                None => {
                    slab.push(spec);
                    slab.len() - 1
                }
            },
        }
    }

    /// Release a streamed slot once its outcome is recorded; no-op when
    /// materialized. O(1).
    fn release(&mut self, idx: usize) {
        if let QueryStore::Streamed { free, .. } = self {
            free.push(idx);
        }
    }
}

/// Remaining admitted-query work bucketed by deadline — the structure
/// behind every `query_work_at_or_before` probe.
///
/// The static variant spans the sorted, deduplicated deadlines of the whole
/// trace (known up front) and answers probes in O(log N) through a Fenwick
/// tree. The dynamic variant — used by streaming runs, where deadlines are
/// only discovered as queries are fed — keeps a [`WorkTreap`] over the
/// deadlines of *currently admitted* queries, with O(log A) expected
/// probes in the admitted-deadline count. Both answer with exact integer
/// tick sums, so a probe's result never depends on which variant served
/// it.
enum WorkIndex {
    /// Fenwick tree over the trace's full deadline coordinate space.
    Static {
        /// Sorted, deduplicated deadlines of every trace query.
        coords: Vec<SimTime>,
        /// Remaining work (ticks) per coordinate.
        fenwick: Fenwick<u64>,
    },
    /// Order-statistic treap over currently admitted deadlines.
    Dynamic {
        /// Remaining work (ticks) per admitted deadline; nodes are
        /// removed at zero so the tree tracks the live admitted set.
        index: WorkTreap,
    },
}

impl WorkIndex {
    /// Add `ticks` of remaining work at `deadline`. O(log N) / O(log A).
    fn add(&mut self, deadline: SimTime, ticks: u64) {
        if ticks == 0 {
            return;
        }
        match self {
            WorkIndex::Static { coords, fenwick } => {
                let coord = coords
                    .binary_search(&deadline)
                    // lint: allow(panic) — coords are built from all trace deadlines up front
                    .expect("every admitted deadline is a trace coordinate");
                fenwick.add(coord, ticks);
            }
            WorkIndex::Dynamic { index } => index.add(deadline, ticks),
        }
    }

    /// Remove `ticks` of remaining work at `deadline`. O(log N) / O(log A).
    fn sub(&mut self, deadline: SimTime, ticks: u64) {
        if ticks == 0 {
            return;
        }
        match self {
            WorkIndex::Static { coords, fenwick } => {
                let coord = coords
                    .binary_search(&deadline)
                    // lint: allow(panic) — coords are built from all trace deadlines up front
                    .expect("every admitted deadline is a trace coordinate");
                fenwick.sub(coord, ticks);
            }
            WorkIndex::Dynamic { index } => index.sub(deadline, ticks),
        }
    }

    /// Total remaining admitted work, in ticks. O(1).
    fn total(&self) -> u64 {
        match self {
            WorkIndex::Static { fenwick, .. } => fenwick.total(),
            WorkIndex::Dynamic { index } => index.total(),
        }
    }

    /// Remaining admitted work with deadline `<= deadline`, in ticks.
    /// O(log N) static, O(A) dynamic.
    fn at_or_before(&self, deadline: SimTime) -> u64 {
        match self {
            WorkIndex::Static { coords, fenwick } => {
                let count = coords.partition_point(|&d| d <= deadline);
                fenwick.prefix_sum(count)
            }
            WorkIndex::Dynamic { index } => index.at_or_before(deadline),
        }
    }
}

/// Borrowed, work-indexed [`QueueSource`] over the simulator's admitted
/// queries: `O(log N_rq)` work probes, `O(N_rq)` materialization only when a
/// policy explicitly asks for the whole list.
struct EngineQueue<'b> {
    clock: SimTime,
    admitted: &'b BTreeMap<(SimTime, QueryId), AdmittedEntry>,
    work: &'b WorkIndex,
    running: &'b [RunningTxn],
    txns: &'b [Txn],
    scratch: &'b RefCell<Vec<QueueEntryView>>,
}

impl EngineQueue<'_> {
    /// In-progress slice of `id` when it currently holds a CPU.
    fn running_elapsed(&self, id: TxnId) -> SimDuration {
        self.running
            .iter()
            .find(|r| r.id == id)
            .map_or(SimDuration::ZERO, |r| {
                self.clock.saturating_since(r.started)
            })
    }

    fn entry_view(&self, key: &(SimTime, QueryId), e: &AdmittedEntry) -> QueueEntryView {
        QueueEntryView {
            id: key.1,
            deadline: key.0,
            remaining: e.remaining.saturating_sub(self.running_elapsed(e.txn)),
            pref_class: e.pref_class,
        }
    }

    /// Already-served (not yet synced) work of current query-class runners
    /// with deadline `<= deadline`; pass [`SimTime::MAX`] for all of them.
    /// `O(n_cpus)`.
    fn running_query_elapsed_before(&self, deadline: SimTime) -> SimDuration {
        let mut elapsed = SimDuration::ZERO;
        for r in self.running {
            let txn = &self.txns[r.id.index()];
            if txn.is_query() && txn.edf_deadline <= deadline {
                elapsed += self.clock.saturating_since(r.started);
            }
        }
        elapsed
    }
}

impl QueueSource for EngineQueue<'_> {
    fn query_count(&self) -> usize {
        self.admitted.len()
    }

    fn total_query_work(&self) -> SimDuration {
        SimDuration(self.work.total())
            .saturating_sub(self.running_query_elapsed_before(SimTime::MAX))
    }

    fn query_work_at_or_before(&self, deadline: SimTime) -> SimDuration {
        SimDuration(self.work.at_or_before(deadline))
            .saturating_sub(self.running_query_elapsed_before(deadline))
    }

    fn for_each_later(&self, after: SimTime, visit: &mut dyn FnMut(QueueEntryView) -> bool) {
        // Keys strictly above `(after, MAX)` are exactly those with
        // deadline > after (no trace query carries id u64::MAX).
        let from = (
            Bound::Excluded((after, QueryId(u64::MAX))),
            Bound::Unbounded,
        );
        for (key, e) in self.admitted.range(from) {
            if !visit(self.entry_view(key, e)) {
                return;
            }
        }
    }

    fn with_queries(&self, f: &mut dyn FnMut(&[QueueEntryView])) {
        let mut buf = self.scratch.borrow_mut();
        buf.clear();
        buf.extend(self.admitted.iter().map(|(k, e)| self.entry_view(k, e)));
        f(&buf);
    }
}

enum DispatchResult {
    /// Candidate is now running.
    Running,
    /// Candidate blocked on a lock; it left the ready queue.
    Blocked,
    /// On-demand refresh updates were spawned; candidate went back to ready.
    SpawnedRefresh,
}

/// The discrete-event server. Most users want [`run_simulation`].
pub struct Simulator<'a, P: Policy> {
    /// Query specs: the whole trace (materialized runs) or an in-flight
    /// slab (streaming runs; see [`Simulator::new_streaming`]).
    queries: QueryStore<'a>,
    /// Update-stream specs (always known up front).
    updates: &'a [UpdateSpec],
    /// Database size.
    n_items: usize,
    policy: P,
    cfg: SimConfig,

    clock: SimTime,
    /// Whether the run has been started (trace arrivals seeded, policy
    /// initialized). Flipped by the first [`Simulator::step`].
    started: bool,
    events: EventQueue,
    /// The next control tick as `(time, seq)`, kept *out* of the event heap:
    /// ticks are strictly periodic and there is at most one pending, so a
    /// tracked slot saves one heap push+pop per tick — the dominant event
    /// class on replicated cluster shards. The seq is claimed from the
    /// runtime counter at exactly the point the heap push used to happen,
    /// so same-instant tie-breaking is bit-identical to the heap-resident
    /// scheme. Fault windows fall back to the heap (a deferred tick is an
    /// ordinary event again).
    next_tick: Option<(SimTime, u64)>,
    /// Queries submitted so far: the trace length on materialized runs, the
    /// fed count on streaming runs (each outcome is checked against it at
    /// drain).
    submitted: u64,
    /// Per-item access histogram accumulated at feed time (streaming runs
    /// only; materialized runs recompute it from the trace at report time).
    streamed_accesses: Vec<u64>,
    /// Arrival of the most recently fed query (streamed monotonicity check).
    last_fed_arrival: SimTime,
    /// Trace arrivals currently sitting in the event heap (seeded or fed,
    /// not yet handled). The streamed feeder uses it to cap its lookahead
    /// at `chunk` *buffered* arrivals, which is what keeps the heap — and
    /// peak memory — small on a million-query stream.
    arrivals_in_flight: u64,
    /// Streamed runs: the feeder promised no further [`Simulator::feed_query`]
    /// calls, so the idle-tick skip no longer needs the feed cap.
    stream_exhausted: bool,
    txns: Vec<Txn>,
    ready: BTreeSet<PriorityKey>,
    blocked: Vec<TxnId>,
    running: Vec<RunningTxn>,
    next_generation: u64,
    locks: LockManager,
    freshness: FreshnessTable,
    /// Per-item execution time of the item's update stream (for on-demand
    /// refreshes); `None` when the item has no stream.
    item_update_exec: Vec<Option<SimDuration>>,
    /// Items with a queued-but-uncommitted on-demand refresh.
    pending_ondemand: Vec<bool>,
    /// Sum of `remaining` over every unfinished update transaction, kept
    /// incrementally so snapshot scalars are O(n_cpus) even when the update
    /// backlog holds tens of thousands of transactions.
    outstanding_update_work: SimDuration,
    /// Admitted, unfinished queries keyed by `(deadline, trace id)` — the
    /// exact ascending order [`QueueSource`] iteration must follow.
    admitted: BTreeMap<(SimTime, QueryId), AdmittedEntry>,
    /// Remaining admitted-query work bucketed by deadline, so
    /// `work_ahead_of(deadline)` probes are cheap instead of a walk.
    work: WorkIndex,
    /// Reusable buffer behind `QueueSource::with_queries`.
    view_scratch: RefCell<Vec<QueueEntryView>>,
    /// Optional fault-injection hook ([`crate::faults`]). `None` — the
    /// common case — takes exactly the fault-free code paths.
    faults: Option<Box<dyn FaultHook>>,
    /// Optional observability sink (`unit-obs`). Every emission site is
    /// gated on `is_some()`, so an absent observer costs one branch and an
    /// installed one is `report_digest`-bit-neutral (events carry only
    /// derived data; the differential suite pins both properties).
    obs: Option<&'a mut dyn Observer>,

    // --- crash recovery (lose-state) -------------------------------------
    // Everything in this block is deliberately *outside* the checkpointed
    // state: a restore must not rewind recovery progress, or the crash
    // that triggered it would re-fire during its own replay, forever.
    /// Sorted, deduplicated lose-state crash instants
    /// ([`FaultHook::lose_state_crashes`]), fixed at run start.
    crash_points: Vec<SimTime>,
    /// Crash points before this index have fired and been recovered from.
    next_crash_idx: usize,
    /// Deterministic snapshot taken at the most recent control boundary
    /// while a future crash point exists (see `take_checkpoint` in the
    /// checkpoint module).
    last_checkpoint: Option<Vec<u8>>,
    /// Streamed specs fed since the last checkpoint: their arrival events
    /// are not in the snapshot's heap, so a restore must re-feed them.
    input_log: Vec<QuerySpec>,
    /// While replaying a crash-lost window: `(crash instant, checkpoint
    /// instant)`; cleared when the clock catches back up to the crash.
    replay: Option<(SimTime, SimTime)>,

    // --- accounting -----------------------------------------------------
    counts: OutcomeCounts,
    class_counts: Vec<OutcomeCounts>,
    cpu_busy: SimDuration,
    window_busy: SimDuration,
    window_start: SimTime,
    preemptions: u64,
    query_restarts: u64,
    demand_refreshes: u64,
    signals: SignalCounts,
    fault_counts: FaultCounts,
    dispatch_freshness_sum: f64,
    dispatch_freshness_n: u64,
    timeline: Vec<TimelineSample>,
    events_processed: u64,
    /// Per-query outcome records (only filled when
    /// [`SimConfig::record_outcomes`] is set; exported through the report
    /// for the cluster merge layer).
    outcome_records: Vec<crate::stats::OutcomeRecord>,
    /// Raw per-query outcome log, kept only in validate builds so the USM
    /// tallies can be recounted from first principles at every control tick.
    #[cfg(feature = "validate")]
    outcome_log: Vec<Outcome>,
}

impl<'a, P: Policy> Simulator<'a, P> {
    /// Build a simulator; validates the trace.
    ///
    /// # Panics
    /// Panics if the trace is malformed (use [`Trace::validate`] to check
    /// beforehand).
    pub fn new(trace: &'a Trace, policy: P, cfg: SimConfig) -> Self {
        if let Err(e) = trace.validate() {
            // lint: allow(panic) — documented constructor contract, caught before the run
            panic!("invalid trace: {e}");
        }
        let mut deadline_coords: Vec<SimTime> =
            trace.queries.iter().map(QuerySpec::deadline).collect();
        deadline_coords.sort_unstable();
        deadline_coords.dedup();
        let fenwick = Fenwick::new(deadline_coords.len());
        Self::from_parts(
            QueryStore::Materialized(&trace.queries),
            &trace.updates,
            trace.n_items,
            WorkIndex::Static {
                coords: deadline_coords,
                fenwick,
            },
            trace.queries.len() as u64,
            Vec::new(),
            policy,
            cfg,
        )
    }

    /// Build a simulator with **no up-front query list**: queries are fed
    /// one at a time through [`Simulator::feed_query`] (or wholesale through
    /// [`Simulator::run_streamed`]) while the run progresses, so a
    /// million-user trace never materializes as a `Vec`. Update streams and
    /// the database size are still fixed up front — they define the server,
    /// not the load.
    ///
    /// # Panics
    /// Panics if any update spec is malformed (same contract as
    /// [`Simulator::new`]).
    pub fn new_streaming(
        n_items: usize,
        updates: &'a [UpdateSpec],
        policy: P,
        cfg: SimConfig,
    ) -> Self {
        // Reuse the trace validator on an empty-query trace so the update
        // checks stay in one place.
        let probe = Trace {
            n_items,
            queries: Vec::new(),
            updates: updates.to_vec(),
        };
        if let Err(e) = probe.validate() {
            // lint: allow(panic) — documented constructor contract, caught before the run
            panic!("invalid update streams: {e}");
        }
        Self::from_parts(
            QueryStore::Streamed {
                slab: Vec::new(),
                free: Vec::new(),
            },
            updates,
            n_items,
            WorkIndex::Dynamic {
                index: WorkTreap::new(),
            },
            0,
            vec![0u64; n_items],
            policy,
            cfg,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        queries: QueryStore<'a>,
        updates: &'a [UpdateSpec],
        n_items: usize,
        work: WorkIndex,
        submitted: u64,
        streamed_accesses: Vec<u64>,
        policy: P,
        cfg: SimConfig,
    ) -> Self {
        let mut item_update_exec = vec![None; n_items];
        for u in updates {
            let slot = &mut item_update_exec[u.item.index()];
            if slot.is_none() {
                *slot = Some(u.exec_time);
            }
        }
        Simulator {
            queries,
            updates,
            n_items,
            policy,
            cfg,
            clock: SimTime::ZERO,
            started: false,
            events: EventQueue::new(),
            next_tick: None,
            submitted,
            streamed_accesses,
            last_fed_arrival: SimTime::ZERO,
            arrivals_in_flight: 0,
            stream_exhausted: false,
            txns: Vec::new(),
            ready: BTreeSet::new(),
            blocked: Vec::new(),
            running: Vec::new(),
            next_generation: 0,
            locks: LockManager::new(n_items),
            freshness: FreshnessTable::new(n_items),
            item_update_exec,
            pending_ondemand: vec![false; n_items],
            outstanding_update_work: SimDuration::ZERO,
            admitted: BTreeMap::new(),
            work,
            view_scratch: RefCell::new(Vec::new()),
            faults: None,
            obs: None,
            crash_points: Vec::new(),
            next_crash_idx: 0,
            last_checkpoint: None,
            input_log: Vec::new(),
            replay: None,
            counts: OutcomeCounts::default(),
            class_counts: Vec::new(),
            cpu_busy: SimDuration::ZERO,
            window_busy: SimDuration::ZERO,
            window_start: SimTime::ZERO,
            preemptions: 0,
            query_restarts: 0,
            demand_refreshes: 0,
            signals: SignalCounts::default(),
            fault_counts: FaultCounts::default(),
            dispatch_freshness_sum: 0.0,
            dispatch_freshness_n: 0,
            timeline: Vec::new(),
            events_processed: 0,
            outcome_records: Vec::new(),
            #[cfg(feature = "validate")]
            outcome_log: Vec::new(),
        }
    }

    /// Install a fault-injection hook ([`crate::faults::FaultHook`]). Must
    /// be called before the first [`Simulator::step`] so the schedule's
    /// transition events can be seeded with the trace arrivals.
    ///
    /// # Panics
    /// Debug-panics when called after the run has started.
    #[deprecated(
        since = "0.1.0",
        note = "assemble runs through `SimRun::trace(..).with_faults(..)` instead"
    )]
    #[must_use]
    pub fn with_faults(mut self, hook: Box<dyn FaultHook>) -> Self {
        self.set_faults(hook);
        self
    }

    /// Install an observability sink (`unit-obs`): typed events for every
    /// admission decision, outcome, control tick, modulation boundary, and
    /// fault transition, stamped in virtual time. Must be installed before
    /// the first [`Simulator::step`] so the policy's observation buffers are
    /// armed from the start. Observation is passive — the run's
    /// `report_digest` stays bit-identical.
    ///
    /// # Panics
    /// Debug-panics when called after the run has started.
    #[deprecated(
        since = "0.1.0",
        note = "assemble runs through `SimRun::trace(..).with_observer(..)` instead"
    )]
    #[must_use]
    pub fn with_observer(mut self, observer: &'a mut dyn Observer) -> Self {
        self.set_observer(observer);
        self
    }

    /// Install a fault hook in place (the `SimRun` builder's back door;
    /// same pre-start contract as the deprecated `with_faults`).
    pub(crate) fn set_faults(&mut self, hook: Box<dyn FaultHook>) {
        debug_assert!(!self.started, "install the fault hook before stepping");
        self.faults = Some(hook);
    }

    /// Install an observer in place (the `SimRun` builder's back door;
    /// same pre-start contract as the deprecated `with_observer`).
    pub(crate) fn set_observer(&mut self, observer: &'a mut dyn Observer) {
        debug_assert!(!self.started, "install the observer before stepping");
        self.obs = Some(observer);
    }

    /// Forward one event to the installed observer, if any. O(1) plus the
    /// observer's own cost; callers gate event *construction* on
    /// [`Option::is_some`] so the uninstalled path stays one branch.
    #[inline]
    fn emit(&mut self, event: ObsEvent) {
        if let Some(o) = self.obs.as_deref_mut() {
            o.on_event(&event);
        }
    }

    /// Execute the whole run: process every trace arrival, drain in-flight
    /// work, and assemble the report.
    pub fn run(self) -> SimReport {
        self.run_with_policy().0
    }

    /// Like [`Simulator::run`], but also hand back the policy so callers can
    /// inspect its final internal state (controller counters, periods, ...).
    pub fn run_with_policy(mut self) -> (SimReport, P) {
        while self.step() {}
        self.finish()
    }

    /// Seed the run: initialize the policy and schedule every trace arrival
    /// plus the first control tick. Called lazily by the first
    /// [`Simulator::step`]. O((N_q + N_u) log N_ev), once per run.
    fn start(&mut self) {
        debug_assert!(!self.started);
        self.started = true;
        self.policy.set_observed(self.obs.is_some());
        self.policy.init(self.n_items, self.updates);

        // Arrivals carry their trace index as an explicit sequence number
        // (below the runtime class), so a streamed feed that pushes the same
        // arrival later lands on the identical heap key. Streaming runs seed
        // nothing here — feed_query does it one spec at a time.
        if let QueryStore::Materialized(qs) = &self.queries {
            for (i, q) in qs.iter().enumerate() {
                self.events
                    .push_arrival(q.arrival, Event::QueryArrival { spec_idx: i }, i as u64);
            }
            self.arrivals_in_flight = qs.len() as u64;
        }
        for (j, u) in self.updates.iter().enumerate() {
            if u.first_arrival.0 <= self.cfg.horizon.0 {
                self.events
                    .push(u.first_arrival, Event::VersionArrival { stream_idx: j });
            }
        }
        // The first control tick claims its runtime sequence slot here —
        // between the update seeding and the fault transitions, exactly
        // where the heap-resident tick used to be pushed — but lives in
        // `next_tick`, not the heap (see the field docs).
        self.next_tick = Some((
            SimTime::ZERO + self.cfg.tick_period,
            self.events.alloc_seq(),
        ));

        // Fault transitions: every crash-window boundary and burst instant,
        // sorted and deduplicated so the event-seq assignment (and thus
        // same-instant tie-breaking) is a pure function of the schedule. An
        // absent hook or an empty schedule pushes nothing — the event
        // stream is bit-identical to a fault-free run.
        if let Some(hook) = &self.faults {
            let mut times = hook.transition_times();
            times.sort_unstable();
            times.dedup();
            for t in times {
                self.events.push(t, Event::FaultTransition);
            }
            let mut crashes = hook.lose_state_crashes();
            crashes.sort_unstable();
            crashes.dedup();
            self.crash_points = crashes;
        }
        // Arm crash recovery: the run-start snapshot is the fallback for a
        // crash that fires before the first control boundary. A no-op
        // unless a future lose-state crash point exists.
        self.take_checkpoint();
    }

    /// Process the next pending event, advancing the virtual clock. Returns
    /// `false` once the run has drained (no events left). The embeddable
    /// half of the engine: a cluster shard is driven by calling this in a
    /// loop and then harvesting [`Simulator::finish`]. O(log N_ev) plus the
    /// dispatched handler's cost.
    pub fn step(&mut self) -> bool {
        if !self.started {
            self.start();
        }
        // Fast-forward past any run of certifiably idle ticks before the
        // race, so a sparse stretch costs one heap pop per real event
        // instead of one extra step per tick-train segment. The skipped
        // ticks are accounted (clock, seqs, events_processed, window roll)
        // exactly as if each had been stepped — see the method docs.
        self.fast_forward_idle_ticks();
        // The tracked control tick races the heap head on the same
        // `(time, seq)` key the heap itself orders by, so the winner is
        // exactly the event the all-heap scheme would have popped.
        let take_tick = match (self.next_tick, self.events.peek_key()) {
            (Some(tick), Some(head)) => tick <= head,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_tick {
            let Some((t, _)) = self.next_tick.take() else {
                return false; // unreachable: take_tick implies Some
            };
            debug_assert!(t >= self.clock, "time went backwards");
            self.clock = t;
            self.events_processed += 1;
            self.on_control_tick();
            return true;
        }
        let Some((t, ev)) = self.events.pop() else {
            return false;
        };
        debug_assert!(t >= self.clock, "time went backwards");
        self.clock = t;
        self.events_processed += 1;
        match ev {
            Event::QueryArrival { spec_idx } => self.on_query_arrival(spec_idx),
            Event::VersionArrival { stream_idx } => self.on_version_arrival(stream_idx),
            Event::Completion { txn, generation } => self.on_completion(txn, generation),
            Event::QueryDeadline { txn } => self.on_query_deadline(txn),
            Event::ControlTick => self.on_control_tick(),
            Event::FaultTransition => self.on_fault_transition(),
            Event::DelayedApply {
                item,
                exec,
                edf_deadline,
            } => self.on_delayed_apply(item, exec, edf_deadline),
        }
        true
    }

    /// Timestamp of the next pending event — the earlier of the tracked
    /// control tick and the heap head — without advancing anything. `None`
    /// once the run has drained. Before the first step this reflects only
    /// what has been seeded or fed so far. O(1).
    pub fn next_event_time(&self) -> Option<SimTime> {
        let heap = self.events.peek_time();
        let tick = self.next_tick.map(|(t, _)| t);
        match (tick, heap) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Step every pending event with `time <= limit`, lazily starting the
    /// run. Returns `true` while events remain beyond `limit`, `false` once
    /// the run has drained. The event sequence is exactly what repeated
    /// [`Simulator::step`] calls would process — pausing at epoch
    /// boundaries reorders nothing, which is what makes epoch-parallel
    /// cluster stepping bit-identical to whole-shard stepping.
    /// O(E≤limit · log N_ev).
    pub fn step_until(&mut self, limit: SimTime) -> bool {
        if !self.started {
            self.start();
        }
        loop {
            match self.next_event_time() {
                Some(t) if t <= limit => {
                    self.step();
                }
                Some(_) => return true,
                None => return false,
            }
        }
    }

    /// Feed one query into a streaming run (see
    /// [`Simulator::new_streaming`]). Queries must be fed in trace order
    /// (`id` equals the number already fed, arrivals non-decreasing) and
    /// before the clock passes their arrival; [`Simulator::run_streamed`]
    /// upholds all three automatically. The arrival event carries the
    /// query's global index as its sequence number, so event order — and
    /// therefore the digest — is independent of how far ahead of the clock
    /// the feed runs. O(|items| + log N_ev).
    ///
    /// # Panics
    /// Panics on a malformed spec, an out-of-order feed, or when the run
    /// was built from a materialized trace.
    pub fn feed_query(&mut self, spec: QuerySpec) {
        if !self.started {
            self.start();
        }
        // lint: allow(panic) — documented contract, mirrors Simulator::new
        assert!(
            matches!(self.queries, QueryStore::Streamed { .. }),
            "feed_query on a materialized run (arrivals were seeded up front)"
        );
        if let Err(e) = spec.validate(self.n_items) {
            // lint: allow(panic) — documented contract, mirrors Simulator::new
            panic!("invalid streamed query: {e}");
        }
        // lint: allow(panic) — trace order is what keeps arrival seqs global
        assert_eq!(
            spec.id,
            QueryId(self.submitted),
            "streamed queries must be fed in trace order"
        );
        // lint: allow(panic) — documented contract
        assert!(
            spec.arrival >= self.last_fed_arrival,
            "streamed arrivals must be non-decreasing"
        );
        debug_assert!(
            spec.arrival >= self.clock,
            "fed an arrival the clock already passed"
        );
        debug_assert!(!self.stream_exhausted, "feed_query after end_stream()");
        self.last_fed_arrival = spec.arrival;
        for d in &spec.items {
            self.streamed_accesses[d.index()] += 1;
        }
        if self.checkpoint_armed() {
            // Crash replay must re-feed arrivals the snapshot's heap does
            // not hold; the log is pruned at every checkpoint.
            self.input_log.push(spec.clone());
        }
        let seq = self.submitted;
        self.submitted += 1;
        self.arrivals_in_flight += 1;
        let arrival = spec.arrival;
        let slot = self.queries.intern(spec);
        self.events
            .push_arrival(arrival, Event::QueryArrival { spec_idx: slot }, seq);
    }

    /// Promise that no further [`Simulator::feed_query`] call will follow.
    /// Purely an optimization hint: it lifts the idle-tick skip's feed cap
    /// (see [`Policy::tick_idle_until`]) so the post-stream tail of the run
    /// can jump idle ticks in bulk. Calling it is never required and never
    /// changes results; feeding after it is a contract violation (checked in
    /// debug builds). O(1).
    pub fn end_stream(&mut self) {
        self.stream_exhausted = true;
    }

    /// Drive a streaming run to completion: feed `queries` in order —
    /// every arrival the next event forces, plus enough lookahead to keep
    /// up to `chunk` future arrivals buffered in the heap — and return the
    /// report. For the same query sequence the result is bit-identical to
    /// [`Simulator::run`] over the materialized trace, for *any* `chunk`:
    /// heap order depends only on `(time, global index)`, never on push
    /// timing. Because the buffer cap is on arrivals *in flight* (not a
    /// per-step feed count), the event heap and the spec slab both stay
    /// O(in-flight + chunk) instead of O(N_q) — a million-query trace
    /// never exists in memory, and every heap operation works on a small,
    /// cache-resident heap. O(N_ev log(in-flight + chunk)) total.
    pub fn run_streamed<I>(self, queries: I, chunk: usize) -> SimReport
    where
        I: IntoIterator<Item = QuerySpec>,
    {
        self.run_streamed_with_policy(queries, chunk).0
    }

    /// Like [`Simulator::run_streamed`], but also hands back the policy.
    pub fn run_streamed_with_policy<I>(mut self, queries: I, chunk: usize) -> (SimReport, P)
    where
        I: IntoIterator<Item = QuerySpec>,
    {
        let mut it = queries.into_iter();
        let mut pending = it.next();
        if pending.is_none() {
            self.end_stream();
        }
        loop {
            // Mandatory feeds first: an arrival at or before the next
            // event's instant must be queued before that event pops. Beyond
            // that, feed lookahead only while fewer than `chunk` arrivals
            // are buffered — the cap is on arrivals in flight, so the heap
            // stays small for the whole run instead of swallowing the
            // stream a chunk per step.
            while let Some(spec) = pending.take() {
                let due = match self.next_event_time() {
                    None => true,
                    Some(t) => spec.arrival <= t,
                };
                if !due && self.arrivals_in_flight >= chunk as u64 {
                    pending = Some(spec);
                    break;
                }
                self.feed_query(spec);
                pending = it.next();
                if pending.is_none() {
                    self.end_stream();
                }
            }
            if !self.step() {
                break;
            }
        }
        debug_assert!(pending.is_none(), "stream not exhausted at drain");
        self.finish()
    }

    /// The current virtual clock (the timestamp of the last processed
    /// event). O(1).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Finish a drained run: check the end-of-run invariants and assemble
    /// the report plus the policy's final state. Call only after
    /// [`Simulator::step`] has returned `false`; finishing mid-run trips
    /// the drain assertions in debug builds and misreports in-flight work
    /// in release builds. O(N_d) for the report's histogram moves.
    pub fn finish(mut self) -> (SimReport, P) {
        debug_assert!(self.started, "finish() before the run was stepped");
        debug_assert!(self.ready.is_empty(), "ready transactions left behind");
        debug_assert!(self.running.is_empty(), "running transactions left behind");
        debug_assert!(self.admitted.is_empty(), "admitted queries left behind");
        debug_assert_eq!(self.work.total(), 0, "work index must drain to zero");
        debug_assert_eq!(
            self.counts.total(),
            self.submitted,
            "every submitted query must have exactly one outcome"
        );
        #[cfg(feature = "validate")]
        self.validate_invariants();

        let report = self.report();
        (report, self.policy)
    }

    /// Assemble the final report, moving the accumulated histograms and
    /// timeline out of the simulator instead of cloning them.
    fn report(&mut self) -> SimReport {
        // Same histogram `Trace::query_access_histogram` computes; streaming
        // runs accumulated it at feed time (the specs are long gone).
        let query_accesses = match &self.queries {
            QueryStore::Materialized(qs) => {
                let mut h = vec![0u64; self.n_items];
                for q in *qs {
                    for d in &q.items {
                        h[d.index()] += 1;
                    }
                }
                h
            }
            QueryStore::Streamed { .. } => std::mem::take(&mut self.streamed_accesses),
        };
        let freshness = std::mem::replace(&mut self.freshness, FreshnessTable::new(0));
        let (versions_arrived, updates_applied) = freshness.into_histograms();
        SimReport {
            policy: self.policy.name().to_string(),
            weights: self.cfg.weights,
            counts: self.counts,
            class_counts: std::mem::take(&mut self.class_counts),
            query_accesses,
            versions_arrived,
            updates_applied,
            hp_aborts: self.locks.hp_aborts(),
            query_restarts: self.query_restarts,
            preemptions: self.preemptions,
            demand_refreshes: self.demand_refreshes,
            cpu_busy: self.cpu_busy,
            end_time: self.clock,
            horizon: self.cfg.horizon,
            n_cpus: self.cfg.n_cpus,
            signals: self.signals,
            mean_dispatch_freshness: if self.dispatch_freshness_n == 0 {
                1.0
            } else {
                self.dispatch_freshness_sum / self.dispatch_freshness_n as f64
            },
            timeline: std::mem::take(&mut self.timeline),
            events_processed: self.events_processed,
            outcome_records: std::mem::take(&mut self.outcome_records),
            faults: self.fault_counts,
        }
    }

    /// Ready-queue ordering key for a transaction under the configured
    /// scheduling discipline.
    fn pkey_of(&self, txn: &Txn) -> PriorityKey {
        (
            self.cfg.discipline.rank(txn.class),
            txn.edf_deadline,
            txn.id,
        )
    }

    /// Ready-queue ordering key by transaction id.
    fn pkey(&self, id: TxnId) -> PriorityKey {
        self.pkey_of(&self.txns[id.index()])
    }

    // --- event handlers --------------------------------------------------

    /// Query-arrival hook: admission decision plus ready-queue insertion.
    /// O(log N_rq) for the policy's slack probe and the index inserts, plus
    /// the [`Simulator::reschedule`] that follows.
    fn on_query_arrival(&mut self, spec_idx: usize) {
        if let Some(until) = self.paused_until() {
            // Crash window: the server is not listening. Defer the arrival
            // to the recovery instant.
            self.fault_counts.deferred_events += 1;
            self.events.push(until, Event::QueryArrival { spec_idx });
            return; // still in flight: the arrival went back into the heap
        }
        self.arrivals_in_flight -= 1;
        let (spec_deadline, spec_exec, spec_id) = {
            let spec = self.queries.get(spec_idx);
            (spec.deadline(), spec.exec_time, spec.id)
        };
        if self.faults.is_some() && spec_deadline <= self.clock {
            // Dead on arrival: the firm deadline expired while the arrival
            // sat deferred through a crash window. Unreachable fault-free
            // (relative deadlines are strictly positive).
            self.record_outcome(spec_idx, Outcome::DeadlineMiss);
            return;
        }
        let decision = self.with_view_spec(spec_idx, |policy, spec, view| {
            policy.on_query_arrival(spec, view)
        });
        if self.obs.is_some() {
            let (verdict, c_flex) = match self.policy.last_admission() {
                Some(a) => (Some(a.verdict), Some(a.c_flex)),
                None => (None, None),
            };
            self.emit(ObsEvent::Admission {
                time: self.clock,
                query: spec_id,
                decision,
                verdict,
                c_flex,
            });
        }
        if !decision.is_admit() {
            self.record_outcome(spec_idx, Outcome::Rejected);
            return;
        }
        let id = TxnId(self.txns.len() as u64);
        let txn = Txn {
            id,
            class: TxnClass::Query,
            edf_deadline: spec_deadline,
            exec_time: spec_exec,
            remaining: spec_exec,
            state: TxnState::Ready,
            holds_locks: false,
            blocked_on: None,
            kind: TxnKind::Query {
                spec_idx,
                freshness_at_dispatch: None,
                restarts: 0,
            },
        };
        self.events
            .push(txn.edf_deadline, Event::QueryDeadline { txn: id });
        self.ready.insert(self.pkey_of(&txn));
        self.txns.push(txn);
        self.insert_admitted(spec_idx, id);
        if self.policy.refresh_at_admission() {
            // Eager on-demand policies (ODU) check staleness the moment the
            // query enters the system.
            self.spawn_demand_refreshes(spec_idx);
        }
        self.reschedule();
    }

    /// Ask the policy which of `spec`'s items need an on-demand refresh and
    /// spawn update transactions for them. Returns true if any were spawned.
    fn spawn_demand_refreshes(&mut self, spec_idx: usize) -> bool {
        let wanted = {
            let Simulator {
                queries,
                policy,
                freshness,
                ..
            } = self;
            let spec = queries.get(spec_idx);
            policy.demand_refresh(spec, &|d: DataId| freshness.udrop(d))
        };
        let mut spawned = false;
        for d in wanted {
            if self.pending_ondemand[d.index()] {
                continue; // a refresh for this item is already queued
            }
            let Some(exec) = self.item_update_exec[d.index()] else {
                continue; // no stream -> cannot be stale
            };
            self.pending_ondemand[d.index()] = true;
            self.demand_refreshes += 1;
            // EDF deadline "now": on-demand refreshes precede periodic
            // updates that arrived earlier with later validity deadlines.
            self.spawn_update(d, exec, self.clock, true);
            spawned = true;
        }
        spawned
    }

    /// Version-arrival hook: freshness bookkeeping, the policy's
    /// apply/skip decision, and the next arrival's scheduling.
    /// O(log N_ev) for the event pushes; the policy callback is O(1) for
    /// every shipped policy.
    fn on_version_arrival(&mut self, stream_idx: usize) {
        let u = &self.updates[stream_idx];
        let item = u.item;
        let period = u.period;
        let exec = u.exec_time;
        // Sources are external: the version is observed (Udrop rises) even
        // when a fault keeps it from being applied.
        self.freshness.record_arrival(item, self.clock);

        let fault = match self.faults.as_deref() {
            None => UpdateFault::Apply,
            // Down or degraded windows drop every application; staleness
            // then accrues honestly through the ordinary Udrop path.
            Some(h) if h.health(self.clock).updates_dropped() => UpdateFault::Drop,
            Some(h) => h.update_fault(item, self.clock),
        };
        match fault {
            UpdateFault::Apply => {
                let action =
                    self.with_view(|policy, view| policy.on_version_arrival(item, view.now, view));
                if action.is_apply() {
                    self.spawn_update(item, exec, self.clock + period, false);
                    self.reschedule();
                }
            }
            UpdateFault::Drop => {
                self.fault_counts.update_drops += 1;
            }
            UpdateFault::Delay(d) => {
                // The policy still decides whether this version is worth
                // applying; the fault only postpones the application. The
                // EDF deadline stays at the version's temporal-validity
                // deadline, not the delayed spawn instant.
                let action =
                    self.with_view(|policy, view| policy.on_version_arrival(item, view.now, view));
                if action.is_apply() {
                    self.fault_counts.update_delays += 1;
                    self.events.push(
                        self.clock + d,
                        Event::DelayedApply {
                            item,
                            exec,
                            edf_deadline: self.clock + period,
                        },
                    );
                }
            }
        }

        let next = self.clock + period;
        if next.0 <= self.cfg.horizon.0 {
            self.events.push(next, Event::VersionArrival { stream_idx });
        }
    }

    /// Completion hook: commit the transaction, release its locks, record
    /// the outcome. O(W + log N_rq) where W is the freed waiter count, plus
    /// the trailing [`Simulator::reschedule`].
    fn on_completion(&mut self, id: TxnId, generation: u64) {
        // Stale completions (the transaction was preempted or aborted after
        // this event was scheduled) are ignored.
        let Some(pos) = self
            .running
            .iter()
            .position(|r| r.id == id && r.generation == generation)
        else {
            return;
        };
        let run = self.running.swap_remove(pos);
        let elapsed = self.clock.saturating_since(run.started);
        self.charge_cpu(elapsed);

        let (outcome_to_record, committed_update): (Option<(usize, Outcome)>, Option<DataId>) = {
            let txn = &mut self.txns[id.index()];
            debug_assert_eq!(txn.state, TxnState::Running);
            debug_assert!(elapsed == txn.remaining, "completion fired early or late");
            txn.remaining = SimDuration::ZERO;
            txn.state = TxnState::Finished;
            txn.holds_locks = false;
            match txn.kind {
                TxnKind::Query {
                    spec_idx,
                    freshness_at_dispatch,
                    ..
                } => {
                    let spec = self.queries.get(spec_idx);
                    debug_assert!(self.clock <= spec.deadline(), "firm deadline violated");
                    // Freshness verdict: the data the query actually *read*,
                    // i.e. the strict-minimum freshness captured when its
                    // read locks were granted (§2.2). Read-time evaluation is
                    // what makes the paper's ODU baseline achieve 100%
                    // freshness: any version *applied* during execution would
                    // have evicted the query via 2PL-HP, so the captured
                    // value is exact for the versions read.
                    let f = freshness_at_dispatch.unwrap_or(1.0);
                    let outcome = if f >= spec.freshness_req {
                        Outcome::Success
                    } else {
                        Outcome::DataStale
                    };
                    (Some((spec_idx, outcome)), None)
                }
                TxnKind::Update { item, on_demand } => {
                    if on_demand {
                        self.pending_ondemand[item.index()] = false;
                    }
                    self.outstanding_update_work =
                        self.outstanding_update_work.saturating_sub(elapsed);
                    (None, Some(item))
                }
                TxnKind::Background => {
                    // Injected load: consumes CPU, touches nothing.
                    self.outstanding_update_work =
                        self.outstanding_update_work.saturating_sub(elapsed);
                    (None, None)
                }
            }
        };

        let freed = self.locks.release_all(id);
        self.unblock_waiters(&freed);

        if let Some(item) = committed_update {
            self.freshness.record_applied(item, self.clock);
            let exec = self.txns[id.index()].exec_time;
            self.policy.on_update_commit(item, exec);
        }
        if let Some((spec_idx, outcome)) = outcome_to_record {
            self.remove_admitted(id);
            self.record_outcome(spec_idx, outcome);
        }
        self.reschedule();
    }

    /// Firm-deadline hook: abort an expired query wherever it currently
    /// sits. O(n_cpus + log N_rq) to evict it from the run/ready/admitted
    /// structures, plus the trailing [`Simulator::reschedule`].
    fn on_query_deadline(&mut self, id: TxnId) {
        if let Some(until) = self.paused_until() {
            // Crash window: the abort (and its DMF outcome) is deferred to
            // the recovery instant, so no outcome lands inside the window.
            self.fault_counts.deferred_events += 1;
            self.events.push(until, Event::QueryDeadline { txn: id });
            return;
        }
        if self.txns[id.index()].state == TxnState::Finished {
            return; // committed (or already aborted) before expiry
        }
        self.remove_admitted(id);
        // Firm deadline: abort wherever the query currently is.
        if let Some(pos) = self.running.iter().position(|r| r.id == id) {
            let run = self.running.swap_remove(pos);
            let elapsed = self.clock.saturating_since(run.started);
            self.charge_cpu(elapsed);
            let txn = &mut self.txns[id.index()];
            txn.remaining = txn.remaining.saturating_sub(elapsed);
        }
        let key = self.pkey(id);
        self.ready.remove(&key);
        self.blocked.retain(|&b| b != id);

        let spec_idx = {
            let txn = &mut self.txns[id.index()];
            txn.state = TxnState::Finished;
            txn.holds_locks = false;
            match txn.kind {
                TxnKind::Query { spec_idx, .. } => spec_idx,
                TxnKind::Update { .. } | TxnKind::Background => {
                    // lint: allow(panic) — only QueryDeadline events carry query txn ids
                    unreachable!("updates have no deadline events")
                }
            }
        };
        let freed = self.locks.release_all(id);
        self.unblock_waiters(&freed);
        self.record_outcome(spec_idx, Outcome::DeadlineMiss);
        self.reschedule();
    }

    /// Control-tick hook: run the policy's feedback loop and sample the
    /// timeline. O(T log N_ev) where T is the tick-triggered refresh count;
    /// the policy's `on_tick` is O(1) amortized for UNIT (lottery batches
    /// are credited against the signals that trigger them, DESIGN.md §2.1).
    fn on_control_tick(&mut self) {
        if let Some(until) = self.paused_until() {
            // Crash window: the controller is down with the rest of the
            // server; the tick train restarts at the recovery instant.
            self.fault_counts.deferred_events += 1;
            self.events.push(until, Event::ControlTick);
            return;
        }
        // Idle-tick fast path: when the policy certifies this tick as a
        // no-op (`Policy::tick_idle`) and nobody is watching, only the
        // utilization-window roll and the re-arm have observable effects —
        // the snapshot view, the `on_tick` call, and the refresh sweep are
        // skipped wholesale. Bit-identical to the full path by the
        // `tick_idle` contract (pinned by the differential suites);
        // disabled under the `validate` feature so debug builds still
        // cross-check invariants at every tick.
        let idle = !cfg!(feature = "validate")
            && self.obs.is_none()
            && !self.cfg.record_timeline
            && self.policy.tick_idle(self.clock);
        if idle {
            self.window_busy = SimDuration::ZERO;
            self.window_start = self.clock;
            self.rearm_tick();
            self.take_checkpoint();
            return;
        }
        // One view serves both the policy tick and the timeline sample, so
        // the sample reflects pre-tick state exactly as the policy saw it.
        let observing = self.obs.is_some();
        let (signals, ready_queries, update_backlog_secs, utilization, query_backlog_secs) = self
            .with_view(|policy, view| {
                let query_backlog_secs = if observing {
                    view.query_backlog().as_secs_f64()
                } else {
                    0.0
                };
                (
                    policy.on_tick(view.now, view),
                    view.ready_queue_len(),
                    view.update_backlog.as_secs_f64(),
                    view.recent_utilization,
                    query_backlog_secs,
                )
            });
        for &s in &signals {
            self.signals.record(s);
        }
        if observing {
            self.emit(ObsEvent::ControlTick {
                time: self.clock,
                ready_queries,
                query_backlog_secs,
                update_backlog_secs,
                utilization,
                usm: self.counts.average_usm(&self.cfg.weights),
            });
            if let Some(ctl) = self.policy.controller_obs() {
                let count =
                    |sig: ControlSignal| signals.iter().filter(|&&s| s == sig).count() as u32;
                self.emit(ObsEvent::ControlStep {
                    time: self.clock,
                    c_flex: ctl.c_flex,
                    tac: count(ControlSignal::TightenAdmission),
                    lac: count(ControlSignal::LoosenAdmission),
                    degrade: count(ControlSignal::DegradeUpdates),
                    upgrade: count(ControlSignal::UpgradeUpdates),
                    degraded_items: ctl.degraded_items,
                    ticket_sum: ctl.ticket_sum,
                });
            }
            let now = self.clock;
            for m in self.policy.drain_modulation_obs() {
                self.emit(ObsEvent::TicketMass {
                    time: now,
                    item: m.item,
                    ticket: m.ticket,
                    old_period: m.old_period,
                    new_period: m.new_period,
                });
            }
        }
        // Time-triggered refreshes (deferrable-update style policies).
        let wanted = {
            let freshness = &self.freshness;
            self.policy
                .tick_refreshes(self.clock, &|d: DataId| freshness.udrop(d))
        };
        let mut spawned = false;
        for d in wanted {
            if self.pending_ondemand[d.index()] {
                continue;
            }
            let Some(exec) = self.item_update_exec[d.index()] else {
                continue;
            };
            self.pending_ondemand[d.index()] = true;
            self.demand_refreshes += 1;
            self.spawn_update(d, exec, self.clock, true);
            spawned = true;
        }
        if spawned {
            self.reschedule();
        }
        if self.cfg.record_timeline {
            self.timeline.push(TimelineSample {
                time: self.clock,
                usm: self.counts.average_usm(&self.cfg.weights),
                ready_queries,
                update_backlog_secs,
                utilization,
            });
        }
        // New utilization window.
        self.window_busy = SimDuration::ZERO;
        self.window_start = self.clock;

        #[cfg(feature = "validate")]
        self.validate_invariants();

        self.rearm_tick();
        self.take_checkpoint();
    }

    /// Idle-tick fast-forward: when the policy certifies a run of pending
    /// ticks as no-ops ([`Policy::tick_idle_until`]), consume every
    /// certifiably idle tick strictly before the next heap event *without
    /// spending a step on any of them* — the enclosing [`Simulator::step`]
    /// then pops the real event directly. A sparse stretch of the run costs
    /// one step per heap event instead of one extra step per tick-train
    /// segment, making per-shard tick cost O(events) rather than
    /// O(horizon / tick_period) — crucial for many-shard cluster runs,
    /// where each shard replays the full tick train over a sparse slice of
    /// the trace.
    ///
    /// Sound because the certification premise — "no other hook fires in
    /// between" — holds by construction: every outcome, arrival, version,
    /// completion, and fault transition is a heap event, and the skip stops
    /// strictly before the heap head. Per consumed tick the only observable
    /// effects are the utilization-window roll (collapsed to the final
    /// roll: each roll just resets the window), the processed-event count,
    /// and one re-arm sequence number (burned via
    /// [`EventQueue::alloc_seqs`]), so the run stays bit-identical to the
    /// stepped one — the differential suites pin this. Disabled while
    /// observed, while recording a timeline, during a fault pause, and
    /// under the `validate` feature (debug builds cross-check invariants at
    /// every tick). O(1).
    fn fast_forward_idle_ticks(&mut self) {
        if cfg!(feature = "validate")
            || self.obs.is_some()
            || self.cfg.record_timeline
            || self.paused_until().is_some()
        {
            return;
        }
        let Some((t, _)) = self.next_tick else {
            return;
        };
        let period = self.cfg.tick_period.0;
        if period == 0 {
            return;
        }
        // Ticks strictly before `limit` are no-ops: below the policy bound,
        // and no heap event can interleave. (A tick *tying* the heap head
        // must go through the normal race, hence strict `<`.)
        let bound = self.policy.tick_idle_until();
        let mut limit = match self.events.peek_time() {
            Some(h) => bound.min(h),
            None => bound,
        };
        // Streaming runs: arrivals not yet fed are invisible to the heap,
        // but the feed contract bounds them — every future arrival lands at
        // or after `last_fed_arrival` (and an arrival ties below a tick at
        // the same instant). Cap the skip there until the feeder signals
        // end-of-stream.
        if matches!(self.queries, QueryStore::Streamed { .. }) && !self.stream_exhausted {
            limit = limit.min(self.last_fed_arrival);
        }
        if t >= limit {
            return;
        }
        // The first tick may sit past the horizon (it is armed
        // unconditionally at start); leave that edge to the normal handler.
        let Some(horizon_room) = self.cfg.horizon.0.checked_sub(t.0) else {
            return;
        };
        // Consume the armed tick plus `extra` idle successors.
        let extra = ((limit.0 - t.0 - 1) / period).min(horizon_room / period);
        let t_last = SimTime(t.0 + extra * period);
        debug_assert!(t >= self.clock, "time went backwards");
        self.next_tick = None;
        self.clock = t_last;
        self.events_processed += extra + 1;
        // Each consumed tick's re-arm claimed one runtime sequence slot:
        // `extra` burned here, the last taken by `rearm_tick` below.
        self.events.alloc_seqs(extra);
        self.window_busy = SimDuration::ZERO;
        self.window_start = t_last;
        self.rearm_tick();
        // One snapshot at the collapsed boundary stands in for the skipped
        // per-tick snapshots: recovery only needs *a* checkpoint at or
        // before the crash instant plus the input log since it, and the
        // skip stops strictly before the crash's heap transition.
        self.take_checkpoint();
    }

    /// Claim the next tick's runtime sequence slot at exactly the point the
    /// heap push used to happen, but keep it tracked (see the `next_tick`
    /// field docs). Both tick paths (full and idle) end here, so the
    /// sequence-number tape is identical either way.
    fn rearm_tick(&mut self) {
        let next = self.clock + self.cfg.tick_period;
        if next.0 <= self.cfg.horizon.0 {
            self.next_tick = Some((next, self.events.alloc_seq()));
        }
    }

    /// Fault-transition hook: at a crash-window start preempt every running
    /// transaction (their scheduled completions go stale through the
    /// generation check, so nothing commits inside the window); at a
    /// recovery or burst instant inject any scheduled background load and
    /// re-fill the CPUs. O(n_cpus · log N_rq + B_now) plus the trailing
    /// [`Simulator::reschedule`].
    fn on_fault_transition(&mut self) {
        // Lose-state crashes come first: the restore rewinds the clock, and
        // the replayed run re-pops this very transition (with the crash
        // point consumed) to apply its ordinary semantics below.
        if self.crash_due() {
            self.perform_crash_recovery();
            return;
        }
        if let Some((until, from)) = self.replay {
            if until == self.clock {
                // The replay caught back up to the crash instant; from here
                // on the run breaks new ground again.
                self.replay = None;
                if self.obs.is_some() {
                    self.emit(ObsEvent::ReplayComplete {
                        time: until,
                        checkpoint: from,
                    });
                }
            }
        }
        let Some(health) = self.faults.as_deref().map(|h| h.health(self.clock)) else {
            debug_assert!(false, "FaultTransition scheduled without a hook");
            return;
        };
        if self.obs.is_some() {
            let (phase, until) = match health {
                HealthState::Up => (FaultPhase::Up, None),
                HealthState::Degraded { until } => (FaultPhase::Degraded, Some(until)),
                HealthState::Down { until } => (FaultPhase::Down, Some(until)),
            };
            self.emit(ObsEvent::FaultWindow {
                time: self.clock,
                phase,
                until,
            });
        }
        if health.queries_paused() {
            while !self.running.is_empty() {
                self.preempt_running(0);
            }
            return;
        }
        let loads = self
            .faults
            .as_deref()
            .map(|h| h.load_at(self.clock))
            .unwrap_or_default();
        for load in loads {
            self.fault_counts.background_spawned += 1;
            self.spawn_background(load.exec);
        }
        // Recovery instants reach here with an empty load list: this
        // reschedule is what restarts the work preempted at window start.
        self.reschedule();
    }

    /// Delayed-apply hook: spawn the update transaction that
    /// [`UpdateFault::Delay`] postponed, unless a crash/degradation window
    /// now drops it. O(log N_rq) plus the trailing
    /// [`Simulator::reschedule`].
    fn on_delayed_apply(&mut self, item: DataId, exec: SimDuration, edf_deadline: SimTime) {
        let dropped = self
            .faults
            .as_deref()
            .is_some_and(|h| h.health(self.clock).updates_dropped());
        if dropped {
            self.fault_counts.update_drops += 1;
            return;
        }
        self.spawn_update(item, exec, edf_deadline, false);
        self.reschedule();
    }

    /// The recovery instant of the current crash window, when the fault
    /// hook reports the server [`HealthState::Down`] at the current clock
    /// with a strictly-future recovery (the strictness guard makes a
    /// degenerate `until == now` window inert instead of self-deferring
    /// forever). `None` on every fault-free path. O(log F).
    fn paused_until(&self) -> Option<SimTime> {
        let hook = self.faults.as_deref()?;
        match hook.health(self.clock) {
            HealthState::Down { until } if until > self.clock => Some(until),
            _ => None,
        }
    }

    /// Cross-check the incremental engine structures against naive
    /// recomputation (see [`crate::validate`]): the Fenwick work index vs an
    /// O(N) recount over the admitted set, and the USM tallies vs the raw
    /// outcome log. Runs at every control tick and once at end of run.
    #[cfg(feature = "validate")]
    fn validate_invariants(&self) {
        match &self.work {
            WorkIndex::Static { coords, fenwick } => {
                unit_core::validate_check!(
                    "work-index",
                    crate::validate::check_work_index(
                        fenwick,
                        coords,
                        self.admitted
                            .iter()
                            .map(|(&(deadline, _), e)| (deadline, e.remaining.0)),
                    )
                );
            }
            WorkIndex::Dynamic { index } => {
                let mut naive: BTreeMap<SimTime, u64> = BTreeMap::new();
                for (&(deadline, _), e) in &self.admitted {
                    if e.remaining.0 > 0 {
                        *naive.entry(deadline).or_insert(0) += e.remaining.0;
                    }
                }
                let naive_total: u64 = naive.values().sum();
                let entries: Vec<(SimTime, u64)> = naive.into_iter().collect();
                let total = index.total();
                unit_core::validate_check!(
                    "work-index-dynamic",
                    if entries == index.entries() && naive_total == total {
                        Ok(())
                    } else {
                        Err(format!(
                            "dynamic work index diverged: recount total {naive_total}, index total {total}"
                        ))
                    }
                );
            }
        }
        unit_core::validate_check!(
            "usm-identity",
            crate::validate::check_usm_identity(&self.counts, &self.outcome_log, &self.cfg.weights)
        );
    }

    // --- scheduling ------------------------------------------------------

    /// Re-evaluate CPU ownership: fill idle CPUs with the highest-priority
    /// ready transactions, preempting lower-priority incumbents when every
    /// CPU is busy. Loops until no dispatchable candidate outranks the
    /// worst incumbent. O(D · (n_cpus + log N_rq)) where D is the number of
    /// dispatch attempts this call actually performs (usually 0 or 1).
    fn reschedule(&mut self) {
        if self.paused_until().is_some() {
            return; // crash window: nothing dispatches until recovery
        }
        loop {
            let Some(&key) = self.ready.iter().next() else {
                return;
            };
            if self.running.len() >= self.cfg.n_cpus {
                // All CPUs busy: preempt the lowest-priority incumbent if
                // the best ready candidate outranks it.
                let (pos, worst_key) = self
                    .running
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (i, self.pkey(r.id)))
                    .max_by_key(|&(_, k)| k)
                    // lint: allow(panic) — running.len() >= n_cpus >= 1 on this branch
                    .expect("running is non-empty");
                if worst_key <= key {
                    return; // incumbents keep their CPUs
                }
                self.preempt_running(pos);
            }
            self.ready.remove(&key);
            let cand = key.2;
            match self.try_dispatch(cand) {
                DispatchResult::Running
                | DispatchResult::Blocked
                | DispatchResult::SpawnedRefresh => {}
            }
        }
    }

    fn preempt_running(&mut self, pos: usize) {
        let run = self.running.swap_remove(pos);
        let elapsed = self.clock.saturating_since(run.started);
        self.charge_cpu(elapsed);
        let txn = &mut self.txns[run.id.index()];
        debug_assert_eq!(txn.state, TxnState::Running);
        txn.remaining = txn.remaining.saturating_sub(elapsed);
        if !txn.is_query() {
            self.outstanding_update_work = self.outstanding_update_work.saturating_sub(elapsed);
        }
        txn.state = TxnState::Ready;
        let key = self.pkey(run.id);
        self.ready.insert(key);
        self.sync_admitted_remaining(run.id);
        self.preemptions += 1;
    }

    fn try_dispatch(&mut self, id: TxnId) -> DispatchResult {
        debug_assert!(self.running.len() < self.cfg.n_cpus);
        match self.txns[id.index()].kind {
            TxnKind::Query { spec_idx, .. } => self.try_dispatch_query(id, spec_idx),
            TxnKind::Update { item, .. } => self.try_dispatch_update(id, item),
            TxnKind::Background => {
                // Injected load takes no locks: straight onto the CPU.
                self.start_running(id);
                DispatchResult::Running
            }
        }
    }

    fn try_dispatch_query(&mut self, id: TxnId, spec_idx: usize) -> DispatchResult {
        // On-demand refreshes (ODU): before the query touches data, the
        // policy may demand update transactions for its stale items. Those
        // are update-class, so they will run first.
        if !self.txns[id.index()].holds_locks {
            let spawned = self.spawn_demand_refreshes(spec_idx);
            if spawned {
                // The query goes back to the ready queue; the caller's loop
                // re-evaluates who runs next.
                self.txns[id.index()].state = TxnState::Ready;
                let key = self.pkey(id);
                self.ready.insert(key);
                return DispatchResult::SpawnedRefresh;
            }
        }

        if !self.txns[id.index()].holds_locks {
            // Field-precise destructures: the spec lives in `queries`,
            // disjoint from every structure touched alongside it.
            let acquire = {
                let Simulator { queries, locks, .. } = self;
                locks.acquire_read(id, &queries.get(spec_idx).items)
            };
            match acquire {
                ReadAcquire::Granted => {
                    let f = {
                        let Simulator {
                            queries,
                            freshness,
                            cfg,
                            clock,
                            ..
                        } = self;
                        cfg.freshness_model.read_set_freshness(
                            freshness,
                            &queries.get(spec_idx).items,
                            *clock,
                        )
                    };
                    self.dispatch_freshness_sum += f;
                    self.dispatch_freshness_n += 1;
                    {
                        let txn = &mut self.txns[id.index()];
                        txn.holds_locks = true;
                        if let TxnKind::Query {
                            freshness_at_dispatch,
                            ..
                        } = &mut txn.kind
                        {
                            *freshness_at_dispatch = Some(f);
                        }
                    }
                    {
                        let Simulator {
                            policy, queries, ..
                        } = self;
                        policy.on_query_dispatch(queries.get(spec_idx), f);
                    }
                }
                ReadAcquire::BlockedOn(d) => {
                    let txn = &mut self.txns[id.index()];
                    txn.state = TxnState::Blocked;
                    txn.blocked_on = Some(d);
                    self.blocked.push(id);
                    return DispatchResult::Blocked;
                }
            }
        }
        self.start_running(id);
        DispatchResult::Running
    }

    fn try_dispatch_update(&mut self, id: TxnId, item: DataId) -> DispatchResult {
        if !self.txns[id.index()].holds_locks {
            let my_key = self.pkey(id);
            let txns = &self.txns;
            let discipline = self.cfg.discipline;
            let result = self.locks.acquire_write(id, item, |holder: TxnId| {
                let h = &txns[holder.index()];
                my_key < (discipline.rank(h.class), h.edf_deadline, h.id)
            });
            match result {
                WriteAcquire::Granted { aborted } => {
                    self.txns[id.index()].holds_locks = true;
                    for victim in aborted {
                        self.restart_victim(victim);
                    }
                }
                WriteAcquire::BlockedOn(d) => {
                    let txn = &mut self.txns[id.index()];
                    txn.state = TxnState::Blocked;
                    txn.blocked_on = Some(d);
                    self.blocked.push(id);
                    return DispatchResult::Blocked;
                }
            }
        }
        self.start_running(id);
        DispatchResult::Running
    }

    /// A lock holder evicted by 2PL-HP: full restart (§3.1). Its locks were
    /// already released by the lock manager. With multiple CPUs the victim
    /// may be running concurrently — stop it first.
    fn restart_victim(&mut self, victim: TxnId) {
        if let Some(pos) = self.running.iter().position(|r| r.id == victim) {
            let run = self.running.swap_remove(pos);
            let elapsed = self.clock.saturating_since(run.started);
            self.charge_cpu(elapsed);
            let txn = &mut self.txns[victim.index()];
            txn.remaining = txn.remaining.saturating_sub(elapsed);
            if !txn.is_query() {
                self.outstanding_update_work = self.outstanding_update_work.saturating_sub(elapsed);
            }
            txn.state = TxnState::Ready;
            // Not reinserted into ready here: restart() below re-queues it.
        }
        let key = self.pkey(victim);
        self.ready.remove(&key);
        let txn = &mut self.txns[victim.index()];
        debug_assert_ne!(txn.state, TxnState::Finished, "finished txns hold no locks");
        let was_query = txn.is_query();
        let lost_progress = txn.exec_time.saturating_sub(txn.remaining);
        txn.restart();
        let key = self.pkey(victim);
        self.ready.insert(key);
        if was_query {
            self.sync_admitted_remaining(victim);
            self.query_restarts += 1;
        } else {
            // An update victim restarts with its full demand again.
            self.outstanding_update_work += lost_progress;
        }
    }

    fn start_running(&mut self, id: TxnId) {
        let txn = &mut self.txns[id.index()];
        txn.state = TxnState::Running;
        txn.blocked_on = None;
        let remaining = txn.remaining;
        let generation = self.next_generation;
        self.next_generation += 1;
        self.running.push(RunningTxn {
            id,
            started: self.clock,
            generation,
        });
        self.events.push(
            self.clock + remaining,
            Event::Completion {
                txn: id,
                generation,
            },
        );
    }

    fn spawn_update(
        &mut self,
        item: DataId,
        exec: SimDuration,
        edf_deadline: SimTime,
        on_demand: bool,
    ) {
        let id = TxnId(self.txns.len() as u64);
        let txn = Txn {
            id,
            class: TxnClass::Update,
            edf_deadline,
            exec_time: exec,
            remaining: exec,
            state: TxnState::Ready,
            holds_locks: false,
            blocked_on: None,
            kind: TxnKind::Update { item, on_demand },
        };
        self.outstanding_update_work += exec;
        self.ready.insert(self.pkey_of(&txn));
        self.txns.push(txn);
    }

    /// Inject one background-load transaction (fault-schedule burst):
    /// update-class CPU demand, no locks, no item, no outcome. Its EDF
    /// deadline is the injection instant, so it outranks every pending
    /// periodic update — bursts bite immediately.
    fn spawn_background(&mut self, exec: SimDuration) {
        let id = TxnId(self.txns.len() as u64);
        let txn = Txn {
            id,
            class: TxnClass::Update,
            edf_deadline: self.clock,
            exec_time: exec,
            remaining: exec,
            state: TxnState::Ready,
            holds_locks: false,
            blocked_on: None,
            kind: TxnKind::Background,
        };
        self.outstanding_update_work += exec;
        self.ready.insert(self.pkey_of(&txn));
        self.txns.push(txn);
    }

    fn unblock_waiters(&mut self, freed: &[DataId]) {
        if freed.is_empty() || self.blocked.is_empty() {
            return;
        }
        let mut unblocked = Vec::new();
        self.blocked.retain(|&b| {
            let txn = &self.txns[b.index()];
            match txn.blocked_on {
                Some(d) if freed.contains(&d) => {
                    unblocked.push(b);
                    false
                }
                _ => true,
            }
        });
        for id in unblocked {
            {
                let txn = &mut self.txns[id.index()];
                txn.state = TxnState::Ready;
                txn.blocked_on = None;
            }
            let key = self.pkey(id);
            self.ready.insert(key);
        }
    }

    // --- bookkeeping -----------------------------------------------------

    fn charge_cpu(&mut self, elapsed: SimDuration) {
        self.cpu_busy += elapsed;
        self.window_busy += elapsed;
    }

    fn record_outcome(&mut self, spec_idx: usize, outcome: Outcome) {
        self.counts.record(outcome);
        #[cfg(feature = "validate")]
        self.outcome_log.push(outcome);
        let (spec_id, class) = {
            let spec = self.queries.get(spec_idx);
            (spec.id, spec.pref_class as usize)
        };
        if self.cfg.record_outcomes {
            self.outcome_records.push(crate::stats::OutcomeRecord {
                seq: self.outcome_records.len() as u64,
                time: self.clock,
                query: spec_id,
                outcome,
            });
        }
        if self.class_counts.len() <= class {
            self.class_counts
                .resize(class + 1, OutcomeCounts::default());
        }
        self.class_counts[class].record(outcome);
        {
            let Simulator {
                policy, queries, ..
            } = self;
            policy.on_query_outcome(queries.get(spec_idx), outcome);
        }
        if self.obs.is_some() {
            self.emit(ObsEvent::QueryOutcome {
                time: self.clock,
                query: spec_id,
                outcome,
            });
        }
        // The outcome is the spec's last use: a streamed slot is recycled
        // here, bounding slab growth by the in-flight query count.
        self.queries.release(spec_idx);
    }

    // --- policy views ----------------------------------------------------

    /// The cheap [`SnapshotView`] scalars — the update backlog adjusted for
    /// the in-progress slices of running updates, and the windowed CPU
    /// utilization — in `O(n_cpus)`.
    fn view_scalars(&self) -> (SimDuration, f64) {
        let mut update_backlog = self.outstanding_update_work;
        for r in &self.running {
            if !self.txns[r.id.index()].is_query() {
                update_backlog =
                    update_backlog.saturating_sub(self.clock.saturating_since(r.started));
            }
        }

        let window = self.clock.saturating_since(self.window_start);
        let mut busy = self.window_busy;
        for r in &self.running {
            // Include the in-progress slice of each current runner.
            let started = r.started.max(self.window_start);
            busy += self.clock.saturating_since(started);
        }
        let recent_utilization = if window.is_zero() {
            0.0
        } else {
            (busy.as_secs_f64() / (window.as_secs_f64() * self.cfg.n_cpus as f64)).min(1.0)
        };
        (update_backlog, recent_utilization)
    }

    /// Run `f(policy, view)` with a borrowed [`SnapshotView`] over the live
    /// indexes: no admitted-query list is materialized unless the policy
    /// asks for one, and work probes go through the Fenwick index.
    fn with_view<R>(&mut self, f: impl FnOnce(&mut P, &SnapshotView<'_>) -> R) -> R {
        let (update_backlog, recent_utilization) = self.view_scalars();
        let Simulator {
            policy,
            clock,
            admitted,
            work,
            running,
            txns,
            view_scratch,
            ..
        } = self;
        let source = EngineQueue {
            clock: *clock,
            admitted: &*admitted,
            work: &*work,
            running: &*running,
            txns: &*txns,
            scratch: &*view_scratch,
        };
        let view = SnapshotView::new(*clock, update_backlog, recent_utilization, &source);
        f(policy, &view)
    }

    /// Like [`Simulator::with_view`], but also hands the closure the spec
    /// behind `spec_idx` (the query store is disjoint from every view
    /// input, so the extra borrow is free).
    fn with_view_spec<R>(
        &mut self,
        spec_idx: usize,
        f: impl FnOnce(&mut P, &QuerySpec, &SnapshotView<'_>) -> R,
    ) -> R {
        let (update_backlog, recent_utilization) = self.view_scalars();
        let Simulator {
            policy,
            queries,
            clock,
            admitted,
            work,
            running,
            txns,
            view_scratch,
            ..
        } = self;
        let source = EngineQueue {
            clock: *clock,
            admitted: &*admitted,
            work: &*work,
            running: &*running,
            txns: &*txns,
            scratch: &*view_scratch,
        };
        let view = SnapshotView::new(*clock, update_backlog, recent_utilization, &source);
        f(policy, queries.get(spec_idx), &view)
    }

    // --- admitted-query index maintenance --------------------------------

    fn insert_admitted(&mut self, spec_idx: usize, txn: TxnId) {
        let (deadline, spec_id, exec, pref_class) = {
            let spec = self.queries.get(spec_idx);
            (spec.deadline(), spec.id, spec.exec_time, spec.pref_class)
        };
        let prev = self.admitted.insert(
            (deadline, spec_id),
            AdmittedEntry {
                txn,
                remaining: exec,
                pref_class,
            },
        );
        debug_assert!(prev.is_none(), "query admitted twice");
        self.work.add(deadline, exec.0);
    }

    /// Re-sync the stored remaining of an admitted query after its
    /// transaction's `remaining` changed at rest (preemption or 2PL-HP
    /// restart). No-op for update transactions.
    fn sync_admitted_remaining(&mut self, id: TxnId) {
        let txn = &self.txns[id.index()];
        let TxnKind::Query { spec_idx, .. } = txn.kind else {
            return;
        };
        let deadline = txn.edf_deadline;
        let key = (deadline, self.queries.get(spec_idx).id);
        let new = txn.remaining;
        let entry = self
            .admitted
            .get_mut(&key)
            // lint: allow(panic) — insert/remove are paired with txn lifecycle
            .expect("unfinished query must be admitted");
        let old = entry.remaining;
        entry.remaining = new;
        if new >= old {
            self.work.add(deadline, new.0 - old.0);
        } else {
            self.work.sub(deadline, old.0 - new.0);
        }
    }

    fn remove_admitted(&mut self, id: TxnId) {
        let txn = &self.txns[id.index()];
        let TxnKind::Query { spec_idx, .. } = txn.kind else {
            // lint: allow(panic) — callers pass ids from the admitted index
            unreachable!("only queries enter the admitted index");
        };
        let deadline = txn.edf_deadline;
        let key = (deadline, self.queries.get(spec_idx).id);
        let entry = self
            .admitted
            .remove(&key)
            // lint: allow(panic) — insert/remove are paired with txn lifecycle
            .expect("unfinished query must be admitted");
        self.work.sub(deadline, entry.remaining.0);
    }
}
