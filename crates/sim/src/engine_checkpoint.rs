//! Deterministic checkpoint/restore of the full engine state (DESIGN.md
//! §4b), plus the lose-state crash recovery built on it.
//!
//! [`Simulator::checkpoint`] serializes every piece of *canonical* run
//! state — clock, query store, event heap, transactions, locks, freshness,
//! accounting, policy — through the versioned [`Enc`] codec. Derived
//! structures (the ready set, the Fenwick/treap work index, the view
//! scratch buffer) are never written: [`Simulator::restore`] rebuilds them
//! from the canonical state, so a snapshot is a pure function of the
//! simulation state and two identically-positioned runs produce
//! bit-identical bytes.
//!
//! The crash-recovery bookkeeping (`crash_points`, `next_crash_idx`,
//! `last_checkpoint`, `input_log`, `replay`) deliberately lives *outside*
//! the snapshot: a restore must not rewind recovery progress, or the crash
//! that triggered it would re-fire during its own replay, forever. The one
//! monotone counter, `FaultCounts::recoveries`, is saved around the restore
//! by [`Simulator::perform_crash_recovery`]. Same for `stream_exhausted`:
//! `end_stream()` is a feeder promise, not an event, so it survives the
//! rewind (OR-ed back after the re-feed).

use super::{AdmittedEntry, QueryStore, RunningTxn, Simulator, WorkIndex};
use crate::events::Event;
use crate::stats::OutcomeRecord;
use crate::stats::TimelineSample;
use crate::txn::{Txn, TxnId, TxnKind, TxnState};
use crate::worktreap::WorkTreap;
use unit_core::checkpoint::{CheckpointError, Dec, Enc};
use unit_core::fenwick::Fenwick;
use unit_core::policy::Policy;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, Outcome, QueryId, QuerySpec, TxnClass};
use unit_core::usm::OutcomeCounts;
use unit_obs::ObsEvent;

/// Serialize one query spec (full fidelity — streamed slabs own their
/// specs, so the snapshot must carry them).
fn put_spec(enc: &mut Enc, spec: &QuerySpec) {
    enc.put_u64(spec.id.0);
    enc.put_u64(spec.arrival.0);
    enc.put_usize(spec.items.len());
    for d in &spec.items {
        enc.put_u32(d.0);
    }
    enc.put_u64(spec.exec_time.0);
    enc.put_u64(spec.relative_deadline.0);
    enc.put_f64(spec.freshness_req);
    enc.put_u32(spec.pref_class);
}

fn take_spec(dec: &mut Dec<'_>) -> Result<QuerySpec, CheckpointError> {
    let id = QueryId(dec.take_u64()?);
    let arrival = SimTime(dec.take_u64()?);
    let n = dec.take_usize()?;
    let mut items = Vec::with_capacity(n.min(dec.remaining() / 4 + 1));
    for _ in 0..n {
        items.push(DataId(dec.take_u32()?));
    }
    Ok(QuerySpec {
        id,
        arrival,
        items,
        exec_time: SimDuration(dec.take_u64()?),
        relative_deadline: SimDuration(dec.take_u64()?),
        freshness_req: dec.take_f64()?,
        pref_class: dec.take_u32()?,
    })
}

/// Serialize one heap event behind its `(time, seq)` key.
fn put_event(enc: &mut Enc, ev: &Event) {
    match ev {
        Event::QueryArrival { spec_idx } => {
            enc.put_u8(0);
            enc.put_usize(*spec_idx);
        }
        Event::VersionArrival { stream_idx } => {
            enc.put_u8(1);
            enc.put_usize(*stream_idx);
        }
        Event::Completion { txn, generation } => {
            enc.put_u8(2);
            enc.put_u64(txn.0);
            enc.put_u64(*generation);
        }
        Event::QueryDeadline { txn } => {
            enc.put_u8(3);
            enc.put_u64(txn.0);
        }
        Event::ControlTick => enc.put_u8(4),
        Event::FaultTransition => enc.put_u8(5),
        Event::DelayedApply {
            item,
            exec,
            edf_deadline,
        } => {
            enc.put_u8(6);
            enc.put_u32(item.0);
            enc.put_u64(exec.0);
            enc.put_u64(edf_deadline.0);
        }
    }
}

fn take_event(dec: &mut Dec<'_>) -> Result<Event, CheckpointError> {
    Ok(match dec.take_u8()? {
        0 => Event::QueryArrival {
            spec_idx: dec.take_usize()?,
        },
        1 => Event::VersionArrival {
            stream_idx: dec.take_usize()?,
        },
        2 => Event::Completion {
            txn: TxnId(dec.take_u64()?),
            generation: dec.take_u64()?,
        },
        3 => Event::QueryDeadline {
            txn: TxnId(dec.take_u64()?),
        },
        4 => Event::ControlTick,
        5 => Event::FaultTransition,
        6 => Event::DelayedApply {
            item: DataId(dec.take_u32()?),
            exec: SimDuration(dec.take_u64()?),
            edf_deadline: SimTime(dec.take_u64()?),
        },
        v => {
            return Err(CheckpointError::BadTag {
                value: v as u64,
                what: "event",
            })
        }
    })
}

fn put_txn(enc: &mut Enc, txn: &Txn) {
    enc.put_u64(txn.id.0);
    enc.put_u8(match txn.class {
        TxnClass::Update => 0,
        TxnClass::Query => 1,
    });
    enc.put_u64(txn.edf_deadline.0);
    enc.put_u64(txn.exec_time.0);
    enc.put_u64(txn.remaining.0);
    enc.put_u8(match txn.state {
        TxnState::Ready => 0,
        TxnState::Running => 1,
        TxnState::Blocked => 2,
        TxnState::Finished => 3,
    });
    enc.put_bool(txn.holds_locks);
    enc.put_opt_u64(txn.blocked_on.map(|d| d.0 as u64));
    match &txn.kind {
        TxnKind::Query {
            spec_idx,
            freshness_at_dispatch,
            restarts,
        } => {
            enc.put_u8(0);
            enc.put_usize(*spec_idx);
            enc.put_opt_f64(*freshness_at_dispatch);
            enc.put_u32(*restarts);
        }
        TxnKind::Update { item, on_demand } => {
            enc.put_u8(1);
            enc.put_u32(item.0);
            enc.put_bool(*on_demand);
        }
        TxnKind::Background => enc.put_u8(2),
    }
}

fn take_txn(dec: &mut Dec<'_>) -> Result<Txn, CheckpointError> {
    let id = TxnId(dec.take_u64()?);
    let class = match dec.take_u8()? {
        0 => TxnClass::Update,
        1 => TxnClass::Query,
        v => {
            return Err(CheckpointError::BadTag {
                value: v as u64,
                what: "txn class",
            })
        }
    };
    let edf_deadline = SimTime(dec.take_u64()?);
    let exec_time = SimDuration(dec.take_u64()?);
    let remaining = SimDuration(dec.take_u64()?);
    let state = match dec.take_u8()? {
        0 => TxnState::Ready,
        1 => TxnState::Running,
        2 => TxnState::Blocked,
        3 => TxnState::Finished,
        v => {
            return Err(CheckpointError::BadTag {
                value: v as u64,
                what: "txn state",
            })
        }
    };
    let holds_locks = dec.take_bool()?;
    let blocked_on = dec.take_opt_u64()?.map(|v| DataId(v as u32));
    let kind = match dec.take_u8()? {
        0 => TxnKind::Query {
            spec_idx: dec.take_usize()?,
            freshness_at_dispatch: dec.take_opt_f64()?,
            restarts: dec.take_u32()?,
        },
        1 => TxnKind::Update {
            item: DataId(dec.take_u32()?),
            on_demand: dec.take_bool()?,
        },
        2 => TxnKind::Background,
        v => {
            return Err(CheckpointError::BadTag {
                value: v as u64,
                what: "txn kind",
            })
        }
    };
    Ok(Txn {
        id,
        class,
        edf_deadline,
        exec_time,
        remaining,
        state,
        holds_locks,
        blocked_on,
        kind,
    })
}

fn put_outcome(enc: &mut Enc, o: Outcome) {
    enc.put_u8(match o {
        Outcome::Success => 0,
        Outcome::Rejected => 1,
        Outcome::DeadlineMiss => 2,
        Outcome::DataStale => 3,
    });
}

fn take_outcome(dec: &mut Dec<'_>) -> Result<Outcome, CheckpointError> {
    Ok(match dec.take_u8()? {
        0 => Outcome::Success,
        1 => Outcome::Rejected,
        2 => Outcome::DeadlineMiss,
        3 => Outcome::DataStale,
        v => {
            return Err(CheckpointError::BadTag {
                value: v as u64,
                what: "outcome",
            })
        }
    })
}

fn put_counts(enc: &mut Enc, c: &OutcomeCounts) {
    for v in [c.success, c.rejected, c.deadline_miss, c.data_stale] {
        enc.put_u64(v);
    }
}

fn take_counts(dec: &mut Dec<'_>) -> Result<OutcomeCounts, CheckpointError> {
    Ok(OutcomeCounts {
        success: dec.take_u64()?,
        rejected: dec.take_u64()?,
        deadline_miss: dec.take_u64()?,
        data_stale: dec.take_u64()?,
    })
}

impl<P: Policy> Simulator<'_, P> {
    /// Serialize the full engine state into a versioned, byte-stable
    /// snapshot. Call at a quiescent point — between [`Simulator::step`]
    /// calls; internally the engine snapshots only at control-tick
    /// boundaries and run start. Two identically-positioned runs produce
    /// bit-identical bytes, and `checkpoint → restore → checkpoint` is a
    /// byte-level fixed point (the round-trip suite pins both). O(state).
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.put_u64(self.clock.0);

        // Static-shape guards: restore refuses a snapshot taken against a
        // different store flavour, trace size, or database size.
        match &self.queries {
            QueryStore::Materialized(qs) => {
                enc.put_u8(0);
                enc.put_usize(qs.len());
            }
            QueryStore::Streamed { .. } => enc.put_u8(1),
        }
        enc.put_usize(self.n_items);

        enc.put_u64(self.submitted);
        enc.put_u64(self.last_fed_arrival.0);
        enc.put_u64(self.arrivals_in_flight);
        enc.put_bool(self.stream_exhausted);
        if let QueryStore::Streamed { slab, free } = &self.queries {
            // Slots are serialized verbatim (freed slots hold stale but
            // deterministic specs), so the free list round-trips exactly.
            enc.put_usize(slab.len());
            for spec in slab {
                put_spec(&mut enc, spec);
            }
            enc.put_usize(free.len());
            for &slot in free {
                enc.put_usize(slot);
            }
        }
        enc.put_u64_slice(&self.streamed_accesses);

        // Event heap: live `(time, seq, event)` entries in heap-key order
        // plus the runtime sequence counter. Freed slab slots are garbage
        // and never written.
        enc.put_u64(self.events.next_seq());
        let entries = self.events.snapshot();
        enc.put_usize(entries.len());
        for (t, seq, ev) in &entries {
            enc.put_u64(t.0);
            enc.put_u64(*seq);
            put_event(&mut enc, ev);
        }
        match self.next_tick {
            Some((t, seq)) => {
                enc.put_u8(1);
                enc.put_u64(t.0);
                enc.put_u64(seq);
            }
            None => enc.put_u8(0),
        }

        enc.put_usize(self.txns.len());
        for txn in &self.txns {
            put_txn(&mut enc, txn);
        }
        enc.put_usize(self.blocked.len());
        for id in &self.blocked {
            enc.put_u64(id.0);
        }
        // Order is semantic: preemption picks the *last* worst incumbent.
        enc.put_usize(self.running.len());
        for r in &self.running {
            enc.put_u64(r.id.0);
            enc.put_u64(r.started.0);
            enc.put_u64(r.generation);
        }
        enc.put_u64(self.next_generation);

        self.locks.checkpoint_into(&mut enc);
        self.freshness.checkpoint_into(&mut enc);
        enc.put_usize(self.pending_ondemand.len());
        for &b in &self.pending_ondemand {
            enc.put_bool(b);
        }
        enc.put_u64(self.outstanding_update_work.0);

        // Admitted queries in key order; the work index is rebuilt from
        // these entries at restore.
        enc.put_usize(self.admitted.len());
        for (&(deadline, qid), e) in &self.admitted {
            enc.put_u64(deadline.0);
            enc.put_u64(qid.0);
            enc.put_u64(e.txn.0);
            enc.put_u64(e.remaining.0);
            enc.put_u32(e.pref_class);
        }

        put_counts(&mut enc, &self.counts);
        enc.put_usize(self.class_counts.len());
        for c in &self.class_counts {
            put_counts(&mut enc, c);
        }
        enc.put_u64(self.cpu_busy.0);
        enc.put_u64(self.window_busy.0);
        enc.put_u64(self.window_start.0);
        enc.put_u64(self.preemptions);
        enc.put_u64(self.query_restarts);
        enc.put_u64(self.demand_refreshes);
        for v in [
            self.signals.loosen_admission,
            self.signals.tighten_admission,
            self.signals.degrade_updates,
            self.signals.upgrade_updates,
        ] {
            enc.put_u64(v);
        }
        for v in [
            self.fault_counts.update_drops,
            self.fault_counts.update_delays,
            self.fault_counts.background_spawned,
            self.fault_counts.deferred_events,
            self.fault_counts.recoveries,
        ] {
            enc.put_u64(v);
        }
        enc.put_f64(self.dispatch_freshness_sum);
        enc.put_u64(self.dispatch_freshness_n);
        enc.put_usize(self.timeline.len());
        for s in &self.timeline {
            enc.put_u64(s.time.0);
            enc.put_f64(s.usm);
            enc.put_usize(s.ready_queries);
            enc.put_f64(s.update_backlog_secs);
            enc.put_f64(s.utilization);
        }
        enc.put_u64(self.events_processed);
        enc.put_usize(self.outcome_records.len());
        for r in &self.outcome_records {
            enc.put_u64(r.seq);
            enc.put_u64(r.time.0);
            enc.put_u64(r.query.0);
            put_outcome(&mut enc, r.outcome);
        }
        #[cfg(feature = "validate")]
        {
            enc.put_usize(self.outcome_log.len());
            for &o in &self.outcome_log {
                put_outcome(&mut enc, o);
            }
        }

        self.policy.checkpoint_state(&mut enc);
        enc.into_bytes()
    }

    /// Restore the engine to the state captured by
    /// [`Simulator::checkpoint`]. The snapshot must come from a simulator
    /// with the same static configuration (trace/store flavour, database
    /// size, policy type, config, fault hook); shape mismatches are
    /// rejected, but a snapshot from a *different run* of the same shape
    /// decodes silently into that run's state — keeping snapshots paired
    /// with their runs is the caller's contract.
    ///
    /// Derived structures (ready set, work index, view scratch) are rebuilt
    /// from the canonical state; the crash-recovery bookkeeping is reset
    /// relative to the restored clock, never rewound past recoveries.
    ///
    /// # Errors
    /// Any [`CheckpointError`] on malformed or mismatched bytes. On error
    /// the simulator may be partially overwritten and must not be stepped.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        if !self.started {
            // Policy tables and event seeding must exist before they are
            // overwritten (restore_state validates against init'd sizes).
            self.start();
        }
        let mut dec = Dec::new(bytes)?;
        self.clock = SimTime(dec.take_u64()?);

        let store_tag = dec.take_u8()?;
        match (&self.queries, store_tag) {
            (QueryStore::Materialized(qs), 0) => {
                if dec.take_usize()? != qs.len() {
                    return Err(CheckpointError::Mismatch {
                        what: "trace query count",
                    });
                }
            }
            (QueryStore::Streamed { .. }, 1) => {}
            _ => {
                return Err(CheckpointError::Mismatch {
                    what: "query store flavour",
                });
            }
        }
        if dec.take_usize()? != self.n_items {
            return Err(CheckpointError::Mismatch { what: "n_items" });
        }

        self.submitted = dec.take_u64()?;
        self.last_fed_arrival = SimTime(dec.take_u64()?);
        self.arrivals_in_flight = dec.take_u64()?;
        self.stream_exhausted = dec.take_bool()?;
        if let QueryStore::Streamed { slab, free } = &mut self.queries {
            let n = dec.take_usize()?;
            slab.clear();
            slab.reserve(n.min(1 << 20));
            for _ in 0..n {
                slab.push(take_spec(&mut dec)?);
            }
            let f = dec.take_usize()?;
            free.clear();
            for _ in 0..f {
                free.push(dec.take_usize()?);
            }
        }
        let accesses = dec.take_u64_vec()?;
        if accesses.len() != self.streamed_accesses.len() {
            return Err(CheckpointError::Mismatch {
                what: "access histogram size",
            });
        }
        self.streamed_accesses = accesses;

        let next_seq = dec.take_u64()?;
        let n_events = dec.take_usize()?;
        let mut entries = Vec::with_capacity(n_events.min(1 << 20));
        for _ in 0..n_events {
            let t = SimTime(dec.take_u64()?);
            let seq = dec.take_u64()?;
            entries.push((t, seq, take_event(&mut dec)?));
        }
        self.events.clear();
        self.events.set_next_seq(next_seq);
        self.events.restore_entries(entries);
        self.next_tick = match dec.take_u8()? {
            0 => None,
            1 => Some((SimTime(dec.take_u64()?), dec.take_u64()?)),
            v => {
                return Err(CheckpointError::BadTag {
                    value: v as u64,
                    what: "next tick",
                })
            }
        };

        let n_txns = dec.take_usize()?;
        self.txns.clear();
        self.txns.reserve(n_txns.min(1 << 20));
        for _ in 0..n_txns {
            self.txns.push(take_txn(&mut dec)?);
        }
        let n_blocked = dec.take_usize()?;
        self.blocked.clear();
        for _ in 0..n_blocked {
            self.blocked.push(TxnId(dec.take_u64()?));
        }
        let n_running = dec.take_usize()?;
        self.running.clear();
        for _ in 0..n_running {
            self.running.push(RunningTxn {
                id: TxnId(dec.take_u64()?),
                started: SimTime(dec.take_u64()?),
                generation: dec.take_u64()?,
            });
        }
        self.next_generation = dec.take_u64()?;

        self.locks.restore_from(&mut dec)?;
        self.freshness.restore_from(&mut dec)?;
        let n_pending = dec.take_usize()?;
        if n_pending != self.pending_ondemand.len() {
            return Err(CheckpointError::Mismatch {
                what: "pending-refresh table size",
            });
        }
        for b in &mut self.pending_ondemand {
            *b = dec.take_bool()?;
        }
        self.outstanding_update_work = SimDuration(dec.take_u64()?);

        // Admitted set: rebuild the map and the work index it feeds.
        self.admitted.clear();
        match &mut self.work {
            WorkIndex::Static { coords, fenwick } => *fenwick = Fenwick::new(coords.len()),
            WorkIndex::Dynamic { index } => *index = WorkTreap::new(),
        }
        let n_admitted = dec.take_usize()?;
        for _ in 0..n_admitted {
            let deadline = SimTime(dec.take_u64()?);
            let qid = QueryId(dec.take_u64()?);
            let entry = AdmittedEntry {
                txn: TxnId(dec.take_u64()?),
                remaining: SimDuration(dec.take_u64()?),
                pref_class: dec.take_u32()?,
            };
            self.work.add(deadline, entry.remaining.0);
            self.admitted.insert((deadline, qid), entry);
        }

        self.counts = take_counts(&mut dec)?;
        let n_classes = dec.take_usize()?;
        self.class_counts.clear();
        for _ in 0..n_classes {
            self.class_counts.push(take_counts(&mut dec)?);
        }
        self.cpu_busy = SimDuration(dec.take_u64()?);
        self.window_busy = SimDuration(dec.take_u64()?);
        self.window_start = SimTime(dec.take_u64()?);
        self.preemptions = dec.take_u64()?;
        self.query_restarts = dec.take_u64()?;
        self.demand_refreshes = dec.take_u64()?;
        self.signals.loosen_admission = dec.take_u64()?;
        self.signals.tighten_admission = dec.take_u64()?;
        self.signals.degrade_updates = dec.take_u64()?;
        self.signals.upgrade_updates = dec.take_u64()?;
        self.fault_counts.update_drops = dec.take_u64()?;
        self.fault_counts.update_delays = dec.take_u64()?;
        self.fault_counts.background_spawned = dec.take_u64()?;
        self.fault_counts.deferred_events = dec.take_u64()?;
        self.fault_counts.recoveries = dec.take_u64()?;
        self.dispatch_freshness_sum = dec.take_f64()?;
        self.dispatch_freshness_n = dec.take_u64()?;
        let n_samples = dec.take_usize()?;
        self.timeline.clear();
        for _ in 0..n_samples {
            self.timeline.push(TimelineSample {
                time: SimTime(dec.take_u64()?),
                usm: dec.take_f64()?,
                ready_queries: dec.take_usize()?,
                update_backlog_secs: dec.take_f64()?,
                utilization: dec.take_f64()?,
            });
        }
        self.events_processed = dec.take_u64()?;
        let n_records = dec.take_usize()?;
        self.outcome_records.clear();
        for _ in 0..n_records {
            self.outcome_records.push(OutcomeRecord {
                seq: dec.take_u64()?,
                time: SimTime(dec.take_u64()?),
                query: QueryId(dec.take_u64()?),
                outcome: take_outcome(&mut dec)?,
            });
        }
        #[cfg(feature = "validate")]
        {
            let n_log = dec.take_usize()?;
            self.outcome_log.clear();
            for _ in 0..n_log {
                self.outcome_log.push(take_outcome(&mut dec)?);
            }
        }

        self.policy.restore_state(&mut dec)?;
        dec.finish()?;

        // Rebuild the derived structures the snapshot never carries.
        self.ready.clear();
        let keys: Vec<_> = self
            .txns
            .iter()
            .filter(|t| t.state == TxnState::Ready)
            .map(|t| self.pkey_of(t))
            .collect();
        self.ready.extend(keys);
        self.view_scratch.get_mut().clear();

        // Crash bookkeeping relative to the restored clock: crash points at
        // or before a snapshot instant have already fired (the snapshot was
        // taken after their recovery), so the cursor resumes past them.
        self.replay = None;
        self.next_crash_idx = self.crash_points.partition_point(|&t| t <= self.clock);
        self.input_log.clear();
        self.last_checkpoint = if self.checkpoint_armed() {
            Some(bytes.to_vec())
        } else {
            None
        };
        Ok(())
    }

    /// True while a future lose-state crash point exists — the condition
    /// under which control boundaries snapshot and streamed feeds are
    /// logged. O(1).
    pub(super) fn checkpoint_armed(&self) -> bool {
        self.next_crash_idx < self.crash_points.len()
    }

    /// Snapshot at a control boundary while armed: replaces the standing
    /// checkpoint and prunes the input log (everything fed so far is inside
    /// the new snapshot). A no-op when disarmed, so fault-free runs spend
    /// one branch here. O(state) when armed.
    pub(super) fn take_checkpoint(&mut self) {
        // `get` doubles as the armed check: disarmed ⇔ cursor past the end.
        let Some(&next_crash) = self.crash_points.get(self.next_crash_idx) else {
            return;
        };
        // Crash points are known up front, so a snapshot at this boundary
        // is useful only if it can be the *last* one before the next
        // crash. When the next control tick still lands strictly before
        // the crash, that tick's snapshot supersedes this one — skip the
        // O(state) encode entirely. Strictly: a tick exactly at the crash
        // instant pops *after* the crash transition (the transition's
        // start-time sequence number is smaller), so it would snapshot too
        // late to help. This turns the armed-run overhead from
        // O(ticks × state) into O(crashes × state).
        if let Some((t, _)) = self.next_tick {
            if t < next_crash {
                return;
            }
        }
        let bytes = self.checkpoint();
        if self.obs.is_some() {
            self.emit(ObsEvent::CheckpointTaken {
                time: self.clock,
                bytes: bytes.len() as u64,
            });
        }
        self.input_log.clear();
        self.last_checkpoint = Some(bytes);
    }

    /// True when a lose-state crash fires at the current clock, advancing
    /// the cursor past any stale (already-replayed) points. O(1) amortized.
    pub(super) fn crash_due(&mut self) -> bool {
        while let Some(&t) = self.crash_points.get(self.next_crash_idx) {
            if t < self.clock {
                self.next_crash_idx += 1;
            } else {
                return t == self.clock;
            }
        }
        false
    }

    /// Lose-state crash at the current clock: discard all volatile state,
    /// restore the last checkpoint, re-feed the streamed arrivals the
    /// snapshot predates, and let the ordinary stepping loop replay the
    /// lost window in virtual time. The crash cursor, the monotone recovery
    /// counter, and the feeder's end-of-stream promise are saved around the
    /// restore — they describe recovery progress, not simulation state.
    pub(super) fn perform_crash_recovery(&mut self) {
        let ckpt = self
            .last_checkpoint
            .take()
            // lint: allow(panic) — start() snapshots while armed, so a checkpoint precedes every crash point by construction
            .expect("a checkpoint precedes every armed crash point");
        let resume_idx = self.next_crash_idx + 1;
        let recoveries = self.fault_counts.recoveries + 1;
        let exhausted = self.stream_exhausted;
        let crash_at = self.clock;
        let log = std::mem::take(&mut self.input_log);
        self.restore(&ckpt)
            // lint: allow(panic) — the engine restores only bytes it produced against this very run
            .expect("own checkpoint must restore");
        // restore() recomputed the crash cursor from the rewound clock,
        // which would re-fire this very crash during its own replay:
        // overwrite it with the post-crash cursor before anything steps.
        self.next_crash_idx = resume_idx;
        self.fault_counts.recoveries = recoveries;
        self.replay = Some((crash_at, self.clock));
        self.last_checkpoint = Some(ckpt);
        if self.obs.is_some() {
            let checkpoint = self.clock;
            self.emit(ObsEvent::RestoreBegin {
                time: crash_at,
                checkpoint,
            });
        }
        // Re-feed the streamed arrivals whose heap events the snapshot
        // predates; feeding re-logs them, rebuilding the input log for the
        // next crash. Specs already inside the snapshot are skipped.
        let already = self.submitted;
        for spec in log {
            if spec.id.0 >= already {
                self.feed_query(spec);
            }
        }
        self.stream_exhausted |= exhausted;
    }
}
