//! The discrete-event queue.
//!
//! A binary min-heap over `(time, sequence)` keys. The sequence number makes
//! same-instant events pop in insertion order, which keeps every run
//! bit-reproducible — a property the whole evaluation leans on.
//!
//! Payloads are interned in a slab and the heap holds only 24-byte
//! `(time, seq, slot)` keys: sift operations move small `Copy` keys instead
//! of full `Event` variants, and freed slots are recycled so the
//! steady-state path performs no per-event heap allocation.

use crate::txn::TxnId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use unit_core::time::SimTime;

/// Everything that can happen in the simulated server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A user query from the trace reaches the server.
    QueryArrival {
        /// Index into `Trace::queries`.
        spec_idx: usize,
    },
    /// A source emits a new version of its item.
    VersionArrival {
        /// Index into `Trace::updates`.
        stream_idx: usize,
    },
    /// The running transaction finishes its remaining service. Valid only if
    /// `generation` matches the transaction's current dispatch generation
    /// (preemption invalidates stale completions).
    Completion {
        /// The transaction expected to be running.
        txn: TxnId,
        /// Dispatch generation this completion was scheduled under.
        generation: u64,
    },
    /// A query's firm deadline expires; if uncommitted it is aborted (DMF).
    QueryDeadline {
        /// The admitted query transaction.
        txn: TxnId,
    },
    /// Periodic control tick: drives `Policy::on_tick` (and therefore UNIT's
    /// Load Balancing Controller).
    ControlTick,
    /// A fault-schedule transition instant (crash-window boundary or load
    /// burst). Only scheduled when a [`crate::faults::FaultHook`] is
    /// installed; a run without faults never sees one.
    FaultTransition,
    /// A fault-delayed update application becomes due: spawn the update
    /// transaction that [`crate::faults::UpdateFault::Delay`] postponed.
    DelayedApply {
        /// The item whose version is (finally) being applied.
        item: unit_core::types::DataId,
        /// Execution time of the application transaction.
        exec: unit_core::time::SimDuration,
        /// EDF (temporal-validity) deadline the update would have carried
        /// had it been spawned at its arrival instant.
        edf_deadline: SimTime,
    },
}

/// Min-heap event queue with deterministic same-time ordering.
#[derive(Debug, Default)]
pub struct EventQueue {
    /// Keys only: payloads never participate in sifting or ordering.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Interned payloads, indexed by the key's slot.
    slab: Vec<Event>,
    /// Recycled slab slots.
    free: Vec<u32>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = event;
                s
            }
            None => {
                // lint: allow(panic) — 4B simultaneous events is beyond any trace scale
                let s = u32::try_from(self.slab.len()).expect("event slab exceeds u32 slots");
                self.slab.push(event);
                s
            }
        };
        self.heap.push(Reverse((time, seq, slot)));
    }

    /// Pop the earliest event (ties in insertion order).
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse((t, _, slot))| {
            self.free.push(slot);
            let event = std::mem::replace(&mut self.slab[slot as usize], Event::ControlTick);
            (t, event)
        })
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), Event::ControlTick);
        q.push(SimTime::from_secs(1), Event::QueryArrival { spec_idx: 0 });
        q.push(
            SimTime::from_secs(3),
            Event::VersionArrival { stream_idx: 2 },
        );
        let (t1, e1) = q.pop().unwrap();
        assert_eq!(t1, SimTime::from_secs(1));
        assert_eq!(e1, Event::QueryArrival { spec_idx: 0 });
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, SimTime::from_secs(3));
        let (t3, _) = q.pop().unwrap();
        assert_eq!(t3, SimTime::from_secs(5));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2);
        for i in 0..10 {
            q.push(t, Event::QueryArrival { spec_idx: i });
        }
        for i in 0..10 {
            let (_, e) = q.pop().unwrap();
            assert_eq!(e, Event::QueryArrival { spec_idx: i });
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(4), Event::ControlTick);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        // Interleave pushes and pops: the slab must not grow past the peak
        // number of simultaneously pending events.
        for round in 0..100usize {
            q.push(SimTime::from_secs(round as u64), Event::ControlTick);
            q.push(
                SimTime::from_secs(round as u64),
                Event::QueryArrival { spec_idx: round },
            );
            let (_, e) = q.pop().unwrap();
            assert_eq!(e, Event::ControlTick);
            let (_, e) = q.pop().unwrap();
            assert_eq!(e, Event::QueryArrival { spec_idx: round });
        }
        assert!(q.slab.len() <= 2, "slab grew to {}", q.slab.len());
        assert!(q.is_empty());
    }
}
