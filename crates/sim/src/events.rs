//! The discrete-event queue.
//!
//! A binary min-heap over `(time, sequence)` keys. The sequence number makes
//! same-instant events pop in insertion order, which keeps every run
//! bit-reproducible — a property the whole evaluation leans on.
//!
//! Payloads are interned in a slab and the heap holds only 24-byte
//! `(time, seq, slot)` keys: sift operations move small `Copy` keys instead
//! of full `Event` variants, and freed slots are recycled so the
//! steady-state path performs no per-event heap allocation.

use crate::txn::TxnId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use unit_core::time::SimTime;

/// Everything that can happen in the simulated server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A user query from the trace reaches the server.
    QueryArrival {
        /// Index into `Trace::queries`.
        spec_idx: usize,
    },
    /// A source emits a new version of its item.
    VersionArrival {
        /// Index into `Trace::updates`.
        stream_idx: usize,
    },
    /// The running transaction finishes its remaining service. Valid only if
    /// `generation` matches the transaction's current dispatch generation
    /// (preemption invalidates stale completions).
    Completion {
        /// The transaction expected to be running.
        txn: TxnId,
        /// Dispatch generation this completion was scheduled under.
        generation: u64,
    },
    /// A query's firm deadline expires; if uncommitted it is aborted (DMF).
    QueryDeadline {
        /// The admitted query transaction.
        txn: TxnId,
    },
    /// Periodic control tick: drives `Policy::on_tick` (and therefore UNIT's
    /// Load Balancing Controller).
    ControlTick,
    /// A fault-schedule transition instant (crash-window boundary or load
    /// burst). Only scheduled when a [`crate::faults::FaultHook`] is
    /// installed; a run without faults never sees one.
    FaultTransition,
    /// A fault-delayed update application becomes due: spawn the update
    /// transaction that [`crate::faults::UpdateFault::Delay`] postponed.
    DelayedApply {
        /// The item whose version is (finally) being applied.
        item: unit_core::types::DataId,
        /// Execution time of the application transaction.
        exec: unit_core::time::SimDuration,
        /// EDF (temporal-validity) deadline the update would have carried
        /// had it been spawned at its arrival instant.
        edf_deadline: SimTime,
    },
}

/// First sequence number of the *runtime* class. Sequence numbers below this
/// are reserved for trace arrivals (one per query, `seq == global query
/// index`), so an arrival pushed mid-run by the streaming feed sorts exactly
/// where the materialized seeding loop would have placed it: before every
/// runtime event at the same instant, and in trace order among arrivals. The
/// split keeps same-instant tie-breaking a pure function of the trace — not
/// of *when* events were pushed — which is what makes the chunked feed path
/// bit-identical to the all-up-front path for any chunk size.
pub const ARRIVAL_SEQ_BASE: u64 = 1 << 48;

/// Min-heap event queue with deterministic same-time ordering.
#[derive(Debug)]
pub struct EventQueue {
    /// Keys only: payloads never participate in sifting or ordering.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Interned payloads, indexed by the key's slot.
    slab: Vec<Event>,
    /// Recycled slab slots.
    free: Vec<u32>,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            // Runtime events start above the arrival class (see
            // [`ARRIVAL_SEQ_BASE`]).
            next_seq: ARRIVAL_SEQ_BASE,
        }
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at `time` in the runtime sequence class (insertion
    /// order among runtime events).
    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.alloc_seq();
        self.push_with_seq(time, event, seq);
    }

    /// Schedule a trace arrival with its explicit sequence number (the
    /// query's global index). Arrival sequences sort *below* every runtime
    /// sequence, reproducing the materialized seeding order no matter when
    /// the arrival is fed. O(log N_ev).
    pub fn push_arrival(&mut self, time: SimTime, event: Event, seq: u64) {
        debug_assert!(
            seq < ARRIVAL_SEQ_BASE,
            "arrival seq {seq} collides with the runtime class"
        );
        self.push_with_seq(time, event, seq);
    }

    /// Claim the next runtime sequence number without pushing anything —
    /// used by the engine's tracked control tick, which keeps the tick out
    /// of the heap but must still occupy exactly the sequence slot the
    /// heap-resident tick would have taken. O(1).
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Claim `n` consecutive runtime sequence numbers at once, discarding
    /// them — the bulk counterpart of [`EventQueue::alloc_seq`] for the
    /// engine's idle-tick skip, which must burn exactly the sequence slots
    /// the skipped tick re-arms would have taken. O(1).
    pub fn alloc_seqs(&mut self, n: u64) {
        self.next_seq += n;
    }

    fn push_with_seq(&mut self, time: SimTime, event: Event, seq: u64) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = event;
                s
            }
            None => {
                // lint: allow(panic) — 4B simultaneous events is beyond any trace scale
                let s = u32::try_from(self.slab.len()).expect("event slab exceeds u32 slots");
                self.slab.push(event);
                s
            }
        };
        self.heap.push(Reverse((time, seq, slot)));
    }

    /// Pop the earliest event (ties in insertion order).
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse((t, _, slot))| {
            self.free.push(slot);
            let event = std::mem::replace(&mut self.slab[slot as usize], Event::ControlTick);
            (t, event)
        })
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// `(time, seq)` key of the next event without popping it — what the
    /// engine compares its tracked control tick against. O(1).
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|Reverse((t, s, _))| (*t, *s))
    }

    /// All pending events as `(time, seq, payload)`, sorted by `(time, seq)`
    /// — pop order. Used by checkpointing: the slab may hold placeholder
    /// payloads in freed slots, so the heap (live keys only) is the source
    /// of truth and a snapshot never exposes recycled garbage.
    pub(crate) fn snapshot(&self) -> Vec<(SimTime, u64, Event)> {
        let mut entries: Vec<(SimTime, u64, Event)> = self
            .heap
            .iter()
            // lint: allow(D6) — heap keys index live slab slots by construction; a freed slot's key is popped before the slot is recycled
            .map(|Reverse((t, s, slot))| (*t, *s, self.slab[*slot as usize].clone()))
            .collect();
        entries.sort_by_key(|&(t, s, _)| (t, s));
        entries
    }

    /// Re-insert snapshotted entries with their original sequence numbers.
    /// The caller is responsible for clearing the queue first and for
    /// restoring [`EventQueue::next_seq`] afterwards.
    pub(crate) fn restore_entries(&mut self, entries: Vec<(SimTime, u64, Event)>) {
        for (t, s, e) in entries {
            self.push_with_seq(t, e, s);
        }
    }

    /// Current runtime sequence counter (checkpoint support).
    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Overwrite the runtime sequence counter (restore support).
    pub(crate) fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = seq;
    }

    /// Drop every pending event and recycled slot, keeping allocations.
    /// Restore support: the queue is refilled from a snapshot afterwards.
    pub(crate) fn clear(&mut self) {
        self.heap.clear();
        self.slab.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), Event::ControlTick);
        q.push(SimTime::from_secs(1), Event::QueryArrival { spec_idx: 0 });
        q.push(
            SimTime::from_secs(3),
            Event::VersionArrival { stream_idx: 2 },
        );
        let (t1, e1) = q.pop().unwrap();
        assert_eq!(t1, SimTime::from_secs(1));
        assert_eq!(e1, Event::QueryArrival { spec_idx: 0 });
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, SimTime::from_secs(3));
        let (t3, _) = q.pop().unwrap();
        assert_eq!(t3, SimTime::from_secs(5));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2);
        for i in 0..10 {
            q.push(t, Event::QueryArrival { spec_idx: i });
        }
        for i in 0..10 {
            let (_, e) = q.pop().unwrap();
            assert_eq!(e, Event::QueryArrival { spec_idx: i });
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(4), Event::ControlTick);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn arrival_class_outranks_runtime_class_at_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        // Runtime event pushed FIRST, arrivals fed later (out of order, as a
        // streamed feed might): arrivals still pop first, in trace order.
        q.push(t, Event::ControlTick);
        q.push_arrival(t, Event::QueryArrival { spec_idx: 3 }, 3);
        q.push_arrival(t, Event::QueryArrival { spec_idx: 1 }, 1);
        assert_eq!(q.pop().unwrap().1, Event::QueryArrival { spec_idx: 1 });
        assert_eq!(q.pop().unwrap().1, Event::QueryArrival { spec_idx: 3 });
        assert_eq!(q.pop().unwrap().1, Event::ControlTick);
    }

    #[test]
    fn alloc_seq_reserves_a_runtime_slot() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, Event::QueryArrival { spec_idx: 0 }); // seq BASE
        let skipped = q.alloc_seq(); // seq BASE+1, never pushed
        q.push(t, Event::QueryArrival { spec_idx: 2 }); // seq BASE+2
        assert_eq!(skipped, ARRIVAL_SEQ_BASE + 1);
        assert_eq!(q.peek_key(), Some((t, ARRIVAL_SEQ_BASE)));
        assert_eq!(q.pop().unwrap().1, Event::QueryArrival { spec_idx: 0 });
        assert_eq!(q.pop().unwrap().1, Event::QueryArrival { spec_idx: 2 });
    }

    #[test]
    fn snapshot_and_restore_preserve_pop_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(3);
        q.push(t, Event::ControlTick);
        q.push_arrival(t, Event::QueryArrival { spec_idx: 7 }, 7);
        q.push(
            SimTime::from_secs(1),
            Event::VersionArrival { stream_idx: 4 },
        );
        // Pop one so the slab contains a recycled placeholder slot.
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, Event::VersionArrival { stream_idx: 4 });

        let entries = q.snapshot();
        assert_eq!(entries.len(), 2);
        let next = q.next_seq();

        let mut r = EventQueue::new();
        r.clear();
        r.restore_entries(entries);
        r.set_next_seq(next);
        assert_eq!(r.next_seq(), next);
        assert_eq!(r.pop().unwrap().1, Event::QueryArrival { spec_idx: 7 });
        assert_eq!(r.pop().unwrap().1, Event::ControlTick);
        assert!(r.pop().is_none());
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        // Interleave pushes and pops: the slab must not grow past the peak
        // number of simultaneously pending events.
        for round in 0..100usize {
            q.push(SimTime::from_secs(round as u64), Event::ControlTick);
            q.push(
                SimTime::from_secs(round as u64),
                Event::QueryArrival { spec_idx: round },
            );
            let (_, e) = q.pop().unwrap();
            assert_eq!(e, Event::ControlTick);
            let (_, e) = q.pop().unwrap();
            assert_eq!(e, Event::QueryArrival { spec_idx: round });
        }
        assert!(q.slab.len() <= 2, "slab grew to {}", q.slab.len());
        assert!(q.is_empty());
    }
}
