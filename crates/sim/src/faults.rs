//! Fault-injection hook surface for the engine.
//!
//! The engine itself stays fault-agnostic: all failure behaviour is
//! delegated to an optional [`FaultHook`] installed with
//! [`crate::Simulator::with_faults`]. The hook expresses faults in
//! **virtual time** — crash/recovery windows, per-item update drop and
//! delay intervals, and background load bursts — so a faulty run is still a
//! pure function of `(trace, policy, config, hook)` and bit-reproducible.
//!
//! Without a hook (or with a hook whose schedule is empty) the engine takes
//! exactly the fault-free code paths: no extra events are scheduled and no
//! behaviour changes, which is what the fault-free differential suite pins
//! (`crates/cluster/tests/fault_differential.rs`).
//!
//! Semantics (DESIGN.md §4):
//!
//! * **[`HealthState::Down`]** — the server is fully paused. Query
//!   arrivals, firm-deadline expiries, and control ticks popping inside the
//!   window are deferred to the window end; running transactions were
//!   preempted at the window start, so no outcome is ever recorded at a
//!   virtual time strictly inside a down window. Version *arrivals* are
//!   still observed (sources are external and keep emitting — `Udrop`
//!   rises), but applications are dropped.
//! * **[`HealthState::Degraded`]** — graceful degradation: the read path
//!   stays up and queries execute against the last-applied versions, while
//!   update applications are dropped. Staleness accrues honestly through
//!   the ordinary `Udrop` path, so affected queries score DSF (`C_fs`)
//!   instead of stalling into DMF (`C_fm`).
//! * **[`UpdateFault`]** — outside crash windows, individual items can have
//!   drop or delay intervals on their update streams, again feeding the
//!   real freshness path.
//! * **Load bursts** — at hook-chosen transition instants the engine
//!   spawns *background* update-class transactions that consume CPU (and
//!   outrank queries under the paper's dual-priority discipline) but touch
//!   no data and record no outcome.

use unit_core::time::{SimDuration, SimTime};
use unit_core::types::DataId;

/// Health of the simulated server at one virtual instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Fully operational: queries and updates run normally.
    Up,
    /// Crashed/paused until the given instant: nothing executes and no
    /// outcome is recorded strictly inside the window.
    Down {
        /// First instant at which the server is operational again.
        until: SimTime,
    },
    /// Serving reads from last-applied versions until the given instant:
    /// queries execute (possibly scoring DSF), update applications drop.
    Degraded {
        /// First instant at which the update path is restored.
        until: SimTime,
    },
}

impl HealthState {
    /// True when the query path is paused (only [`HealthState::Down`]).
    pub fn queries_paused(&self) -> bool {
        matches!(self, HealthState::Down { .. })
    }

    /// True when update applications are dropped (down or degraded).
    pub fn updates_dropped(&self) -> bool {
        !matches!(self, HealthState::Up)
    }
}

/// Fault applied to the application of one arriving version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateFault {
    /// No fault: the policy decides and the update applies normally.
    Apply,
    /// The version is observed (raises `Udrop`) but never applied.
    Drop,
    /// The application transaction is spawned only after the given delay.
    Delay(SimDuration),
}

/// Background work injected by a load burst: one update-class transaction
/// that consumes CPU but touches no item and records no outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundLoad {
    /// CPU demand of the injected transaction.
    pub exec: SimDuration,
}

/// The engine's fault-injection interface.
///
/// Implementations must be **deterministic pure functions of virtual
/// time**: the engine may call any method any number of times and the
/// answer for a given instant must never change (the cluster layer relies
/// on this for its bit-reproducibility argument). All faults must be known
/// up front — [`FaultHook::transition_times`] is consulted once at run
/// start and is the only way the hook can cause engine activity at an
/// instant where no trace event fires.
pub trait FaultHook {
    /// Virtual instants at which the engine must schedule a fault
    /// transition event: crash-window starts and ends, and load-burst
    /// instants. Called once at run start; duplicates are fine. O(F) in
    /// the number of scheduled fault events.
    fn transition_times(&self) -> Vec<SimTime>;

    /// Health of the server at `now`. Consulted on every popped event
    /// while faults are installed, so implementations should be O(log F)
    /// or better.
    fn health(&self, now: SimTime) -> HealthState;

    /// Fault applied to a version of `item` arriving at `now`, when the
    /// server is otherwise up. O(log F) or better.
    fn update_fault(&self, item: DataId, now: SimTime) -> UpdateFault;

    /// Background load to inject at transition instant `now` (empty when
    /// the transition is a crash boundary). O(B_now) in the number of
    /// bursts at exactly `now`.
    fn load_at(&self, now: SimTime) -> Vec<BackgroundLoad>;

    /// Virtual instants at which the server crashes **losing all volatile
    /// state** (DESIGN.md §4b): at each instant the engine discards its
    /// state, restores its last checkpoint, and replays the lost window.
    /// Must be sorted ascending; duplicates are fine. These instants must
    /// also appear in [`FaultHook::transition_times`]. The default — no
    /// lose-state crashes — keeps existing hooks (pause/degrade semantics)
    /// unchanged. O(F).
    fn lose_state_crashes(&self) -> Vec<SimTime> {
        Vec::new() // lint: allow(P2) — called once at simulator start to arm the crash cursor, never per event
    }
}

/// The trivial hook: always healthy, never faults. Installing it is
/// behaviourally identical to installing no hook at all — the fault-free
/// differential suite pins this bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    /// O(1): no transitions.
    fn transition_times(&self) -> Vec<SimTime> {
        Vec::new()
    }

    /// O(1): always up.
    fn health(&self, _now: SimTime) -> HealthState {
        HealthState::Up
    }

    /// O(1): never faults an update.
    fn update_fault(&self, _item: DataId, _now: SimTime) -> UpdateFault {
        UpdateFault::Apply
    }

    /// O(1): never injects load.
    fn load_at(&self, _now: SimTime) -> Vec<BackgroundLoad> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_state_predicates() {
        let t = SimTime::from_secs(5);
        assert!(!HealthState::Up.queries_paused());
        assert!(!HealthState::Up.updates_dropped());
        assert!(HealthState::Down { until: t }.queries_paused());
        assert!(HealthState::Down { until: t }.updates_dropped());
        assert!(!HealthState::Degraded { until: t }.queries_paused());
        assert!(HealthState::Degraded { until: t }.updates_dropped());
    }

    #[test]
    fn no_faults_is_inert() {
        let h = NoFaults;
        assert!(h.transition_times().is_empty());
        assert_eq!(h.health(SimTime::ZERO), HealthState::Up);
        assert_eq!(
            h.update_fault(DataId(0), SimTime::from_secs(9)),
            UpdateFault::Apply
        );
        assert!(h.load_at(SimTime::from_secs(1)).is_empty());
    }
}
