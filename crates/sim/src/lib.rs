//! # unit-sim — the web-database server substrate
//!
//! A deterministic discrete-event simulation of the single-CPU web-database
//! server the UNIT paper evaluates on (§3.1, §4.1):
//!
//! * **dual-priority ready queue** — update transactions outrank user
//!   queries; EDF within each class ([`txn`]),
//! * **preemptive CPU** — higher-priority arrivals take over; preempted
//!   transactions keep their progress and locks ([`engine`]),
//! * **2PL-HP** concurrency control — higher-priority lock requesters evict
//!   lower-priority holders, which restart ([`locks`]),
//! * **firm deadlines** — queries are aborted at expiry (DMF),
//! * **freshness-tracked database** — version arrivals raise `Udrop`,
//!   applied updates clear it (re-exported from `unit_core::freshness`).
//!
//! All decisions are delegated to a [`unit_core::policy::Policy`]; the
//! engine only executes. Runs are bit-reproducible: the event queue breaks
//! time ties by insertion order and the engine uses no randomness.
//!
//! ```
//! use unit_core::prelude::*;
//! use unit_sim::{run_simulation, SimConfig};
//!
//! let trace = Trace {
//!     n_items: 2,
//!     queries: vec![QuerySpec {
//!         id: QueryId(0),
//!         arrival: SimTime::from_secs(1),
//!         items: vec![DataId(0)],
//!         exec_time: SimDuration::from_secs(1),
//!         relative_deadline: SimDuration::from_secs(10),
//!         freshness_req: 0.9,
//!         pref_class: 0,
//!     }],
//!     updates: vec![],
//! };
//! let policy = UnitPolicy::new(UnitConfig::default());
//! let report = run_simulation(&trace, policy, SimConfig::new(SimDuration::from_secs(100)));
//! assert_eq!(report.counts.success, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod engine;
pub mod events;
pub mod faults;
pub mod locks;
pub mod run;
pub mod stats;
pub mod txn;
#[cfg(feature = "validate")]
pub mod validate;
pub mod worktreap;

pub use backend::SimBackend;
pub use engine::{run_simulation, SchedulingDiscipline, SimConfig, Simulator};
pub use faults::{BackgroundLoad, FaultHook, HealthState, NoFaults, UpdateFault};
pub use run::SimRun;
pub use stats::{
    report_digest, FaultCounts, OutcomeRecord, SignalCounts, SimReport, TimelineSample,
};

/// Convenient glob-import of the common entry types: the engine
/// ([`Simulator`], [`SimConfig`], [`run_simulation`]), its report
/// ([`SimReport`], [`report_digest`]), fault injection, the observability
/// sinks from `unit-obs`, and the whole `unit_core` prelude.
///
/// ```
/// use unit_sim::prelude::*;
/// ```
pub mod prelude {
    pub use crate::backend::SimBackend;
    pub use crate::engine::{run_simulation, SchedulingDiscipline, SimConfig, Simulator};
    pub use crate::faults::{BackgroundLoad, FaultHook, HealthState, NoFaults, UpdateFault};
    pub use crate::run::SimRun;
    pub use crate::stats::{report_digest, OutcomeRecord, SimReport, TimelineSample};
    pub use unit_core::prelude::*;
    pub use unit_obs::{NullObserver, ObsEvent, Observer, RingRecorder};
}
