//! Two-Phase Locking with High Priority (2PL-HP) — Abbott & Garcia-Molina.
//!
//! The concurrency-control scheme of §3.1: on a lock conflict, a
//! higher-priority requester **aborts** lower-priority holders (they restart
//! from scratch); a lower-priority requester **blocks**. Combined with the
//! dual-priority discipline this gives updates an unimpeded path to the data
//! — at the cost of restarting the queries they collide with, which is
//! exactly the IMU failure mode the paper's evaluation exposes.
//!
//! Lock modes: queries take **read** locks on their whole read set
//! (all-or-nothing, acquired at dispatch — the trace declares read sets up
//! front, so conservative acquisition costs nothing and rules out
//! deadlocks); updates take a single **write** lock.
//!
//! Deadlock freedom: queries only ever wait for updates; updates only ever
//! wait for strictly-higher-priority updates on the *single* item they lock.
//! Any wait chain is therefore a path of strictly increasing priority
//! through single-lock holders — it cannot cycle.

use crate::txn::TxnId;
use std::collections::BTreeMap;
use unit_core::types::DataId;

/// Result of a read-set acquisition attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadAcquire {
    /// All read locks granted.
    Granted,
    /// A write lock held by a (necessarily higher-priority) update blocks
    /// the request; nothing was acquired.
    BlockedOn(DataId),
}

/// Result of a write-lock acquisition attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteAcquire {
    /// Lock granted; the listed lower-priority holders were evicted and must
    /// be restarted by the engine.
    Granted {
        /// Holders aborted under the HP rule (in eviction order).
        aborted: Vec<TxnId>,
    },
    /// A higher-priority holder keeps the lock; the requester must wait.
    BlockedOn(DataId),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum LockState {
    Free,
    Read(Vec<TxnId>),
    Write(TxnId),
}

/// The lock table: one slot per data item, plus a per-transaction index of
/// held locks so release is O(held · log held).
///
/// The index is a `BTreeMap` (not a `HashMap`): its iteration order feeds
/// the invariant checker's error messages, and the determinism rule (D1,
/// `cargo xtask lint`) bans hash-ordered containers in this crate outright.
#[derive(Debug)]
pub struct LockManager {
    slots: Vec<LockState>,
    held: BTreeMap<TxnId, Vec<DataId>>,
    hp_aborts: u64,
}

impl LockManager {
    /// A lock table over `n_items` items, all free.
    pub fn new(n_items: usize) -> Self {
        LockManager {
            slots: vec![LockState::Free; n_items],
            held: BTreeMap::new(),
            hp_aborts: 0,
        }
    }

    /// Total holders evicted by the HP rule so far.
    pub fn hp_aborts(&self) -> u64 {
        self.hp_aborts
    }

    /// Items currently locked (diagnostics).
    pub fn locked_items(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !matches!(s, LockState::Free))
            .count()
    }

    /// Attempt to read-lock every item in `items` for `txn`, all-or-nothing.
    ///
    /// Queries are always the lowest-priority lock users, so a conflicting
    /// write lock means "block" — never "abort the holder".
    pub fn acquire_read(&mut self, txn: TxnId, items: &[DataId]) -> ReadAcquire {
        debug_assert!(
            !self.held.contains_key(&txn),
            "transaction {txn:?} already holds locks"
        );
        for &d in items {
            if let LockState::Write(_) = self.slots[d.index()] {
                return ReadAcquire::BlockedOn(d);
            }
        }
        for &d in items {
            match &mut self.slots[d.index()] {
                LockState::Free => self.slots[d.index()] = LockState::Read(vec![txn]),
                LockState::Read(readers) => readers.push(txn),
                // lint: allow(panic) — the write-conflict scan above returned early
                LockState::Write(_) => unreachable!("checked above"),
            }
        }
        self.held.insert(txn, items.to_vec());
        ReadAcquire::Granted
    }

    /// Attempt to write-lock `item` for `txn`.
    ///
    /// `requester_outranks(holder)` must implement the HP comparison (true
    /// when the holder is strictly lower priority and may be evicted).
    /// Evicted holders have all their locks released here; the engine must
    /// restart them.
    pub fn acquire_write<F>(
        &mut self,
        txn: TxnId,
        item: DataId,
        requester_outranks: F,
    ) -> WriteAcquire
    where
        F: Fn(TxnId) -> bool,
    {
        debug_assert!(
            !self.held.contains_key(&txn),
            "transaction {txn:?} already holds locks"
        );
        let slot = &self.slots[item.index()];
        let victims: Vec<TxnId> = match slot {
            LockState::Free => Vec::new(),
            LockState::Read(readers) => {
                // Readers are queries; if any outranks us (cannot happen with
                // the dual-priority discipline, but stay general) we block.
                if readers.iter().any(|&r| !requester_outranks(r)) {
                    return WriteAcquire::BlockedOn(item);
                }
                readers.clone()
            }
            LockState::Write(holder) => {
                if !requester_outranks(*holder) {
                    return WriteAcquire::BlockedOn(item);
                }
                vec![*holder]
            }
        };
        for &v in &victims {
            self.release_all(v);
            self.hp_aborts += 1;
        }
        self.slots[item.index()] = LockState::Write(txn);
        self.held.insert(txn, vec![item]);
        WriteAcquire::Granted { aborted: victims }
    }

    /// Release every lock `txn` holds, returning the items freed. Idempotent
    /// for transactions holding nothing.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<DataId> {
        let Some(items) = self.held.remove(&txn) else {
            return Vec::new();
        };
        for &d in &items {
            let slot = &mut self.slots[d.index()];
            match slot {
                LockState::Read(readers) => {
                    readers.retain(|&r| r != txn);
                    if readers.is_empty() {
                        *slot = LockState::Free;
                    }
                }
                LockState::Write(holder) => {
                    debug_assert_eq!(*holder, txn, "write lock held by someone else");
                    *slot = LockState::Free;
                }
                LockState::Free => debug_assert!(false, "releasing a free slot"),
            }
        }
        items
    }

    /// True when `txn` holds at least one lock.
    pub fn holds_any(&self, txn: TxnId) -> bool {
        self.held.contains_key(&txn)
    }

    /// Serialize the lock table into a checkpoint stream: every slot with
    /// its tag (reader vectors in their exact order — grant order is
    /// semantic under the HP rule), the per-transaction held index in
    /// `BTreeMap` order, and the abort counter.
    pub fn checkpoint_into(&self, enc: &mut unit_core::checkpoint::Enc) {
        enc.put_usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                LockState::Free => enc.put_u8(0),
                LockState::Read(readers) => {
                    enc.put_u8(1);
                    enc.put_usize(readers.len());
                    for r in readers {
                        enc.put_u64(r.0);
                    }
                }
                LockState::Write(holder) => {
                    enc.put_u8(2);
                    enc.put_u64(holder.0);
                }
            }
        }
        enc.put_usize(self.held.len());
        for (txn, items) in &self.held {
            enc.put_u64(txn.0);
            enc.put_usize(items.len());
            for d in items {
                enc.put_u64(d.0 as u64);
            }
        }
        enc.put_u64(self.hp_aborts);
    }

    /// Restore state captured by [`LockManager::checkpoint_into`].
    pub fn restore_from(
        &mut self,
        dec: &mut unit_core::checkpoint::Dec<'_>,
    ) -> Result<(), unit_core::checkpoint::CheckpointError> {
        use unit_core::checkpoint::CheckpointError;
        let n = dec.take_usize()?;
        if n != self.slots.len() {
            return Err(CheckpointError::Mismatch {
                what: "lock table size",
            });
        }
        for slot in &mut self.slots {
            *slot = match dec.take_u8()? {
                0 => LockState::Free,
                1 => {
                    let m = dec.take_usize()?;
                    let mut readers = Vec::with_capacity(m);
                    for _ in 0..m {
                        readers.push(TxnId(dec.take_u64()?));
                    }
                    LockState::Read(readers)
                }
                2 => LockState::Write(TxnId(dec.take_u64()?)),
                v => {
                    return Err(CheckpointError::BadTag {
                        value: v as u64,
                        what: "lock state",
                    })
                }
            };
        }
        self.held.clear();
        let h = dec.take_usize()?;
        for _ in 0..h {
            let txn = TxnId(dec.take_u64()?);
            let m = dec.take_usize()?;
            let mut items = Vec::with_capacity(m);
            for _ in 0..m {
                let raw = dec.take_u64()?;
                let id = u32::try_from(raw).map_err(|_| CheckpointError::BadTag {
                    value: raw,
                    what: "data id",
                })?;
                items.push(DataId(id));
            }
            self.held.insert(txn, items);
        }
        self.hp_aborts = dec.take_u64()?;
        Ok(())
    }

    /// Check the internal consistency of the table (test support): every
    /// held entry matches the slot states and vice versa.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (txn, items) in &self.held {
            for d in items {
                match &self.slots[d.index()] {
                    LockState::Free => return Err(format!("{txn:?} claims {d} but slot is free")),
                    LockState::Read(readers) => {
                        if !readers.contains(txn) {
                            return Err(format!("{txn:?} claims read on {d} but not a reader"));
                        }
                    }
                    LockState::Write(holder) => {
                        if holder != txn {
                            return Err(format!("{txn:?} claims write on {d} held by {holder:?}"));
                        }
                    }
                }
            }
        }
        for (i, slot) in self.slots.iter().enumerate() {
            match slot {
                LockState::Free => {}
                LockState::Read(readers) => {
                    for r in readers {
                        let ok = self
                            .held
                            .get(r)
                            .is_some_and(|items| items.contains(&DataId(i as u32)));
                        if !ok {
                            return Err(format!("slot {i} lists unregistered reader {r:?}"));
                        }
                    }
                }
                LockState::Write(holder) => {
                    let ok = self
                        .held
                        .get(holder)
                        .is_some_and(|items| items.contains(&DataId(i as u32)));
                    if !ok {
                        return Err(format!("slot {i} lists unregistered writer {holder:?}"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q1: TxnId = TxnId(1);
    const Q2: TxnId = TxnId(2);
    const U1: TxnId = TxnId(10);
    const U2: TxnId = TxnId(11);

    #[test]
    fn shared_read_locks_coexist() {
        let mut lm = LockManager::new(4);
        assert_eq!(
            lm.acquire_read(Q1, &[DataId(0), DataId(1)]),
            ReadAcquire::Granted
        );
        assert_eq!(
            lm.acquire_read(Q2, &[DataId(1), DataId(2)]),
            ReadAcquire::Granted
        );
        assert!(lm.holds_any(Q1) && lm.holds_any(Q2));
        lm.check_invariants().unwrap();
        assert_eq!(lm.locked_items(), 3);
    }

    #[test]
    fn read_blocks_on_write_without_partial_acquisition() {
        let mut lm = LockManager::new(4);
        assert!(matches!(
            lm.acquire_write(U1, DataId(1), |_| true),
            WriteAcquire::Granted { .. }
        ));
        // Query wants items 0 and 1; 1 is write-locked -> block, acquire none.
        assert_eq!(
            lm.acquire_read(Q1, &[DataId(0), DataId(1)]),
            ReadAcquire::BlockedOn(DataId(1))
        );
        assert!(!lm.holds_any(Q1));
        assert_eq!(lm.locked_items(), 1);
        lm.check_invariants().unwrap();
    }

    #[test]
    fn write_evicts_lower_priority_readers() {
        let mut lm = LockManager::new(4);
        lm.acquire_read(Q1, &[DataId(0), DataId(1)]);
        lm.acquire_read(Q2, &[DataId(1)]);
        // Update outranks both queries: evict them, take the lock.
        match lm.acquire_write(U1, DataId(1), |_| true) {
            WriteAcquire::Granted { aborted } => {
                assert_eq!(aborted.len(), 2);
                assert!(aborted.contains(&Q1) && aborted.contains(&Q2));
            }
            other => panic!("expected grant, got {other:?}"),
        }
        // Victims lost ALL their locks, including on other items.
        assert!(!lm.holds_any(Q1));
        assert!(!lm.holds_any(Q2));
        assert_eq!(lm.hp_aborts(), 2);
        lm.check_invariants().unwrap();
    }

    #[test]
    fn write_blocks_on_higher_priority_writer() {
        let mut lm = LockManager::new(2);
        assert!(matches!(
            lm.acquire_write(U1, DataId(0), |_| true),
            WriteAcquire::Granted { .. }
        ));
        // U2 does NOT outrank U1 -> block.
        assert_eq!(
            lm.acquire_write(U2, DataId(0), |_| false),
            WriteAcquire::BlockedOn(DataId(0))
        );
        assert!(!lm.holds_any(U2));
    }

    #[test]
    fn write_evicts_lower_priority_writer() {
        let mut lm = LockManager::new(2);
        lm.acquire_write(U2, DataId(0), |_| true);
        match lm.acquire_write(U1, DataId(0), |holder| holder == U2) {
            WriteAcquire::Granted { aborted } => assert_eq!(aborted, vec![U2]),
            other => panic!("expected grant, got {other:?}"),
        }
        assert!(lm.holds_any(U1));
        assert!(!lm.holds_any(U2));
        lm.check_invariants().unwrap();
    }

    #[test]
    fn release_frees_slots_and_is_idempotent() {
        let mut lm = LockManager::new(3);
        lm.acquire_read(Q1, &[DataId(0), DataId(2)]);
        let freed = lm.release_all(Q1);
        assert_eq!(freed, vec![DataId(0), DataId(2)]);
        assert_eq!(lm.locked_items(), 0);
        assert!(lm.release_all(Q1).is_empty());
        lm.check_invariants().unwrap();
        // Slot is genuinely reusable.
        assert!(matches!(
            lm.acquire_write(U1, DataId(0), |_| true),
            WriteAcquire::Granted { .. }
        ));
    }

    #[test]
    fn partial_reader_release_keeps_other_readers() {
        let mut lm = LockManager::new(2);
        lm.acquire_read(Q1, &[DataId(0)]);
        lm.acquire_read(Q2, &[DataId(0)]);
        lm.release_all(Q1);
        assert!(lm.holds_any(Q2));
        assert_eq!(lm.locked_items(), 1);
        lm.check_invariants().unwrap();
    }
}
