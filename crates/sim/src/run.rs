//! # `SimRun` — the one way to assemble a simulation run
//!
//! Mirrors the cluster layer's `ClusterRun`: a borrow-holding builder
//! that collects everything a run needs — the workload source, the
//! policy, the config, and the optional fault hook and observer — then
//! either executes it ([`SimRun::run`], [`SimRun::run_streamed`]) or
//! hands back the raw engine handle ([`SimRun::build`]) for embedders
//! that step it manually (the cluster dispatcher, epoch-parallel
//! stepping, checkpoint/restore harnesses).
//!
//! Before this builder existed a run was assembled by chaining
//! [`Simulator::new`] / [`Simulator::new_streaming`] with
//! `Simulator::with_faults` / `Simulator::with_observer` — four
//! combinators whose product made every new option a new constructor.
//! The combinators are now `#[deprecated]` thin wrappers; the low-level
//! constructors remain (they are the engine-handle API, exactly like
//! `ClusterConfig::new` under `ClusterRun`), and all optional state is
//! installed here.
//!
//! Builder-vs-wrapper bit-identity is pinned by
//! `crates/sim/tests/builder_identity.rs`.
//!
//! ```
//! use unit_sim::prelude::*;
//!
//! let trace = Trace {
//!     n_items: 2,
//!     queries: vec![QuerySpec {
//!         id: QueryId(0),
//!         arrival: SimTime::from_secs(1),
//!         items: vec![DataId(0)],
//!         exec_time: SimDuration::from_secs(1),
//!         relative_deadline: SimDuration::from_secs(10),
//!         freshness_req: 0.9,
//!         pref_class: 0,
//!     }],
//!     updates: vec![],
//! };
//! let policy = UnitPolicy::new(UnitConfig::default());
//! let mut rec = RingRecorder::unbounded();
//! let report = SimRun::trace(&trace, policy, SimConfig::new(SimDuration::from_secs(100)))
//!     .with_observer(&mut rec)
//!     .run();
//! assert_eq!(report.counts.success, 1);
//! ```

use crate::engine::{SimConfig, Simulator};
use crate::faults::FaultHook;
use crate::stats::SimReport;
use unit_core::policy::Policy;
use unit_core::types::{QuerySpec, Trace, UpdateSpec};
use unit_obs::Observer;

/// Where the run's workload comes from.
enum RunSource<'a> {
    /// A fully materialized trace (queries seeded up front).
    Trace(&'a Trace),
    /// A streaming run: updates and database size are fixed, queries are
    /// fed while the run progresses.
    Streaming {
        n_items: usize,
        updates: &'a [UpdateSpec],
    },
}

/// A configured-but-not-started simulation run. See the module docs.
#[must_use = "a SimRun does nothing until .run()/.run_streamed()/.build() is called"]
pub struct SimRun<'a, P: Policy> {
    source: RunSource<'a>,
    policy: P,
    cfg: SimConfig,
    faults: Option<Box<dyn FaultHook>>,
    obs: Option<&'a mut dyn Observer>,
}

impl<'a, P: Policy> SimRun<'a, P> {
    /// A run over a materialized trace — the counterpart of
    /// [`Simulator::new`].
    pub fn trace(trace: &'a Trace, policy: P, cfg: SimConfig) -> Self {
        SimRun {
            source: RunSource::Trace(trace),
            policy,
            cfg,
            faults: None,
            obs: None,
        }
    }

    /// A streaming run with no up-front query list — the counterpart of
    /// [`Simulator::new_streaming`]. Feed queries through
    /// [`SimRun::run_streamed`], or [`SimRun::build`] +
    /// [`Simulator::feed_query`] for manual control.
    pub fn streaming(n_items: usize, updates: &'a [UpdateSpec], policy: P, cfg: SimConfig) -> Self {
        SimRun {
            source: RunSource::Streaming { n_items, updates },
            policy,
            cfg,
            faults: None,
            obs: None,
        }
    }

    /// Install a fault-injection hook ([`FaultHook`]).
    pub fn with_faults(mut self, hook: Box<dyn FaultHook>) -> Self {
        self.faults = Some(hook);
        self
    }

    /// Install an observability sink (`unit-obs`). Observation is
    /// passive — the run's `report_digest` stays bit-identical.
    pub fn with_observer(mut self, observer: &'a mut dyn Observer) -> Self {
        self.obs = Some(observer);
        self
    }

    /// Assemble the engine handle without running it: for embedders that
    /// drive [`Simulator::step`] / [`Simulator::step_until`] /
    /// [`Simulator::feed_query`] themselves and harvest
    /// [`Simulator::finish`].
    ///
    /// # Panics
    /// Panics if the trace (or update streams) are malformed — the same
    /// contract as [`Simulator::new`].
    #[must_use]
    pub fn build(self) -> Simulator<'a, P> {
        let mut sim = match self.source {
            RunSource::Trace(trace) => Simulator::new(trace, self.policy, self.cfg),
            RunSource::Streaming { n_items, updates } => {
                Simulator::new_streaming(n_items, updates, self.policy, self.cfg)
            }
        };
        if let Some(hook) = self.faults {
            sim.set_faults(hook);
        }
        if let Some(obs) = self.obs {
            sim.set_observer(obs);
        }
        sim
    }

    /// Execute a materialized run to completion and return the report.
    ///
    /// # Panics
    /// Panics if the trace is malformed, or when called on a
    /// [`SimRun::streaming`] run (which has no queries to drain — use
    /// [`SimRun::run_streamed`]).
    pub fn run(self) -> SimReport {
        self.run_with_policy().0
    }

    /// Like [`SimRun::run`], but also hands back the policy's final
    /// state.
    ///
    /// # Panics
    /// Same contract as [`SimRun::run`].
    pub fn run_with_policy(self) -> (SimReport, P) {
        // lint: allow(panic) — documented contract: streaming runs take their
        // queries through run_streamed, not run
        assert!(
            matches!(self.source, RunSource::Trace(_)),
            "SimRun::run on a streaming run: use run_streamed(queries, chunk)"
        );
        self.build().run_with_policy()
    }

    /// Drive a streaming run to completion over `queries` (fed in trace
    /// order, at most `chunk` arrivals buffered ahead of the clock) and
    /// return the report. Bit-identical to the materialized pipeline for
    /// the same query sequence — see [`Simulator::run_streamed`].
    ///
    /// # Panics
    /// Panics on a malformed or out-of-order feed, or when called on a
    /// [`SimRun::trace`] run (whose arrivals were seeded up front).
    pub fn run_streamed<I>(self, queries: I, chunk: usize) -> SimReport
    where
        I: IntoIterator<Item = QuerySpec>,
    {
        self.run_streamed_with_policy(queries, chunk).0
    }

    /// Like [`SimRun::run_streamed`], but also hands back the policy.
    ///
    /// # Panics
    /// Same contract as [`SimRun::run_streamed`].
    pub fn run_streamed_with_policy<I>(self, queries: I, chunk: usize) -> (SimReport, P)
    where
        I: IntoIterator<Item = QuerySpec>,
    {
        // lint: allow(panic) — documented contract: materialized runs already
        // hold their queries, feeding more would double-count
        assert!(
            matches!(self.source, RunSource::Streaming { .. }),
            "SimRun::run_streamed on a materialized run: use run()"
        );
        self.build().run_streamed_with_policy(queries, chunk)
    }
}
