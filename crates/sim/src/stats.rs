//! Run statistics: everything the paper's figures are computed from.

use serde::{Deserialize, Serialize};
use unit_core::policy::ControlSignal;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{Outcome, QueryId};
use unit_core::usm::{OutcomeCounts, UsmWeights};

/// One per-query outcome, stamped with the virtual instant it was decided
/// (only recorded when [`crate::SimConfig::record_outcomes`] is on).
///
/// This is the unit of the cluster merge layer: per-shard logs are merged
/// by `(time, shard_id, seq)`, so `seq` — the record's position in its own
/// shard's log — is the deterministic tie-breaker for outcomes decided at
/// the same virtual instant on the same shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeRecord {
    /// Position of this record in its server's outcome log (0-based).
    pub seq: u64,
    /// Virtual instant the outcome was decided.
    pub time: SimTime,
    /// The query the outcome belongs to.
    pub query: QueryId,
    /// How the query ended.
    pub outcome: Outcome,
}

/// One periodic sample of system state (taken at control ticks when
/// timeline recording is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineSample {
    /// Sample instant.
    pub time: SimTime,
    /// Cumulative average USM up to this instant.
    pub usm: f64,
    /// Admitted, unfinished queries at this instant.
    pub ready_queries: usize,
    /// Remaining update-class work at this instant, seconds.
    pub update_backlog_secs: f64,
    /// CPU utilization over the tick interval just ended.
    pub utilization: f64,
}

/// Counters for the four control signals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalCounts {
    /// `LoosenAdmission` signals seen.
    pub loosen_admission: u64,
    /// `TightenAdmission` signals seen.
    pub tighten_admission: u64,
    /// `DegradeUpdates` signals seen.
    pub degrade_updates: u64,
    /// `UpgradeUpdates` signals seen.
    pub upgrade_updates: u64,
}

impl SignalCounts {
    /// Record one signal.
    pub fn record(&mut self, s: ControlSignal) {
        match s {
            ControlSignal::LoosenAdmission => self.loosen_admission += 1,
            ControlSignal::TightenAdmission => self.tighten_admission += 1,
            ControlSignal::DegradeUpdates => self.degrade_updates += 1,
            ControlSignal::UpgradeUpdates => self.upgrade_updates += 1,
        }
    }

    /// Total signals recorded.
    pub fn total(&self) -> u64 {
        self.loosen_admission + self.tighten_admission + self.degrade_updates + self.upgrade_updates
    }
}

/// Counters of fault-injection activity ([`crate::faults`]); all zero on a
/// fault-free run. Diagnostics only — like `events_processed`, excluded
/// from [`report_digest`] so an installed-but-empty fault schedule digests
/// identically to no schedule at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Update applications dropped (crash/degradation windows plus per-item
    /// drop faults).
    pub update_drops: u64,
    /// Update applications postponed by a delay fault.
    pub update_delays: u64,
    /// Background-load transactions injected by bursts.
    pub background_spawned: u64,
    /// Events (arrivals, deadlines, control ticks) deferred to the end of a
    /// crash window.
    pub deferred_events: u64,
    /// Lose-state crash recoveries performed (checkpoint restore + replay).
    /// Monotone across restores: survives the rollback of every other
    /// counter.
    #[serde(default)]
    pub recoveries: u64,
}

impl FaultCounts {
    /// True when the run saw no fault activity at all.
    pub fn is_zero(&self) -> bool {
        *self == FaultCounts::default()
    }
}

/// Complete result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Name of the policy that produced this run.
    pub policy: String,
    /// Preference weights the run was evaluated under.
    pub weights: UsmWeights,
    /// Final outcome counts over all submitted queries.
    pub counts: OutcomeCounts,
    /// Outcome counts per user-preference class (index = `pref_class`;
    /// empty when every query uses class 0). Multi-preference extension.
    pub class_counts: Vec<OutcomeCounts>,
    /// Per-item query access counts (Fig. 3(a)).
    pub query_accesses: Vec<u64>,
    /// Per-item versions emitted by the sources (Fig. 3(b,c) grey area).
    pub versions_arrived: Vec<u64>,
    /// Per-item update transactions applied (Fig. 3(b,c) black line).
    pub updates_applied: Vec<u64>,
    /// 2PL-HP evictions (queries/updates restarted by a higher-priority
    /// write).
    pub hp_aborts: u64,
    /// Query restarts following HP aborts.
    pub query_restarts: u64,
    /// CPU preemptions.
    pub preemptions: u64,
    /// On-demand refresh updates spawned (ODU).
    pub demand_refreshes: u64,
    /// Total busy CPU time.
    pub cpu_busy: SimDuration,
    /// Instant the last event was processed.
    pub end_time: SimTime,
    /// Configured workload horizon.
    pub horizon: SimDuration,
    /// Number of CPUs the server ran with.
    pub n_cpus: usize,
    /// Control signals emitted by the policy's ticks.
    pub signals: SignalCounts,
    /// Mean read-set freshness observed at query dispatch (diagnostics).
    pub mean_dispatch_freshness: f64,
    /// Optional timeline (enabled via `SimConfig::record_timeline`).
    pub timeline: Vec<TimelineSample>,
    /// Total discrete events the engine processed (perf instrumentation;
    /// excluded from golden digests so it can evolve freely).
    pub events_processed: u64,
    /// Per-query outcome log (only filled when
    /// [`crate::SimConfig::record_outcomes`] is on; excluded from
    /// [`report_digest`] so digests match between logged and unlogged runs).
    #[serde(default)]
    pub outcome_records: Vec<OutcomeRecord>,
    /// Fault-injection activity counters (zero on fault-free runs;
    /// excluded from [`report_digest`] — fault *effects* show up in the
    /// behavioural fields, these are diagnostics).
    #[serde(default)]
    pub faults: FaultCounts,
}

impl SimReport {
    /// Average USM under the run's weights (Eq. 5).
    pub fn average_usm(&self) -> f64 {
        self.counts.average_usm(&self.weights)
    }

    /// Average USM re-priced under different weights.
    ///
    /// Useful for the weight-insensitive baselines (IMU/ODU/QMF behave
    /// identically under every weighting, so one run can be re-priced);
    /// UNIT must be re-*run* since its controller reacts to the weights.
    pub fn usm_under(&self, weights: &UsmWeights) -> f64 {
        self.counts.average_usm(weights)
    }

    /// Success ratio (naive USM).
    pub fn success_ratio(&self) -> f64 {
        self.counts.success_ratio()
    }

    /// Outcome counts for one preference class (zeros for unseen classes).
    pub fn class_counts(&self, class: u32) -> OutcomeCounts {
        self.class_counts
            .get(class as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Average USM where each class is priced with its own weights
    /// (multi-preference extension): total priced satisfaction over all
    /// submitted queries. Classes beyond `class_weights` use `default`.
    pub fn average_usm_multiclass(
        &self,
        default: &UsmWeights,
        class_weights: &[UsmWeights],
    ) -> f64 {
        let total = self.counts.total();
        if total == 0 {
            return 0.0;
        }
        if self.class_counts.is_empty() {
            return self.counts.average_usm(default);
        }
        let sum: f64 = self
            .class_counts
            .iter()
            .enumerate()
            .map(|(i, c)| c.total_usm(class_weights.get(i).unwrap_or(default)))
            .sum();
        sum / total as f64
    }

    /// The four outcome ratios `(R_s, R_r, R_fm, R_fs)` (Fig. 6).
    pub fn ratios(&self) -> [f64; 4] {
        self.counts.ratios()
    }

    /// CPU utilization over the horizon (aggregated across CPUs).
    pub fn utilization(&self) -> f64 {
        if self.horizon.is_zero() {
            0.0
        } else {
            self.cpu_busy.as_secs_f64() / (self.horizon.as_secs_f64() * self.n_cpus.max(1) as f64)
        }
    }

    /// Fraction of emitted versions that were applied (update shedding view).
    pub fn applied_ratio(&self) -> f64 {
        let arrived: u64 = self.versions_arrived.iter().sum();
        if arrived == 0 {
            return 1.0;
        }
        let applied: u64 = self.updates_applied.iter().sum();
        applied as f64 / arrived as f64
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let [rs, rr, rfm, rfs] = self.ratios();
        format!(
            "{:<6} USM={:+.4}  Rs={:.3} Rr={:.3} Rfm={:.3} Rfs={:.3}  applied={:.1}%  util={:.0}%",
            self.policy,
            self.average_usm(),
            rs,
            rr,
            rfm,
            rfs,
            100.0 * self.applied_ratio(),
            100.0 * self.utilization()
        )
    }
}

/// FNV-1a over a little-endian byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Bit-exact digest of a [`SimReport`]'s observable behaviour.
///
/// Everything user-visible goes in, in declaration order; the
/// instrumentation fields stay out so they can evolve freely:
/// `events_processed` (perf counter), `outcome_records` (opt-in log —
/// a logged run must digest identically to an unlogged one), and `faults`
/// (fault-activity diagnostics — fault *effects* land in the behavioural
/// fields, and an empty schedule must digest identically to none). The golden
/// snapshot suite and the cluster differential tests share this function,
/// so "cluster(1 shard) == single server" means the whole report matches
/// bit-for-bit, not just the USM.
pub fn report_digest(r: &SimReport) -> u64 {
    let mut h = Fnv::new();
    h.bytes(r.policy.as_bytes());
    for w in [
        r.weights.gain,
        r.weights.c_r,
        r.weights.c_fm,
        r.weights.c_fs,
    ] {
        h.f64(w);
    }
    for c in [
        r.counts.success,
        r.counts.rejected,
        r.counts.deadline_miss,
        r.counts.data_stale,
    ] {
        h.u64(c);
    }
    h.u64(r.class_counts.len() as u64);
    for c in &r.class_counts {
        for v in [c.success, c.rejected, c.deadline_miss, c.data_stale] {
            h.u64(v);
        }
    }
    for hist in [&r.query_accesses, &r.versions_arrived, &r.updates_applied] {
        h.u64(hist.len() as u64);
        for &v in hist {
            h.u64(v);
        }
    }
    h.u64(r.hp_aborts);
    h.u64(r.query_restarts);
    h.u64(r.preemptions);
    h.u64(r.demand_refreshes);
    h.u64(r.cpu_busy.0);
    h.u64(r.end_time.0);
    h.u64(r.horizon.0);
    h.u64(r.n_cpus as u64);
    for s in [
        r.signals.loosen_admission,
        r.signals.tighten_admission,
        r.signals.degrade_updates,
        r.signals.upgrade_updates,
    ] {
        h.u64(s);
    }
    h.f64(r.mean_dispatch_freshness);
    h.u64(r.timeline.len() as u64);
    for s in &r.timeline {
        h.u64(s.time.0);
        h.f64(s.usm);
        h.u64(s.ready_queries as u64);
        h.f64(s.update_backlog_secs);
        h.f64(s.utilization);
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::types::Outcome;

    fn report() -> SimReport {
        let mut counts = OutcomeCounts::default();
        for _ in 0..6 {
            counts.record(Outcome::Success);
        }
        for _ in 0..2 {
            counts.record(Outcome::Rejected);
        }
        counts.record(Outcome::DeadlineMiss);
        counts.record(Outcome::DataStale);
        SimReport {
            policy: "TEST".into(),
            weights: UsmWeights::naive(),
            counts,
            class_counts: Vec::new(),
            query_accesses: vec![3, 0],
            versions_arrived: vec![10, 10],
            updates_applied: vec![5, 0],
            hp_aborts: 1,
            query_restarts: 1,
            preemptions: 2,
            demand_refreshes: 0,
            cpu_busy: SimDuration::from_secs(50),
            end_time: SimTime::from_secs(110),
            horizon: SimDuration::from_secs(100),
            n_cpus: 1,
            signals: SignalCounts::default(),
            mean_dispatch_freshness: 0.95,
            timeline: Vec::new(),
            events_processed: 0,
            outcome_records: Vec::new(),
            faults: FaultCounts::default(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.average_usm() - 0.6).abs() < 1e-12);
        assert!((r.success_ratio() - 0.6).abs() < 1e-12);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
        assert!((r.applied_ratio() - 0.25).abs() < 1e-12);
        let sum: f64 = r.ratios().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repricing_under_other_weights() {
        let r = report();
        let w = UsmWeights::penalties(1.0, 1.0, 1.0);
        // (6 - 2 - 1 - 1) / 10 = 0.2
        assert!((r.usm_under(&w) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn signal_counts_accumulate() {
        let mut s = SignalCounts::default();
        s.record(ControlSignal::LoosenAdmission);
        s.record(ControlSignal::DegradeUpdates);
        s.record(ControlSignal::DegradeUpdates);
        s.record(ControlSignal::TightenAdmission);
        s.record(ControlSignal::UpgradeUpdates);
        assert_eq!(s.loosen_admission, 1);
        assert_eq!(s.degrade_updates, 2);
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn digest_ignores_instrumentation_fields() {
        let base = report();
        let mut instrumented = base.clone();
        instrumented.events_processed = 99;
        instrumented.outcome_records.push(OutcomeRecord {
            seq: 0,
            time: SimTime::from_secs(1),
            query: QueryId(7),
            outcome: Outcome::Success,
        });
        instrumented.faults = FaultCounts {
            update_drops: 3,
            update_delays: 2,
            background_spawned: 1,
            deferred_events: 4,
            recoveries: 1,
        };
        assert!(!instrumented.faults.is_zero());
        assert_eq!(report_digest(&base), report_digest(&instrumented));
    }

    #[test]
    fn digest_sees_behavioural_fields() {
        let base = report();
        let mut changed = base.clone();
        changed.counts.record(Outcome::Success);
        assert_ne!(report_digest(&base), report_digest(&changed));
        let mut changed = base.clone();
        changed.policy.push('X');
        assert_ne!(report_digest(&base), report_digest(&changed));
    }

    #[test]
    fn summary_contains_key_fields() {
        let s = report().summary();
        assert!(s.contains("TEST"));
        assert!(s.contains("USM="));
        assert!(s.contains("Rs=0.600"));
    }
}
