//! Runtime transaction state.
//!
//! The engine turns trace specs into live transactions: a user query becomes
//! a [`Txn`] at admission; an applied version (or an on-demand refresh)
//! becomes an update-class [`Txn`]. Transactions move through
//! [`TxnState::Ready`] → [`TxnState::Running`] (possibly bouncing back on
//! preemption, or to [`TxnState::Blocked`] on a lock conflict) until they
//! commit or abort.

use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, TxnClass};

/// Engine-local transaction identifier (index into the transaction arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl TxnId {
    /// The id as an arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Dispatchable: waiting for the CPU in the dual-priority ready queue.
    Ready,
    /// Currently executing on the (single) CPU.
    Running,
    /// Waiting for a lock held by a higher-priority transaction.
    Blocked,
    /// Committed or aborted; terminal.
    Finished,
}

/// What kind of work a transaction carries.
#[derive(Debug, Clone)]
pub enum TxnKind {
    /// A user query; `spec_idx` points into the trace's query list.
    Query {
        /// Index of the spec in `Trace::queries`.
        spec_idx: usize,
        /// Strict-minimum freshness of the read set, captured when the read
        /// locks were acquired. `None` until first dispatch.
        freshness_at_dispatch: Option<f64>,
        /// Times this query was aborted-and-restarted by 2PL-HP.
        restarts: u32,
    },
    /// An update transaction installing the newest version of one item.
    Update {
        /// The item being refreshed.
        item: DataId,
        /// True when this update was issued on demand for a waiting query
        /// (ODU) rather than by a periodic stream.
        on_demand: bool,
    },
    /// Injected background load (fault-schedule burst): update-class CPU
    /// demand that takes no locks, refreshes no item, and records no
    /// outcome. Exists so load bursts steal CPU from queries exactly the
    /// way real maintenance traffic does under the dual-priority
    /// discipline.
    Background,
}

/// A live transaction.
#[derive(Debug, Clone)]
pub struct Txn {
    /// Engine-local identifier.
    pub id: TxnId,
    /// Scheduling class (updates outrank queries).
    pub class: TxnClass,
    /// EDF key: the query's absolute deadline, or for updates the arrival
    /// time plus the stream period (temporal-validity deadline; on-demand
    /// updates use their creation instant so they run before periodic ones).
    pub edf_deadline: SimTime,
    /// Total service demand.
    pub exec_time: SimDuration,
    /// Remaining service demand (decreases across preemptions).
    pub remaining: SimDuration,
    /// Lifecycle state.
    pub state: TxnState,
    /// Whether the transaction currently holds its locks.
    pub holds_locks: bool,
    /// The item this transaction is blocked on, when [`TxnState::Blocked`].
    pub blocked_on: Option<DataId>,
    /// Payload.
    pub kind: TxnKind,
}

impl Txn {
    /// Priority key for the dual-priority EDF discipline: update class
    /// first, then earlier deadline, then lower id (deterministic ties).
    pub fn priority_key(&self) -> (TxnClass, SimTime, TxnId) {
        (self.class, self.edf_deadline, self.id)
    }

    /// True when `self` has strictly higher dispatch priority than `other`.
    pub fn outranks(&self, other: &Txn) -> bool {
        self.priority_key() < other.priority_key()
    }

    /// True for query-class transactions.
    pub fn is_query(&self) -> bool {
        matches!(self.kind, TxnKind::Query { .. })
    }

    /// The updated item for update-class transactions.
    pub fn update_item(&self) -> Option<DataId> {
        match self.kind {
            TxnKind::Update { item, .. } => Some(item),
            TxnKind::Query { .. } | TxnKind::Background => None,
        }
    }

    /// Reset to a full restart after a 2PL-HP abort: full service demand,
    /// no locks, back to the ready queue.
    pub fn restart(&mut self) {
        self.remaining = self.exec_time;
        self.holds_locks = false;
        self.blocked_on = None;
        self.state = TxnState::Ready;
        if let TxnKind::Query {
            restarts,
            freshness_at_dispatch,
            ..
        } = &mut self.kind
        {
            *restarts += 1;
            *freshness_at_dispatch = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(id: u64, class: TxnClass, deadline_s: u64) -> Txn {
        Txn {
            id: TxnId(id),
            class,
            edf_deadline: SimTime::from_secs(deadline_s),
            exec_time: SimDuration::from_secs(5),
            remaining: SimDuration::from_secs(5),
            state: TxnState::Ready,
            holds_locks: false,
            blocked_on: None,
            kind: TxnKind::Query {
                spec_idx: 0,
                freshness_at_dispatch: None,
                restarts: 0,
            },
        }
    }

    #[test]
    fn updates_outrank_queries_regardless_of_deadline() {
        let mut u = txn(10, TxnClass::Update, 1000);
        u.kind = TxnKind::Update {
            item: DataId(0),
            on_demand: false,
        };
        let q = txn(1, TxnClass::Query, 1);
        assert!(u.outranks(&q));
        assert!(!q.outranks(&u));
    }

    #[test]
    fn edf_within_class_then_id_tiebreak() {
        let a = txn(1, TxnClass::Query, 10);
        let b = txn(2, TxnClass::Query, 20);
        assert!(a.outranks(&b));
        let c = txn(3, TxnClass::Query, 10);
        assert!(a.outranks(&c), "equal deadlines break ties by id");
    }

    #[test]
    fn restart_resets_service_and_counts() {
        let mut t = txn(1, TxnClass::Query, 10);
        t.remaining = SimDuration::from_secs(1);
        t.holds_locks = true;
        t.state = TxnState::Running;
        if let TxnKind::Query {
            freshness_at_dispatch,
            ..
        } = &mut t.kind
        {
            *freshness_at_dispatch = Some(0.5);
        }
        t.restart();
        assert_eq!(t.remaining, t.exec_time);
        assert!(!t.holds_locks);
        assert_eq!(t.state, TxnState::Ready);
        match t.kind {
            TxnKind::Query {
                restarts,
                freshness_at_dispatch,
                ..
            } => {
                assert_eq!(restarts, 1);
                assert_eq!(freshness_at_dispatch, None);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn kind_accessors() {
        let q = txn(1, TxnClass::Query, 10);
        assert!(q.is_query());
        assert_eq!(q.update_item(), None);
        let mut u = txn(2, TxnClass::Update, 10);
        u.class = TxnClass::Update;
        u.kind = TxnKind::Update {
            item: DataId(7),
            on_demand: true,
        };
        assert!(!u.is_query());
        assert_eq!(u.update_item(), Some(DataId(7)));
    }
}
