//! Debug-mode runtime invariant checks for the simulator (feature
//! `validate`).
//!
//! The engine keeps two incremental accounting structures on its hot path:
//! the Fenwick *work index* (remaining admitted-query work per deadline
//! coordinate, behind every `work_ahead_of` probe) and the [`OutcomeCounts`]
//! tallies behind the USM report. Both are shadows of state that can be
//! recomputed naively; these checkers do exactly that and compare. The
//! engine invokes them at every control tick and at end of run — see the
//! conventions in [`unit_core::validate`].

use unit_core::fenwick::Fenwick;
use unit_core::time::SimTime;
use unit_core::types::Outcome;
use unit_core::usm::{OutcomeCounts, UsmWeights};

/// Recount the admitted-query work per deadline coordinate the naive O(N)
/// way and compare every Fenwick slot against it.
///
/// `admitted` yields `(deadline, remaining ticks)` for every admitted,
/// unfinished query; `deadline_coords` is the sorted, deduplicated
/// coordinate space the index was built over.
pub fn check_work_index(
    work_index: &Fenwick<u64>,
    deadline_coords: &[SimTime],
    admitted: impl IntoIterator<Item = (SimTime, u64)>,
) -> Result<(), String> {
    if work_index.len() != deadline_coords.len() {
        return Err(format!(
            "work index covers {} coordinates, trace has {}",
            work_index.len(),
            deadline_coords.len()
        ));
    }
    let mut naive = vec![0u64; deadline_coords.len()];
    for (deadline, remaining) in admitted {
        let coord = deadline_coords
            .binary_search(&deadline)
            .map_err(|_| format!("admitted deadline {deadline:?} is not a trace coordinate"))?;
        naive[coord] += remaining;
    }
    for (i, &expect) in naive.iter().enumerate() {
        // Per-slot read: adjacent prefix sums differ by exactly this slot.
        let got = work_index.prefix_sum(i + 1) - work_index.prefix_sum(i);
        if got != expect {
            return Err(format!(
                "work index slot {i} (deadline {:?}): index holds {got} ticks, recount {expect}",
                deadline_coords[i]
            ));
        }
    }
    Ok(())
}

/// Recount the outcome tallies from the raw per-query log and re-derive the
/// USM identity `G_s·N_s − C_r·N_r − C_fm·N_fm − C_fs·N_fs` (Eq. 4) as a
/// per-outcome satisfaction sum, comparing both against the engine's
/// incremental [`OutcomeCounts`].
pub fn check_usm_identity(
    counts: &OutcomeCounts,
    outcomes: &[Outcome],
    weights: &UsmWeights,
) -> Result<(), String> {
    let mut recount = OutcomeCounts::default();
    for &o in outcomes {
        recount.record(o);
    }
    if recount != *counts {
        return Err(format!(
            "outcome tallies diverge: recounted {recount:?}, engine kept {counts:?}"
        ));
    }
    let naive: f64 = outcomes.iter().map(|&o| weights.satisfaction(o)).sum();
    let fast = counts.total_usm(weights);
    let tol = 1e-9 * naive.abs().max(1.0);
    if (naive - fast).abs() > tol {
        return Err(format!(
            "USM identity: per-outcome satisfaction sum {naive}, closed form {fast}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::time::SimDuration;

    fn coords(secs: &[u64]) -> Vec<SimTime> {
        secs.iter().map(|&s| SimTime::from_secs(s)).collect()
    }

    #[test]
    fn consistent_work_index_passes() {
        let coords = coords(&[10, 20, 30]);
        let mut index = Fenwick::new(3);
        index.add(0, 5);
        index.add(2, 7);
        let admitted = [
            (SimTime::from_secs(10), 5u64),
            (SimTime::from_secs(30), 3),
            (SimTime::from_secs(30), 4),
        ];
        assert_eq!(check_work_index(&index, &coords, admitted), Ok(()));
    }

    #[test]
    fn corrupted_fenwick_index_trips_the_checker() {
        let coords = coords(&[10, 20, 30]);
        let mut index = Fenwick::new(3);
        index.add(0, 5);
        index.add(2, 7);
        // Deliberately corrupt one slot, as an unbalanced add/sub pair would.
        index.add(1, 1);
        let admitted = [(SimTime::from_secs(10), 5u64), (SimTime::from_secs(30), 7)];
        let err = check_work_index(&index, &coords, admitted).unwrap_err();
        assert!(err.contains("slot 1"), "{err}");
    }

    #[test]
    fn unknown_deadlines_are_rejected() {
        let coords = coords(&[10, 20]);
        let index = Fenwick::new(2);
        let err = check_work_index(&index, &coords, [(SimTime::from_secs(15), 1u64)]).unwrap_err();
        assert!(err.contains("not a trace coordinate"), "{err}");
    }

    #[test]
    fn usm_identity_holds_for_matching_log_and_counts() {
        let outcomes = [
            Outcome::Success,
            Outcome::Success,
            Outcome::Rejected,
            Outcome::DeadlineMiss,
            Outcome::DataStale,
        ];
        let mut counts = OutcomeCounts::default();
        for &o in &outcomes {
            counts.record(o);
        }
        let weights = UsmWeights::high_high_cfs();
        assert_eq!(check_usm_identity(&counts, &outcomes, &weights), Ok(()));
    }

    #[test]
    fn diverging_tallies_trip_the_checker() {
        let outcomes = [Outcome::Success, Outcome::Rejected];
        let mut counts = OutcomeCounts::default();
        for &o in &outcomes {
            counts.record(o);
        }
        counts.success += 1; // a double-counted outcome
        let weights = UsmWeights::naive();
        let err = check_usm_identity(&counts, &outcomes, &weights).unwrap_err();
        assert!(err.contains("diverge"), "{err}");
    }

    #[test]
    fn work_index_length_mismatch_is_reported() {
        let index = Fenwick::new(2);
        let c = coords(&[10]);
        let err = check_work_index(&index, &c, []).unwrap_err();
        assert!(err.contains("coordinates"), "{err}");
        let _ = SimDuration::ZERO; // keep the import exercised
    }
}
