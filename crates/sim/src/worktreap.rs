//! An order-statistic treap over admitted-query deadlines: the dynamic
//! (streaming) counterpart of the materialized engine's Fenwick work index.
//!
//! Streaming runs discover deadlines only as queries are fed, so the
//! Fenwick's precomputed coordinate space is unavailable. The original
//! dynamic index was a `BTreeMap<SimTime, u64>` whose prefix-sum probes
//! scanned every entry at or below the probe point — O(A) per probe in the
//! admitted-deadline count, which turns quadratic exactly on the dense
//! scaled-up traces the streaming path exists for. This treap keeps one
//! node per distinct deadline with a subtree work sum, so `add`, `sub`,
//! and [`WorkTreap::at_or_before`] are all O(log A) expected.
//!
//! Node priorities are a pure (splitmix-style) hash of the deadline, so
//! the tree shape is a deterministic function of the key *set* — no RNG
//! state, and rebuilding the same set in any order yields the same tree.
//! Shape only ever affects speed: probe answers are exact integer tick
//! sums either way, which is what keeps streamed runs bit-identical to
//! materialized ones (`crates/sim/tests/streaming.rs` pins that).

use unit_core::time::SimTime;

/// Sentinel child index: no node.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: SimTime,
    prio: u64,
    /// Remaining work (ticks) at exactly `key`.
    work: u64,
    /// Sum of `work` over this node's subtree.
    subtree: u64,
    left: u32,
    right: u32,
}

/// Treap keyed by deadline, augmented with subtree work sums. Slots are
/// slab-allocated and recycled, so steady-state operation performs no
/// allocation once the tree has reached its peak size.
#[derive(Debug, Default)]
pub struct WorkTreap {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
}

/// Deterministic node priority: a splitmix64 finalizer over the key, so
/// equal key sets always build equal trees.
fn prio_of(key: SimTime) -> u64 {
    let mut z = key.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl WorkTreap {
    /// An empty index.
    pub fn new() -> Self {
        WorkTreap {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
        }
    }

    /// Total remaining work over every deadline, in ticks. O(1).
    pub fn total(&self) -> u64 {
        self.subtree(self.root)
    }

    /// Remaining work with deadline `<= key`, in ticks. O(log A) expected.
    pub fn at_or_before(&self, key: SimTime) -> u64 {
        let mut acc = 0u64;
        let mut t = self.root;
        while t != NIL {
            let n = &self.nodes[t as usize];
            if n.key <= key {
                acc += n.work + self.subtree(n.left);
                t = n.right;
            } else {
                t = n.left;
            }
        }
        acc
    }

    /// Add `ticks` of work at `key`. O(log A) expected.
    pub fn add(&mut self, key: SimTime, ticks: u64) {
        if ticks == 0 {
            return;
        }
        self.root = self.insert(self.root, key, ticks);
    }

    /// Remove `ticks` of work at `key`; the node is freed when its work
    /// reaches zero.
    ///
    /// # Panics
    /// Panics when `key` holds less than `ticks` of work — add/sub are
    /// paired by the engine's admitted-index maintenance, so an underflow
    /// is an engine bug. O(log A) expected.
    pub fn sub(&mut self, key: SimTime, ticks: u64) {
        if ticks == 0 {
            return;
        }
        self.root = self.remove(self.root, key, ticks);
    }

    /// Every `(deadline, work)` entry in key order — the validation
    /// cross-check's view of the tree. O(A).
    pub fn entries(&self) -> Vec<(SimTime, u64)> {
        let mut out = Vec::new();
        // Iterative in-order walk; depth is O(log A) expected.
        let mut stack: Vec<u32> = Vec::new();
        let mut t = self.root;
        while t != NIL || !stack.is_empty() {
            while t != NIL {
                stack.push(t);
                t = self.nodes[t as usize].left;
            }
            // lint: allow(panic) — loop guard ensures the stack is non-empty
            let top = stack.pop().expect("non-empty stack");
            let n = &self.nodes[top as usize];
            out.push((n.key, n.work));
            t = n.right;
        }
        out
    }

    fn subtree(&self, t: u32) -> u64 {
        if t == NIL {
            0
        } else {
            self.nodes[t as usize].subtree
        }
    }

    fn pull(&mut self, t: u32) {
        let (l, r) = {
            let n = &self.nodes[t as usize];
            (n.left, n.right)
        };
        let sum = self.nodes[t as usize].work + self.subtree(l) + self.subtree(r);
        self.nodes[t as usize].subtree = sum;
    }

    fn alloc(&mut self, key: SimTime, ticks: u64) -> u32 {
        let node = Node {
            key,
            prio: prio_of(key),
            work: ticks,
            subtree: ticks,
            left: NIL,
            right: NIL,
        };
        match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = node;
                slot
            }
            None => {
                // lint: allow(panic) — 4B distinct live deadlines is beyond any trace scale
                let slot = u32::try_from(self.nodes.len()).expect("treap exceeds u32 slots");
                self.nodes.push(node);
                slot
            }
        }
    }

    /// Rotate the left child above `t`; both pulled. Returns the new root.
    fn rotate_right(&mut self, t: u32) -> u32 {
        let l = self.nodes[t as usize].left;
        self.nodes[t as usize].left = self.nodes[l as usize].right;
        self.nodes[l as usize].right = t;
        self.pull(t);
        self.pull(l);
        l
    }

    /// Rotate the right child above `t`; both pulled. Returns the new root.
    fn rotate_left(&mut self, t: u32) -> u32 {
        let r = self.nodes[t as usize].right;
        self.nodes[t as usize].right = self.nodes[r as usize].left;
        self.nodes[r as usize].left = t;
        self.pull(t);
        self.pull(r);
        r
    }

    /// Insert `ticks` at `key` under `t` (min-heap on priority), returning
    /// the subtree's new root.
    fn insert(&mut self, t: u32, key: SimTime, ticks: u64) -> u32 {
        if t == NIL {
            return self.alloc(key, ticks);
        }
        let node_key = self.nodes[t as usize].key;
        if key == node_key {
            self.nodes[t as usize].work += ticks;
            self.pull(t);
            t
        } else if key < node_key {
            let child = self.insert(self.nodes[t as usize].left, key, ticks);
            self.nodes[t as usize].left = child;
            if self.nodes[child as usize].prio < self.nodes[t as usize].prio {
                self.rotate_right(t)
            } else {
                self.pull(t);
                t
            }
        } else {
            let child = self.insert(self.nodes[t as usize].right, key, ticks);
            self.nodes[t as usize].right = child;
            if self.nodes[child as usize].prio < self.nodes[t as usize].prio {
                self.rotate_left(t)
            } else {
                self.pull(t);
                t
            }
        }
    }

    /// Subtract `ticks` at `key` under `t`, deleting the node at zero,
    /// returning the subtree's new root.
    fn remove(&mut self, t: u32, key: SimTime, ticks: u64) -> u32 {
        // lint: allow(panic) — add/sub are paired; a missing key is an engine bug
        assert!(t != NIL, "deadline has no admitted work");
        let node_key = self.nodes[t as usize].key;
        if key == node_key {
            let work = self.nodes[t as usize].work;
            let left = work
                .checked_sub(ticks)
                // lint: allow(panic) — never removes more work than was added
                .expect("work index underflow");
            if left == 0 {
                let (l, r) = {
                    let n = &self.nodes[t as usize];
                    (n.left, n.right)
                };
                self.free.push(t);
                return self.merge(l, r);
            }
            self.nodes[t as usize].work = left;
            self.pull(t);
            t
        } else if key < node_key {
            let child = self.remove(self.nodes[t as usize].left, key, ticks);
            self.nodes[t as usize].left = child;
            self.pull(t);
            t
        } else {
            let child = self.remove(self.nodes[t as usize].right, key, ticks);
            self.nodes[t as usize].right = child;
            self.pull(t);
            t
        }
    }

    /// Merge two subtrees where every key in `l` precedes every key in `r`.
    fn merge(&mut self, l: u32, r: u32) -> u32 {
        if l == NIL {
            return r;
        }
        if r == NIL {
            return l;
        }
        if self.nodes[l as usize].prio < self.nodes[r as usize].prio {
            let m = self.merge(self.nodes[l as usize].right, r);
            self.nodes[l as usize].right = m;
            self.pull(l);
            l
        } else {
            let m = self.merge(l, self.nodes[r as usize].left);
            self.nodes[r as usize].left = m;
            self.pull(r);
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn t(v: u64) -> SimTime {
        SimTime(v)
    }

    /// Reference model: the BTreeMap index the treap replaced.
    #[derive(Default)]
    struct Model {
        map: BTreeMap<SimTime, u64>,
    }

    impl Model {
        fn add(&mut self, key: SimTime, ticks: u64) {
            if ticks > 0 {
                *self.map.entry(key).or_insert(0) += ticks;
            }
        }
        fn sub(&mut self, key: SimTime, ticks: u64) {
            if ticks == 0 {
                return;
            }
            let slot = self.map.get_mut(&key).expect("model has work");
            *slot -= ticks;
            if *slot == 0 {
                self.map.remove(&key);
            }
        }
        fn total(&self) -> u64 {
            self.map.values().sum()
        }
        fn at_or_before(&self, key: SimTime) -> u64 {
            self.map.range(..=key).map(|(_, &w)| w).sum()
        }
    }

    #[test]
    fn empty_answers_zero() {
        let w = WorkTreap::new();
        assert_eq!(w.total(), 0);
        assert_eq!(w.at_or_before(t(u64::MAX)), 0);
        assert!(w.entries().is_empty());
    }

    #[test]
    fn single_key_accumulates_and_drains() {
        let mut w = WorkTreap::new();
        w.add(t(50), 7);
        w.add(t(50), 3);
        assert_eq!(w.total(), 10);
        assert_eq!(w.at_or_before(t(49)), 0);
        assert_eq!(w.at_or_before(t(50)), 10);
        w.sub(t(50), 10);
        assert_eq!(w.total(), 0);
        assert!(w.entries().is_empty());
    }

    #[test]
    fn zero_tick_operations_are_noops() {
        let mut w = WorkTreap::new();
        w.add(t(5), 0);
        w.sub(t(5), 0); // would panic on a missing key were it not a no-op
        assert_eq!(w.total(), 0);
    }

    #[test]
    #[should_panic(expected = "work index underflow")]
    fn oversubtraction_panics() {
        let mut w = WorkTreap::new();
        w.add(t(5), 2);
        w.sub(t(5), 3);
    }

    #[test]
    fn prefix_sums_split_correctly() {
        let mut w = WorkTreap::new();
        for (k, v) in [(10u64, 1u64), (20, 2), (30, 4), (40, 8)] {
            w.add(t(k), v);
        }
        assert_eq!(w.at_or_before(t(9)), 0);
        assert_eq!(w.at_or_before(t(10)), 1);
        assert_eq!(w.at_or_before(t(25)), 3);
        assert_eq!(w.at_or_before(t(30)), 7);
        assert_eq!(w.at_or_before(t(1000)), 15);
    }

    #[test]
    fn shape_is_insertion_order_invariant() {
        // Same key set fed in opposite orders must produce identical
        // entries AND identical slab layouts are not required — but the
        // deterministic priorities make probe paths equal; pin the
        // observable contract (entries + every prefix).
        let keys: Vec<u64> = (0..200).map(|i| (i * 37) % 1000).collect();
        let mut a = WorkTreap::new();
        let mut b = WorkTreap::new();
        for &k in &keys {
            a.add(t(k), k + 1);
        }
        for &k in keys.iter().rev() {
            b.add(t(k), k + 1);
        }
        assert_eq!(a.entries(), b.entries());
        for probe in 0..1000 {
            assert_eq!(a.at_or_before(t(probe)), b.at_or_before(t(probe)));
        }
    }

    #[test]
    fn differential_against_btreemap_model() {
        // Deterministic LCG exercise: interleaved adds, paired subs, and
        // prefix probes over a churning key population, with slot reuse.
        let mut lcg = 0x2545_F491_4F6C_DD1Du64;
        let mut step = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut w = WorkTreap::new();
        let mut m = Model::default();
        let mut live: Vec<(SimTime, u64)> = Vec::new();
        for round in 0..20_000u64 {
            match step() % 3 {
                0 | 1 => {
                    // Cluster keys so duplicates and adjacent probes occur.
                    let key = t(step() % 512);
                    let ticks = step() % 9; // zero included
                    w.add(key, ticks);
                    m.add(key, ticks);
                    if ticks > 0 {
                        live.push((key, ticks));
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let i = (step() as usize) % live.len();
                        let (key, ticks) = live.swap_remove(i);
                        w.sub(key, ticks);
                        m.sub(key, ticks);
                    }
                }
            }
            if round % 64 == 0 {
                let probe = t(step() % 600);
                assert_eq!(
                    w.at_or_before(probe),
                    m.at_or_before(probe),
                    "round {round}"
                );
                assert_eq!(w.total(), m.total(), "round {round}");
            }
        }
        // Drain completely: the slab must recycle down to an empty tree.
        for (key, ticks) in live {
            w.sub(key, ticks);
            m.sub(key, ticks);
        }
        assert_eq!(w.total(), m.total());
        assert_eq!(
            w.entries(),
            m.map.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        );
    }
}
