//! The [`unit_sim::SimRun`] builder is a pure re-plumbing of the older
//! `Simulator::new(..).with_faults(..).with_observer(..)` combinator
//! chain: every assembly path — plain, fault-hooked, observed, and
//! streaming — must produce reports bit-identical to what the deprecated
//! wrappers build. This is the witness that lets the wrappers be deleted
//! after their deprecation cycle without any digest moving.

#![allow(deprecated)] // the whole point: builder vs deprecated wrappers

use unit_core::config::UnitConfig;
use unit_core::time::SimDuration;
use unit_core::time::SimTime;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_obs::RingRecorder;
use unit_sim::faults::{BackgroundLoad, FaultHook, HealthState, UpdateFault};
use unit_sim::{report_digest, SimConfig, SimRun, Simulator};
use unit_workload::{
    QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume,
};

const SCALE: u64 = 16;
const SEED: u64 = 0x5EED_0010;

fn bundle() -> TraceBundle {
    let qcfg = QueryTraceConfig::default().scaled_down(SCALE);
    let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
        .with_total((UpdateVolume::Med.total_updates() / SCALE).max(1));
    TraceBundle::generate(&qcfg, &ucfg)
}

fn sim_cfg(horizon: SimDuration) -> SimConfig {
    SimConfig::new(horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10))
}

fn make_policy() -> UnitPolicy {
    UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(SEED))
}

/// A deterministic fault hook: one mid-run degraded window plus a load
/// burst at its start.
#[derive(Clone)]
struct SlowWindow {
    from: SimTime,
    until: SimTime,
}

impl FaultHook for SlowWindow {
    fn transition_times(&self) -> Vec<SimTime> {
        vec![self.from, self.until]
    }

    fn health(&self, now: SimTime) -> HealthState {
        if now >= self.from && now < self.until {
            HealthState::Degraded { until: self.until }
        } else {
            HealthState::Up
        }
    }

    fn update_fault(&self, _item: unit_core::types::DataId, _now: SimTime) -> UpdateFault {
        UpdateFault::Apply
    }

    fn load_at(&self, now: SimTime) -> Vec<BackgroundLoad> {
        if now == self.from {
            vec![BackgroundLoad {
                exec: SimDuration::from_secs(2),
            }]
        } else {
            Vec::new()
        }
    }
}

fn hook(horizon: SimDuration) -> Box<SlowWindow> {
    Box::new(SlowWindow {
        from: SimTime(horizon.0 / 4),
        until: SimTime(horizon.0 / 2),
    })
}

#[test]
fn plain_builder_matches_wrapper_chain() {
    let bundle = bundle();
    let cfg = sim_cfg(bundle.horizon);
    let built = SimRun::trace(&bundle.trace, make_policy(), cfg).run();
    let wrapped = Simulator::new(&bundle.trace, make_policy(), cfg).run();
    assert_eq!(report_digest(&built), report_digest(&wrapped));
}

#[test]
fn faulty_builder_matches_wrapper_chain() {
    let bundle = bundle();
    let cfg = sim_cfg(bundle.horizon);
    let built = SimRun::trace(&bundle.trace, make_policy(), cfg)
        .with_faults(hook(bundle.horizon))
        .run();
    let wrapped = Simulator::new(&bundle.trace, make_policy(), cfg)
        .with_faults(hook(bundle.horizon))
        .run();
    assert_eq!(report_digest(&built), report_digest(&wrapped));
}

#[test]
fn observed_builder_matches_wrapper_chain_and_streams() {
    let bundle = bundle();
    let cfg = sim_cfg(bundle.horizon);

    let mut rec_built = RingRecorder::unbounded();
    let built = SimRun::trace(&bundle.trace, make_policy(), cfg)
        .with_faults(hook(bundle.horizon))
        .with_observer(&mut rec_built)
        .run();
    let mut rec_wrapped = RingRecorder::unbounded();
    let wrapped = Simulator::new(&bundle.trace, make_policy(), cfg)
        .with_faults(hook(bundle.horizon))
        .with_observer(&mut rec_wrapped)
        .run();

    assert_eq!(report_digest(&built), report_digest(&wrapped));
    assert_eq!(rec_built.into_events(), rec_wrapped.into_events());
}

#[test]
fn streaming_builder_matches_wrapper_chain() {
    let bundle = bundle();
    let cfg = sim_cfg(bundle.horizon);
    for chunk in [1usize, 64] {
        let built = SimRun::streaming(
            bundle.trace.n_items,
            &bundle.trace.updates,
            make_policy(),
            cfg,
        )
        .run_streamed(bundle.trace.queries.iter().cloned(), chunk);
        let wrapped = Simulator::new_streaming(
            bundle.trace.n_items,
            &bundle.trace.updates,
            make_policy(),
            cfg,
        )
        .run_streamed(bundle.trace.queries.iter().cloned(), chunk);
        assert_eq!(
            report_digest(&built),
            report_digest(&wrapped),
            "chunk {chunk}"
        );
        // And the streamed pipeline still equals the materialized one.
        let materialized = SimRun::trace(&bundle.trace, make_policy(), cfg).run();
        assert_eq!(report_digest(&built), report_digest(&materialized));
    }
}

#[test]
fn build_then_manual_stepping_matches_run() {
    let bundle = bundle();
    let cfg = sim_cfg(bundle.horizon);
    let mut sim = SimRun::trace(&bundle.trace, make_policy(), cfg)
        .with_faults(hook(bundle.horizon))
        .build();
    while sim.step() {}
    let (stepped, _) = sim.finish();
    let ran = SimRun::trace(&bundle.trace, make_policy(), cfg)
        .with_faults(hook(bundle.horizon))
        .run();
    assert_eq!(report_digest(&stepped), report_digest(&ran));
}
