//! Behavioural tests for the discrete-event server: scheduling discipline,
//! 2PL-HP, firm deadlines, freshness verdicts, on-demand refreshes, and
//! accounting invariants.

use unit_core::policy::{AdmissionDecision, Policy, UpdateAction};
use unit_core::snapshot::SnapshotView;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, QueryId, QuerySpec, Trace, UpdateSpec, UpdateStreamId};
use unit_sim::{run_simulation, SimConfig};

// ---------------------------------------------------------------------------
// Tiny open-loop policies for driving the engine deterministically.
// ---------------------------------------------------------------------------

/// Admit every query, apply every version (IMU-like, but local to the test).
struct ApplyAll;

impl Policy for ApplyAll {
    fn name(&self) -> &str {
        "apply-all"
    }
    fn init(&mut self, _: usize, _: &[UpdateSpec]) {}
    fn on_query_arrival(&mut self, _: &QuerySpec, _: &SnapshotView<'_>) -> AdmissionDecision {
        AdmissionDecision::Admit
    }
    fn on_version_arrival(&mut self, _: DataId, _: SimTime, _: &SnapshotView<'_>) -> UpdateAction {
        UpdateAction::Apply
    }
}

/// Admit every query, never apply versions in the background.
struct SkipAll;

impl Policy for SkipAll {
    fn name(&self) -> &str {
        "skip-all"
    }
    fn init(&mut self, _: usize, _: &[UpdateSpec]) {}
    fn on_query_arrival(&mut self, _: &QuerySpec, _: &SnapshotView<'_>) -> AdmissionDecision {
        AdmissionDecision::Admit
    }
    fn on_version_arrival(&mut self, _: DataId, _: SimTime, _: &SnapshotView<'_>) -> UpdateAction {
        UpdateAction::Skip
    }
}

/// Reject every query.
struct RejectAll;

impl Policy for RejectAll {
    fn name(&self) -> &str {
        "reject-all"
    }
    fn init(&mut self, _: usize, _: &[UpdateSpec]) {}
    fn on_query_arrival(&mut self, _: &QuerySpec, _: &SnapshotView<'_>) -> AdmissionDecision {
        AdmissionDecision::Reject
    }
    fn on_version_arrival(&mut self, _: DataId, _: SimTime, _: &SnapshotView<'_>) -> UpdateAction {
        UpdateAction::Apply
    }
}

/// Skip background versions but demand on-demand refreshes (ODU-like).
struct DemandRefresh;

impl Policy for DemandRefresh {
    fn name(&self) -> &str {
        "demand-refresh"
    }
    fn init(&mut self, _: usize, _: &[UpdateSpec]) {}
    fn on_query_arrival(&mut self, _: &QuerySpec, _: &SnapshotView<'_>) -> AdmissionDecision {
        AdmissionDecision::Admit
    }
    fn on_version_arrival(&mut self, _: DataId, _: SimTime, _: &SnapshotView<'_>) -> UpdateAction {
        UpdateAction::Skip
    }
    fn demand_refresh(&mut self, q: &QuerySpec, udrop: &dyn Fn(DataId) -> u64) -> Vec<DataId> {
        q.items.iter().copied().filter(|&d| udrop(d) > 0).collect()
    }
}

// ---------------------------------------------------------------------------
// Trace helpers.
// ---------------------------------------------------------------------------

fn query(id: u64, arrival_s: f64, items: &[u32], exec_s: f64, deadline_s: f64) -> QuerySpec {
    QuerySpec {
        id: QueryId(id),
        arrival: SimTime::from_secs_f64(arrival_s),
        items: items.iter().map(|&i| DataId(i)).collect(),
        exec_time: SimDuration::from_secs_f64(exec_s),
        relative_deadline: SimDuration::from_secs_f64(deadline_s),
        freshness_req: 0.9,
        pref_class: 0,
    }
}

fn update(id: u32, item: u32, period_s: f64, exec_s: f64, first_s: f64) -> UpdateSpec {
    UpdateSpec {
        id: UpdateStreamId(id),
        item: DataId(item),
        period: SimDuration::from_secs_f64(period_s),
        exec_time: SimDuration::from_secs_f64(exec_s),
        first_arrival: SimTime::from_secs_f64(first_s),
    }
}

fn cfg(horizon_s: u64) -> SimConfig {
    SimConfig::new(SimDuration::from_secs(horizon_s))
}

// ---------------------------------------------------------------------------
// Basic lifecycle.
// ---------------------------------------------------------------------------

#[test]
fn lone_query_succeeds() {
    let trace = Trace {
        n_items: 2,
        queries: vec![query(0, 1.0, &[0], 2.0, 10.0)],
        updates: vec![],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(100));
    assert_eq!(r.counts.success, 1);
    assert_eq!(r.counts.total(), 1);
    assert_eq!(r.cpu_busy, SimDuration::from_secs(2));
    assert_eq!(r.success_ratio(), 1.0);
}

#[test]
fn rejected_queries_never_run() {
    let trace = Trace {
        n_items: 2,
        queries: vec![
            query(0, 1.0, &[0], 2.0, 10.0),
            query(1, 2.0, &[1], 2.0, 10.0),
        ],
        updates: vec![],
    };
    let r = run_simulation(&trace, RejectAll, cfg(100));
    assert_eq!(r.counts.rejected, 2);
    assert_eq!(r.counts.total(), 2);
    assert_eq!(r.cpu_busy, SimDuration::ZERO);
}

#[test]
fn infeasible_admitted_query_misses_its_deadline() {
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 1.0, &[0], 10.0, 3.0)], // needs 10s, has 3s
        updates: vec![],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(100));
    assert_eq!(r.counts.deadline_miss, 1);
    // Firm deadline: the query burned CPU until expiry, then was aborted.
    assert_eq!(r.cpu_busy, SimDuration::from_secs(3));
}

#[test]
fn queued_work_delays_later_deadlines_edf_order() {
    // Two queries arrive together; EDF must run the earlier deadline first.
    let trace = Trace {
        n_items: 2,
        queries: vec![
            query(0, 0.0, &[0], 4.0, 20.0), // later deadline
            query(1, 0.0, &[1], 4.0, 6.0),  // earlier deadline, arrives second
        ],
        updates: vec![],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(100));
    // If FIFO ran q0 first, q1 would finish at 8 > 6 and miss. EDF saves it.
    assert_eq!(r.counts.success, 2, "{:?}", r.counts);
}

// ---------------------------------------------------------------------------
// Freshness verdicts.
// ---------------------------------------------------------------------------

#[test]
fn skipped_versions_cause_data_stale_failures() {
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 5.0, &[0], 1.0, 10.0)],
        updates: vec![update(0, 0, 2.0, 0.5, 0.0)], // versions at 0,2,4,...
    };
    let r = run_simulation(&trace, SkipAll, cfg(100));
    assert_eq!(r.counts.data_stale, 1, "{:?}", r.counts);
    assert_eq!(r.applied_ratio(), 0.0);
}

#[test]
fn applied_versions_keep_queries_fresh() {
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 5.0, &[0], 1.0, 10.0)],
        updates: vec![update(0, 0, 2.0, 0.1, 0.0)],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(100));
    assert_eq!(r.counts.success, 1, "{:?}", r.counts);
    assert!(r.applied_ratio() > 0.99);
}

#[test]
fn freshness_is_judged_at_read_time_not_commit_time() {
    // Query reads item 0 at t=1 (fresh) and runs 4s; a version arrives at
    // t=3 and is *skipped*. The data the query read was fresh, so the query
    // succeeds — read-time semantics (this is what lets the paper's ODU
    // guarantee 100% freshness).
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 1.0, &[0], 4.0, 20.0)],
        updates: vec![update(0, 0, 100.0, 0.5, 3.0)],
    };
    let r = run_simulation(&trace, SkipAll, cfg(100));
    assert_eq!(r.counts.success, 1, "{:?}", r.counts);

    // Whereas a query that *reads* stale data fails even if nothing changes
    // during its execution.
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 5.0, &[0], 4.0, 20.0)],
        updates: vec![update(0, 0, 100.0, 0.5, 3.0)],
    };
    let r = run_simulation(&trace, SkipAll, cfg(100));
    assert_eq!(r.counts.data_stale, 1, "{:?}", r.counts);
}

#[test]
fn on_demand_refresh_restores_freshness_before_the_query_runs() {
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 5.0, &[0], 1.0, 10.0)],
        updates: vec![update(0, 0, 2.0, 0.5, 0.0)],
    };
    let r = run_simulation(&trace, DemandRefresh, cfg(100));
    assert_eq!(r.counts.success, 1, "{:?}", r.counts);
    assert!(r.demand_refreshes >= 1);
    // Only the demanded refreshes were applied, not the background stream.
    let applied: u64 = r.updates_applied.iter().sum();
    assert_eq!(applied, r.demand_refreshes);
}

// ---------------------------------------------------------------------------
// Dual-priority discipline and 2PL-HP.
// ---------------------------------------------------------------------------

#[test]
fn updates_preempt_running_queries() {
    // Query starts at t=1 (6s of work). A version arrives at t=2 on a
    // *different* item: the update preempts, runs 1s, then the query resumes
    // and still meets its deadline.
    let trace = Trace {
        n_items: 2,
        queries: vec![query(0, 1.0, &[0], 6.0, 10.0)],
        updates: vec![update(0, 1, 100.0, 1.0, 2.0)],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(100));
    assert_eq!(r.counts.success, 1, "{:?}", r.counts);
    assert!(r.preemptions >= 1);
    assert_eq!(r.hp_aborts, 0, "different items: no lock conflict");
    assert_eq!(r.cpu_busy, SimDuration::from_secs(7));
}

#[test]
fn conflicting_update_aborts_and_restarts_the_query() {
    // Query reads item 0 for 6s starting at t=1; at t=2 a version arrives
    // *for item 0*: 2PL-HP evicts the query, which restarts from scratch and
    // (with a generous deadline) still succeeds.
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 1.0, &[0], 6.0, 30.0)],
        updates: vec![update(0, 0, 100.0, 1.0, 2.0)],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(100));
    assert_eq!(r.counts.success, 1, "{:?}", r.counts);
    assert_eq!(r.hp_aborts, 1);
    assert_eq!(r.query_restarts, 1);
    // 1s of wasted query work + 1s update + 6s full rerun.
    assert_eq!(r.cpu_busy, SimDuration::from_secs(8));
}

#[test]
fn hp_abort_storm_starves_a_tight_query() {
    // Updates on the query's item every 2s; the query needs 5s: it can never
    // hold its read lock long enough and misses its deadline.
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 0.5, &[0], 5.0, 20.0)],
        updates: vec![update(0, 0, 2.0, 0.5, 0.0)],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(100));
    assert_eq!(r.counts.deadline_miss, 1, "{:?}", r.counts);
    assert!(r.query_restarts >= 3, "restarts: {}", r.query_restarts);
}

#[test]
fn updates_run_before_queries_even_with_later_arrival() {
    // Query (3s) and an update (1s) arrive at the same instant; the update
    // must run first (dual-priority), delaying the query's finish to t=4.
    let trace = Trace {
        n_items: 2,
        queries: vec![query(0, 1.0, &[0], 3.0, 3.5)], // deadline t=4.5
        updates: vec![update(0, 1, 100.0, 1.0, 1.0)],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(100));
    // Query finishes at 1 + 1 + 3 = 5 > 4.5: the update's priority makes the
    // query miss. (With query-first it would have finished at 4.)
    assert_eq!(r.counts.deadline_miss, 1, "{:?}", r.counts);
}

// ---------------------------------------------------------------------------
// Accounting invariants.
// ---------------------------------------------------------------------------

#[test]
fn every_query_has_exactly_one_outcome() {
    let mut queries = Vec::new();
    for i in 0..50 {
        queries.push(query(
            i,
            0.5 * i as f64,
            &[(i % 4) as u32],
            1.5,
            4.0 + (i % 7) as f64,
        ));
    }
    let trace = Trace {
        n_items: 4,
        queries,
        updates: vec![
            update(0, 0, 3.0, 0.5, 0.0),
            update(1, 1, 5.0, 0.5, 1.0),
            update(2, 2, 7.0, 0.5, 2.0),
        ],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(60));
    assert_eq!(r.counts.total(), 50);
    let sum: f64 = r.ratios().iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
}

#[test]
fn runs_are_deterministic() {
    let mut queries = Vec::new();
    for i in 0..40 {
        queries.push(query(i, 0.7 * i as f64, &[(i % 3) as u32], 1.2, 6.0));
    }
    let trace = Trace {
        n_items: 3,
        queries,
        updates: vec![update(0, 0, 2.5, 0.4, 0.0), update(1, 1, 4.0, 0.6, 0.5)],
    };
    let a = run_simulation(&trace, ApplyAll, cfg(60));
    let b = run_simulation(&trace, ApplyAll, cfg(60));
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.cpu_busy, b.cpu_busy);
    assert_eq!(a.updates_applied, b.updates_applied);
    assert_eq!(a.hp_aborts, b.hp_aborts);
}

#[test]
fn cpu_busy_never_exceeds_elapsed_time() {
    let mut queries = Vec::new();
    for i in 0..200 {
        queries.push(query(i, 0.2 * i as f64, &[(i % 8) as u32], 1.0, 5.0));
    }
    let trace = Trace {
        n_items: 8,
        queries,
        updates: (0..8).map(|j| update(j, j, 4.0, 0.5, 0.0)).collect(),
    };
    let r = run_simulation(&trace, ApplyAll, cfg(60));
    assert!(r.cpu_busy <= r.end_time.saturating_since(SimTime::ZERO));
    // Offered load >> 1: the CPU should be essentially saturated.
    assert!(r.utilization() > 0.9, "utilization {}", r.utilization());
    // And overload must produce failures.
    assert!(r.counts.deadline_miss + r.counts.data_stale > 0);
}

#[test]
fn timeline_recording_samples_every_tick() {
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 1.0, &[0], 1.0, 5.0)],
        updates: vec![update(0, 0, 3.0, 0.2, 0.0)],
    };
    let r = run_simulation(
        &trace,
        ApplyAll,
        cfg(10)
            .with_timeline()
            .with_tick_period(SimDuration::from_secs(2)),
    );
    // Ticks at 2,4,6,8,10.
    assert_eq!(r.timeline.len(), 5);
    assert!(r.timeline.windows(2).all(|w| w[0].time < w[1].time));
}

#[test]
fn work_drains_after_the_horizon() {
    // A query arriving just before the horizon still completes after it.
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 9.5, &[0], 3.0, 10.0)],
        updates: vec![update(0, 0, 1.0, 0.4, 0.0)],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(10));
    assert_eq!(r.counts.total(), 1);
    assert!(r.end_time > SimTime::from_secs(10));
    // No versions are emitted past the horizon.
    let arrived: u64 = r.versions_arrived.iter().sum();
    assert_eq!(arrived, 11); // t = 0..=10
}

#[test]
fn multi_item_queries_lock_their_whole_read_set() {
    // Query reads items 0..3; an update storm on item 3 keeps evicting it.
    let trace = Trace {
        n_items: 4,
        queries: vec![query(0, 0.5, &[0, 1, 2, 3], 4.0, 15.0)],
        updates: vec![update(0, 3, 1.5, 0.3, 0.0)],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(100));
    assert!(r.query_restarts >= 2);
    assert_eq!(r.counts.deadline_miss, 1, "{:?}", r.counts);
}

#[test]
fn mean_dispatch_freshness_reflects_staleness_at_lock_time() {
    // One stale dispatch (Udrop=1 on the single item): freshness 0.5.
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 5.0, &[0], 1.0, 10.0)],
        updates: vec![update(0, 0, 100.0, 0.5, 1.0)],
    };
    let r = run_simulation(&trace, SkipAll, cfg(100));
    assert!((r.mean_dispatch_freshness - 0.5).abs() < 1e-9);
}

// ---------------------------------------------------------------------------
// Freshness models end-to-end.
// ---------------------------------------------------------------------------

#[test]
fn time_based_model_forgives_young_staleness() {
    use unit_core::freshness_model::FreshnessModel;
    // Version arrives at t=3 and is skipped; query reads at t=5 (age 2s).
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 5.0, &[0], 1.0, 10.0)],
        updates: vec![update(0, 0, 100.0, 0.5, 3.0)],
    };
    // Lag model: any pending version -> stale.
    let lag = run_simulation(&trace, SkipAll, cfg(100));
    assert_eq!(lag.counts.data_stale, 1);
    // Time-based with a 10s validity: age 2s -> freshness 0.8 < 0.9? No:
    // 1 - 2/10 = 0.8 < 0.9 -> still stale. Use a 30s validity: 1 - 2/30 =
    // 0.93 >= 0.9 -> success.
    let time = run_simulation(
        &trace,
        SkipAll,
        cfg(100).with_freshness_model(FreshnessModel::TimeBased {
            validity: SimDuration::from_secs(30),
        }),
    );
    assert_eq!(time.counts.success, 1, "{:?}", time.counts);
}

#[test]
fn divergence_model_tolerates_small_backlogs() {
    use unit_core::freshness_model::FreshnessModel;
    // One pending version at read time.
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 5.0, &[0], 1.0, 10.0)],
        updates: vec![update(0, 0, 100.0, 0.5, 1.0)],
    };
    // decay 0.05: e^-0.05 = 0.951 >= 0.9 -> success.
    let gentle = run_simulation(
        &trace,
        SkipAll,
        cfg(100).with_freshness_model(FreshnessModel::Divergence { decay: 0.05 }),
    );
    assert_eq!(gentle.counts.success, 1, "{:?}", gentle.counts);
    // decay 1.0: e^-1 = 0.37 < 0.9 -> stale.
    let strict = run_simulation(
        &trace,
        SkipAll,
        cfg(100).with_freshness_model(FreshnessModel::Divergence { decay: 1.0 }),
    );
    assert_eq!(strict.counts.data_stale, 1, "{:?}", strict.counts);
}

// ---------------------------------------------------------------------------
// Preference classes through the engine.
// ---------------------------------------------------------------------------

#[test]
fn per_class_counts_partition_the_totals() {
    let mut q0 = query(0, 1.0, &[0], 1.0, 10.0); // succeeds
    q0.pref_class = 0;
    let mut q1 = query(1, 2.0, &[1], 50.0, 5.0); // hopeless: DMF
    q1.pref_class = 2;
    let mut q2 = query(2, 20.0, &[0], 1.0, 10.0); // succeeds
    q2.pref_class = 2;
    let trace = Trace {
        n_items: 2,
        queries: vec![q0, q1, q2],
        updates: vec![],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(100));
    assert_eq!(r.counts.total(), 3);
    assert_eq!(r.class_counts.len(), 3, "classes 0..=2 observed");
    assert_eq!(r.class_counts(0).success, 1);
    assert_eq!(r.class_counts(1).total(), 0, "class 1 unused");
    assert_eq!(r.class_counts(2).success, 1);
    assert_eq!(r.class_counts(2).deadline_miss, 1);
    let sum: u64 = r
        .class_counts
        .iter()
        .map(unit_core::OutcomeCounts::total)
        .sum();
    assert_eq!(sum, r.counts.total());
    // Unseen classes read as zeros.
    assert_eq!(r.class_counts(9).total(), 0);
}

// ---------------------------------------------------------------------------
// Update-stream corner cases.
// ---------------------------------------------------------------------------

#[test]
fn multiple_streams_on_one_item_serialize_correctly() {
    // Two sources feed item 0 with different periods; every version applies.
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 50.0, &[0], 1.0, 20.0)],
        updates: vec![update(0, 0, 7.0, 0.5, 0.0), update(1, 0, 11.0, 0.5, 1.0)],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(60));
    // Versions: t=0,7,14,...,56 (9) + t=1,12,23,34,45,56 (6) = 15.
    let arrived: u64 = r.versions_arrived.iter().sum();
    assert_eq!(arrived, 15);
    let applied: u64 = r.updates_applied.iter().sum();
    assert_eq!(applied, 15, "apply-all applies every version");
    assert_eq!(r.counts.success, 1, "{:?}", r.counts);
}

#[test]
fn on_demand_and_periodic_updates_coexist_on_one_item() {
    /// Applies the periodic stream only half the time, and demands
    /// refreshes for the rest — exercising the pending-on-demand guard
    /// alongside periodic traffic.
    struct HalfAndHalf {
        toggle: bool,
    }
    impl Policy for HalfAndHalf {
        fn name(&self) -> &str {
            "half"
        }
        fn init(&mut self, _: usize, _: &[UpdateSpec]) {}
        fn on_query_arrival(&mut self, _: &QuerySpec, _: &SnapshotView<'_>) -> AdmissionDecision {
            AdmissionDecision::Admit
        }
        fn on_version_arrival(
            &mut self,
            _: DataId,
            _: SimTime,
            _: &SnapshotView<'_>,
        ) -> UpdateAction {
            self.toggle = !self.toggle;
            if self.toggle {
                UpdateAction::Apply
            } else {
                UpdateAction::Skip
            }
        }
        fn demand_refresh(&mut self, q: &QuerySpec, udrop: &dyn Fn(DataId) -> u64) -> Vec<DataId> {
            q.items.iter().copied().filter(|&d| udrop(d) > 0).collect()
        }
    }

    let trace = Trace {
        n_items: 1,
        queries: (0..6)
            .map(|i| query(i, 10.0 + 13.0 * i as f64, &[0], 1.0, 12.0))
            .collect(),
        updates: vec![update(0, 0, 4.0, 0.5, 0.0)],
    };
    let r = run_simulation(&trace, HalfAndHalf { toggle: false }, cfg(100));
    assert_eq!(r.counts.total(), 6);
    // Everything the engine delivered read fresh data (refreshes fire on
    // stale dispatch), so no DSFs.
    assert_eq!(r.counts.data_stale, 0, "{:?}", r.counts);
    assert!(r.demand_refreshes > 0, "some refreshes must have fired");
}

#[test]
fn update_streams_starting_after_the_horizon_never_fire() {
    let mut u = update(0, 0, 10.0, 1.0, 0.0);
    u.first_arrival = SimTime::from_secs(500); // beyond the 100s horizon
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 1.0, &[0], 1.0, 10.0)],
        updates: vec![u],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(100));
    assert_eq!(r.versions_arrived.iter().sum::<u64>(), 0);
    assert_eq!(r.counts.success, 1);
}

#[test]
fn timeline_reports_utilization_within_bounds() {
    let trace = Trace {
        n_items: 2,
        queries: (0..20)
            .map(|i| query(i, i as f64, &[0], 0.8, 10.0))
            .collect(),
        updates: vec![update(0, 1, 5.0, 1.0, 0.0)],
    };
    let r = run_simulation(
        &trace,
        ApplyAll,
        cfg(40)
            .with_timeline()
            .with_tick_period(SimDuration::from_secs(5)),
    );
    assert!(!r.timeline.is_empty());
    for s in &r.timeline {
        assert!(
            (0.0..=1.0).contains(&s.utilization),
            "util {}",
            s.utilization
        );
        assert!((-1.0..=1.0).contains(&s.usm));
    }
    // Busy workload: at least one window should be fully utilized.
    assert!(r.timeline.iter().any(|s| s.utilization > 0.9));
}

// ---------------------------------------------------------------------------
// Scheduling disciplines (ablation axis).
// ---------------------------------------------------------------------------

#[test]
fn global_edf_lets_an_urgent_query_beat_a_relaxed_update() {
    use unit_sim::SchedulingDiscipline;
    // Query (3s work, deadline t=4.5) and an update with a *lax* validity
    // deadline arrive together. Dual-priority runs the update first and the
    // query misses; global EDF runs the query first and both finish.
    let trace = Trace {
        n_items: 2,
        queries: vec![query(0, 1.0, &[0], 3.0, 3.5)],
        updates: vec![update(0, 1, 100.0, 1.0, 1.0)], // validity deadline t=101
    };
    let dual = run_simulation(&trace, ApplyAll, cfg(100));
    assert_eq!(dual.counts.deadline_miss, 1, "{:?}", dual.counts);

    let global = run_simulation(
        &trace,
        ApplyAll,
        cfg(100).with_discipline(SchedulingDiscipline::GlobalEdf),
    );
    assert_eq!(global.counts.success, 1, "{:?}", global.counts);
    assert_eq!(
        global.updates_applied.iter().sum::<u64>(),
        global.versions_arrived.iter().sum::<u64>(),
        "the update still runs, just later"
    );
}

#[test]
fn query_first_discipline_starves_freshness_under_load() {
    use unit_sim::SchedulingDiscipline;
    // Saturating query load + one update stream: with queries always first,
    // updates never get the CPU, so every later query reads stale data.
    let mut queries: Vec<QuerySpec> = Vec::new();
    for i in 0..60 {
        queries.push(query(i, 1.0 + i as f64, &[0], 1.0, 30.0));
    }
    let trace = Trace {
        n_items: 1,
        queries,
        updates: vec![update(0, 0, 10.0, 2.0, 0.0)],
    };
    let qf = run_simulation(
        &trace,
        ApplyAll,
        cfg(70).with_discipline(SchedulingDiscipline::QueryFirst),
    );
    let dual = run_simulation(&trace, ApplyAll, cfg(70));
    assert!(
        qf.counts.data_stale > dual.counts.data_stale,
        "query-first must go stale more: {} vs {}",
        qf.counts.data_stale,
        dual.counts.data_stale
    );
    // (Updates still drain after the queries finish, so the *applied* count
    // matches — what suffers is the freshness queries observe at read time.)
    assert!(
        qf.mean_dispatch_freshness < dual.mean_dispatch_freshness,
        "query-first reads staler data: {} vs {}",
        qf.mean_dispatch_freshness,
        dual.mean_dispatch_freshness
    );
}

#[test]
fn disciplines_preserve_conservation_laws() {
    use unit_sim::SchedulingDiscipline;
    let mut queries: Vec<QuerySpec> = Vec::new();
    for i in 0..30 {
        queries.push(query(i, 0.7 * i as f64, &[(i % 3) as u32], 1.0, 8.0));
    }
    let trace = Trace {
        n_items: 3,
        queries,
        updates: vec![update(0, 0, 3.0, 0.5, 0.0), update(1, 2, 5.0, 0.5, 1.0)],
    };
    for d in [
        SchedulingDiscipline::DualPriorityEdf,
        SchedulingDiscipline::GlobalEdf,
        SchedulingDiscipline::QueryFirst,
    ] {
        let r = run_simulation(&trace, ApplyAll, cfg(40).with_discipline(d));
        assert_eq!(r.counts.total(), 30, "{d:?}");
        assert!(
            r.cpu_busy.as_secs_f64() <= r.end_time.as_secs_f64() + 1e-9,
            "{d:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Multi-CPU server (substrate generalization; the paper uses one CPU).
// ---------------------------------------------------------------------------

#[test]
fn two_cpus_run_two_transactions_concurrently() {
    // Two queries arrive together, 4s each, 5s deadlines: impossible on one
    // CPU, trivial on two.
    let trace = Trace {
        n_items: 2,
        queries: vec![query(0, 1.0, &[0], 4.0, 5.0), query(1, 1.0, &[1], 4.0, 5.0)],
        updates: vec![],
    };
    let one = run_simulation(&trace, ApplyAll, cfg(100));
    assert_eq!(one.counts.deadline_miss, 1, "{:?}", one.counts);

    let two = run_simulation(&trace, ApplyAll, cfg(100).with_cpus(2));
    assert_eq!(two.counts.success, 2, "{:?}", two.counts);
    // 8s of work over a 100s horizon on 2 CPUs -> 4% utilization.
    assert!((two.utilization() - 0.04).abs() < 1e-9);
}

#[test]
fn concurrent_update_evicts_a_running_reader() {
    // On two CPUs, a query holding a read lock runs while an update for the
    // same item is dispatched on the other CPU: 2PL-HP must evict the
    // *running* reader (impossible on one CPU, where the reader would have
    // been preempted before dispatch).
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 1.0, &[0], 6.0, 30.0)],
        updates: vec![update(0, 0, 100.0, 1.0, 2.0)],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(100).with_cpus(2));
    assert_eq!(r.hp_aborts, 1);
    assert_eq!(r.query_restarts, 1);
    assert_eq!(r.counts.success, 1, "{:?}", r.counts);
    // Work: 1s wasted query + 1s update + 6s rerun = 8s.
    assert_eq!(r.cpu_busy, SimDuration::from_secs(8));
}

#[test]
fn blocked_readers_wait_for_a_running_writer() {
    // Update starts at t=1 (write lock on item 0, 5s); query arrives at t=2
    // wanting to read item 0 on the idle second CPU: it must BLOCK until
    // the writer commits, then succeed.
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 2.0, &[0], 1.0, 20.0)],
        updates: vec![update(0, 0, 100.0, 5.0, 1.0)],
    };
    let r = run_simulation(&trace, ApplyAll, cfg(100).with_cpus(2));
    assert_eq!(r.counts.success, 1, "{:?}", r.counts);
    assert_eq!(
        r.hp_aborts, 0,
        "the lower-priority reader must wait, not evict"
    );
    // Query finishes at 6+1=7 (waited from 2 to 6).
    assert_eq!(r.cpu_busy, SimDuration::from_secs(6));
}

#[test]
fn multi_cpu_runs_preserve_conservation_laws() {
    let mut queries: Vec<QuerySpec> = Vec::new();
    for i in 0..60 {
        queries.push(query(i, 0.4 * i as f64, &[(i % 4) as u32], 1.5, 6.0));
    }
    let trace = Trace {
        n_items: 4,
        queries,
        updates: (0..4).map(|j| update(j, j, 3.0, 0.8, 0.0)).collect(),
    };
    for cpus in [1usize, 2, 4] {
        let r = run_simulation(&trace, ApplyAll, cfg(40).with_cpus(cpus));
        assert_eq!(r.counts.total(), 60, "{cpus} cpus");
        // Busy time can never exceed elapsed wall time x CPUs (work drains
        // past the horizon, so compare against end_time, not the horizon).
        assert!(
            r.cpu_busy.as_secs_f64() <= r.end_time.as_secs_f64() * cpus as f64 + 1e-9,
            "{cpus} cpus"
        );
        // More CPUs never hurt (same trace, same policy).
        if cpus > 1 {
            let base = run_simulation(&trace, ApplyAll, cfg(40));
            assert!(
                r.counts.success >= base.counts.success,
                "{cpus} cpus: {} < {}",
                r.counts.success,
                base.counts.success
            );
        }
    }
}
