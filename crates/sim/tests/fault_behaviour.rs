//! Behavioural tests for the engine's fault hook (DESIGN.md §4): pause
//! windows defer work and record no interior outcomes, degraded windows
//! serve reads while dropping update applications, per-item stream faults
//! feed the real freshness path, load bursts consume CPU, and an inert
//! hook is bit-identical to no hook at all.

use unit_core::policy::{AdmissionDecision, Policy, UpdateAction};
use unit_core::snapshot::SnapshotView;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, Outcome, QueryId, QuerySpec, Trace, UpdateSpec, UpdateStreamId};
use unit_sim::{
    report_digest, run_simulation, BackgroundLoad, FaultHook, HealthState, NoFaults, SimConfig,
    SimRun, UpdateFault,
};

/// Admit every query, apply every version.
struct ApplyAll;

impl Policy for ApplyAll {
    fn name(&self) -> &str {
        "apply-all"
    }
    fn init(&mut self, _: usize, _: &[UpdateSpec]) {}
    fn on_query_arrival(&mut self, _: &QuerySpec, _: &SnapshotView<'_>) -> AdmissionDecision {
        AdmissionDecision::Admit
    }
    fn on_version_arrival(&mut self, _: DataId, _: SimTime, _: &SnapshotView<'_>) -> UpdateAction {
        UpdateAction::Apply
    }
}

/// A hand-written declarative hook: explicit windows, per-item stream
/// faults, and bursts. Linear scans are fine at test scale; what matters
/// is that it is a pure function of virtual time.
#[derive(Default)]
struct TestFaults {
    /// `(start, end, degraded)` — `[start, end)` windows, non-overlapping.
    windows: Vec<(SimTime, SimTime, bool)>,
    /// Items whose arriving versions are never applied.
    drop_items: Vec<u32>,
    /// Items whose applications are postponed by the given delay.
    delay_items: Vec<(u32, SimDuration)>,
    /// `(at, count, exec)` load bursts.
    bursts: Vec<(SimTime, u32, SimDuration)>,
}

impl FaultHook for TestFaults {
    fn transition_times(&self) -> Vec<SimTime> {
        let mut t: Vec<SimTime> = self
            .windows
            .iter()
            .flat_map(|&(s, e, _)| [s, e])
            .chain(self.bursts.iter().map(|&(at, _, _)| at))
            .collect();
        t.sort_unstable();
        t
    }

    fn health(&self, now: SimTime) -> HealthState {
        for &(start, end, degraded) in &self.windows {
            if start <= now && now < end {
                return if degraded {
                    HealthState::Degraded { until: end }
                } else {
                    HealthState::Down { until: end }
                };
            }
        }
        HealthState::Up
    }

    fn update_fault(&self, item: DataId, _now: SimTime) -> UpdateFault {
        if self.drop_items.contains(&item.0) {
            return UpdateFault::Drop;
        }
        for &(i, d) in &self.delay_items {
            if i == item.0 {
                return UpdateFault::Delay(d);
            }
        }
        UpdateFault::Apply
    }

    fn load_at(&self, now: SimTime) -> Vec<BackgroundLoad> {
        self.bursts
            .iter()
            .filter(|&&(at, _, _)| at == now)
            .flat_map(|&(_, count, exec)| (0..count).map(move |_| BackgroundLoad { exec }))
            .collect()
    }
}

fn query(id: u64, arrival_s: f64, items: &[u32], exec_s: f64, deadline_s: f64) -> QuerySpec {
    QuerySpec {
        id: QueryId(id),
        arrival: SimTime::from_secs_f64(arrival_s),
        items: items.iter().map(|&i| DataId(i)).collect(),
        exec_time: SimDuration::from_secs_f64(exec_s),
        relative_deadline: SimDuration::from_secs_f64(deadline_s),
        freshness_req: 0.9,
        pref_class: 0,
    }
}

fn update(id: u32, item: u32, period_s: f64, exec_s: f64, first_s: f64) -> UpdateSpec {
    UpdateSpec {
        id: UpdateStreamId(id),
        item: DataId(item),
        period: SimDuration::from_secs_f64(period_s),
        exec_time: SimDuration::from_secs_f64(exec_s),
        first_arrival: SimTime::from_secs_f64(first_s),
    }
}

fn cfg(horizon_s: u64) -> SimConfig {
    SimConfig::new(SimDuration::from_secs(horizon_s)).with_outcome_log()
}

/// A busy little trace: 12 queries over 4 items with two update streams.
fn busy_trace() -> Trace {
    let queries = (0..12u64)
        .map(|i| query(i, 1.0 + i as f64 * 2.0, &[(i % 4) as u32], 0.5, 6.0))
        .collect();
    Trace {
        n_items: 4,
        queries,
        updates: vec![update(0, 0, 3.0, 0.2, 0.0), update(1, 1, 4.0, 0.2, 0.5)],
    }
}

#[test]
fn inert_hook_is_bit_identical_to_no_hook() {
    let trace = busy_trace();
    let plain = run_simulation(&trace, ApplyAll, cfg(40));
    let hooked = SimRun::trace(&trace, ApplyAll, cfg(40))
        .with_faults(Box::new(NoFaults))
        .run();
    assert_eq!(report_digest(&plain), report_digest(&hooked));
    assert_eq!(plain.outcome_records, hooked.outcome_records);
    assert!(hooked.faults.is_zero());
    // An installed-but-empty declarative hook is just as inert.
    let empty = SimRun::trace(&trace, ApplyAll, cfg(40))
        .with_faults(Box::new(TestFaults::default()))
        .run();
    assert_eq!(report_digest(&plain), report_digest(&empty));
}

#[test]
fn pause_window_records_no_interior_outcome() {
    // Window [5, 10): q0 finishes before it, q1 arrives inside it (deferred
    // to recovery, still meets its late deadline), q2 arrives inside with a
    // deadline that expires before recovery (dead on arrival at t=10).
    let trace = Trace {
        n_items: 2,
        queries: vec![
            query(0, 1.0, &[0], 1.0, 3.0),
            query(1, 6.0, &[0], 1.0, 20.0),
            query(2, 6.5, &[1], 1.0, 3.0),
        ],
        updates: vec![],
    };
    let hook = TestFaults {
        windows: vec![(SimTime::from_secs(5), SimTime::from_secs(10), false)],
        ..TestFaults::default()
    };
    let report = SimRun::trace(&trace, ApplyAll, cfg(30))
        .with_faults(Box::new(hook))
        .run();
    assert_eq!(report.counts.total(), 3);
    for r in &report.outcome_records {
        let strictly_inside = SimTime::from_secs(5) < r.time && r.time < SimTime::from_secs(10);
        assert!(
            !strictly_inside,
            "outcome for {:?} at {:?} inside the pause window",
            r.query, r.time
        );
    }
    let outcome_of = |id: u64| {
        report
            .outcome_records
            .iter()
            .find(|r| r.query == QueryId(id))
            .map(|r| (r.outcome, r.time))
    };
    assert_eq!(
        outcome_of(0).map(|(o, _)| o),
        Some(Outcome::Success),
        "pre-window query unaffected"
    );
    assert_eq!(
        outcome_of(1).map(|(o, _)| o),
        Some(Outcome::Success),
        "deferred query completes after recovery"
    );
    let (o2, t2) = outcome_of(2).unwrap();
    assert_eq!(o2, Outcome::DeadlineMiss, "deadline expired while paused");
    assert!(t2 >= SimTime::from_secs(10));
    assert!(report.faults.deferred_events > 0);
}

#[test]
fn degraded_window_serves_reads_and_drops_applications() {
    // Updates on item 0 every second; a degraded window covers the middle
    // of the run. Queries keep completing (no DMF pile-up) but versions
    // arriving inside the window are never applied.
    let trace = Trace {
        n_items: 1,
        queries: (0..8u64)
            .map(|i| query(i, 2.0 + i as f64 * 2.0, &[0], 0.3, 5.0))
            .collect(),
        updates: vec![update(0, 0, 1.0, 0.1, 0.0)],
    };
    let window = (SimTime::from_secs(6), SimTime::from_secs(12), true);
    let hook = TestFaults {
        windows: vec![window],
        ..TestFaults::default()
    };
    let faulty = SimRun::trace(&trace, ApplyAll, cfg(20))
        .with_faults(Box::new(hook))
        .run();
    let clean = run_simulation(&trace, ApplyAll, cfg(20));
    assert!(faulty.faults.update_drops > 0, "window drops applications");
    assert!(
        faulty.updates_applied.iter().sum::<u64>() < clean.updates_applied.iter().sum::<u64>(),
        "fewer versions applied under degradation"
    );
    // The read path stayed up: every query still got a decision, and none
    // of them stalled into a deadline miss.
    assert_eq!(faulty.counts.total(), 8);
    assert_eq!(faulty.counts.deadline_miss, 0);
    // Staleness is honest: with applications dropped, some queries read
    // stale data that the clean run refreshed.
    assert!(faulty.counts.data_stale >= clean.counts.data_stale);
}

#[test]
fn stream_faults_drop_and_delay_applications() {
    let trace = Trace {
        n_items: 2,
        queries: vec![
            query(0, 18.0, &[0], 0.5, 6.0),
            query(1, 18.5, &[1], 0.5, 6.0),
        ],
        updates: vec![update(0, 0, 2.0, 0.1, 0.0), update(1, 1, 2.0, 0.1, 0.0)],
    };
    let hook = TestFaults {
        drop_items: vec![0],
        delay_items: vec![(1, SimDuration::from_secs_f64(0.5))],
        ..TestFaults::default()
    };
    let report = SimRun::trace(&trace, ApplyAll, cfg(30))
        .with_faults(Box::new(hook))
        .run();
    assert!(report.faults.update_drops > 0, "item 0 versions dropped");
    assert!(report.faults.update_delays > 0, "item 1 versions delayed");
    // Dropped versions never apply; delayed ones still do.
    assert_eq!(report.updates_applied[0], 0);
    assert!(report.updates_applied[1] > 0);
}

#[test]
fn bursts_inject_background_cpu_demand() {
    // One query with a tight deadline; a burst of background work lands
    // just before it and, being update-class, outranks it under the
    // default dual-priority discipline.
    let trace = Trace {
        n_items: 1,
        queries: vec![query(0, 5.0, &[0], 1.0, 1.5)],
        updates: vec![],
    };
    let clean = run_simulation(&trace, ApplyAll, cfg(20));
    assert_eq!(clean.counts.success, 1);
    let hook = TestFaults {
        bursts: vec![(SimTime::from_secs_f64(4.9), 3, SimDuration::from_secs(1))],
        ..TestFaults::default()
    };
    let burst = SimRun::trace(&trace, ApplyAll, cfg(20))
        .with_faults(Box::new(hook))
        .run();
    assert_eq!(burst.faults.background_spawned, 3);
    assert_eq!(
        burst.counts.deadline_miss, 1,
        "background load starves the query past its firm deadline"
    );
    assert!(burst.cpu_busy > clean.cpu_busy, "bursts consume real CPU");
}

#[test]
fn faulty_runs_are_bit_reproducible() {
    let trace = busy_trace();
    let make_hook = || TestFaults {
        windows: vec![
            (SimTime::from_secs(4), SimTime::from_secs(7), false),
            (SimTime::from_secs(12), SimTime::from_secs(15), true),
        ],
        drop_items: vec![1],
        delay_items: vec![(0, SimDuration::from_secs_f64(0.25))],
        bursts: vec![(SimTime::from_secs(9), 2, SimDuration::from_secs_f64(0.5))],
    };
    let a = SimRun::trace(&trace, ApplyAll, cfg(40))
        .with_faults(Box::new(make_hook()))
        .run();
    let b = SimRun::trace(&trace, ApplyAll, cfg(40))
        .with_faults(Box::new(make_hook()))
        .run();
    assert_eq!(report_digest(&a), report_digest(&b));
    assert_eq!(a.outcome_records, b.outcome_records);
    assert_eq!(a.faults, b.faults);
}
