//! Property-based tests for the simulator substrate: event ordering, lock
//! safety, and whole-run invariants over randomly generated traces.

use proptest::prelude::*;
use unit_core::policy::{AdmissionDecision, Policy, UpdateAction};
use unit_core::snapshot::SnapshotView;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, QueryId, QuerySpec, Trace, UpdateSpec, UpdateStreamId};
use unit_sim::events::{Event, EventQueue};
use unit_sim::locks::{LockManager, ReadAcquire, WriteAcquire};
use unit_sim::txn::TxnId;
use unit_sim::{run_simulation, SimConfig};

// ---------------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------------

proptest! {
    /// Events pop in non-decreasing time order, and same-time events pop in
    /// insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t), Event::QueryArrival { spec_idx: i });
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut popped = 0;
        while let Some((t, ev)) = q.pop() {
            popped += 1;
            let Event::QueryArrival { spec_idx } = ev else { unreachable!() };
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(spec_idx > lidx, "same-time events out of insertion order");
                }
            }
            last = Some((t, spec_idx));
        }
        prop_assert_eq!(popped, times.len());
    }
}

// ---------------------------------------------------------------------------
// Lock manager
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum LockOp {
    Read { txn: u64, items: Vec<u8> },
    Write { txn: u64, item: u8, outranks: bool },
    Release { txn: u64 },
}

fn lock_op_strategy() -> impl Strategy<Value = LockOp> {
    prop_oneof![
        (0u64..12, prop::collection::vec(0u8..8, 1..4)).prop_map(|(txn, mut items)| {
            items.sort_unstable();
            items.dedup();
            LockOp::Read { txn, items }
        }),
        (0u64..12, 0u8..8, any::<bool>()).prop_map(|(txn, item, outranks)| LockOp::Write {
            txn,
            item,
            outranks
        }),
        (0u64..12).prop_map(|txn| LockOp::Release { txn }),
    ]
}

proptest! {
    /// Arbitrary acquire/release sequences never violate the lock table's
    /// internal invariants, and a transaction never ends up holding locks
    /// after an HP eviction.
    #[test]
    fn lock_manager_invariants_hold(ops in prop::collection::vec(lock_op_strategy(), 0..200)) {
        let mut lm = LockManager::new(8);
        let mut holding: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for op in ops {
            match op {
                LockOp::Read { txn, items } => {
                    if holding.contains(&txn) {
                        continue; // one acquisition per life, like the engine
                    }
                    let ids: Vec<DataId> = items.iter().map(|&i| DataId(i as u32)).collect();
                    if let ReadAcquire::Granted = lm.acquire_read(TxnId(txn), &ids) {
                        holding.insert(txn);
                    }
                }
                LockOp::Write { txn, item, outranks } => {
                    if holding.contains(&txn) {
                        continue;
                    }
                    match lm.acquire_write(TxnId(txn), DataId(item as u32), |_| outranks) {
                        WriteAcquire::Granted { aborted } => {
                            for v in aborted {
                                prop_assert!(!lm.holds_any(v), "evicted holder kept locks");
                                holding.remove(&v.0);
                            }
                            holding.insert(txn);
                        }
                        WriteAcquire::BlockedOn(_) => {}
                    }
                }
                LockOp::Release { txn } => {
                    lm.release_all(TxnId(txn));
                    holding.remove(&txn);
                }
            }
            lm.check_invariants().map_err(TestCaseError::fail)?;
            for &t in &holding {
                prop_assert!(lm.holds_any(TxnId(t)));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Whole-run invariants over random traces
// ---------------------------------------------------------------------------

/// Admit-all / apply-all policy for randomized end-to-end runs.
struct ApplyAll;

impl Policy for ApplyAll {
    fn name(&self) -> &str {
        "apply-all"
    }
    fn init(&mut self, _: usize, _: &[UpdateSpec]) {}
    fn on_query_arrival(&mut self, _: &QuerySpec, _: &SnapshotView<'_>) -> AdmissionDecision {
        AdmissionDecision::Admit
    }
    fn on_version_arrival(&mut self, _: DataId, _: SimTime, _: &SnapshotView<'_>) -> UpdateAction {
        UpdateAction::Apply
    }
}

fn random_trace_strategy() -> impl Strategy<Value = Trace> {
    let items = 8usize;
    let queries = prop::collection::vec(
        (
            0u64..2_000, // arrival
            1u64..20,    // exec seconds
            2u64..120,   // relative deadline seconds
            prop::collection::vec(0u32..8, 1..4),
        ),
        1..80,
    );
    let updates = prop::collection::vec((0u32..8, 20u64..400, 1u64..30, 0u64..200), 0..8);
    (queries, updates).prop_map(move |(qs, us)| {
        let mut arrivals: Vec<_> = qs;
        arrivals.sort_by_key(|q| q.0);
        let queries = arrivals
            .into_iter()
            .enumerate()
            .map(|(i, (arr, exec, dl, mut items_raw))| {
                items_raw.sort_unstable();
                items_raw.dedup();
                QuerySpec {
                    id: QueryId(i as u64),
                    arrival: SimTime::from_secs(arr),
                    items: items_raw.into_iter().map(DataId).collect(),
                    exec_time: SimDuration::from_secs(exec),
                    relative_deadline: SimDuration::from_secs(dl),
                    freshness_req: 0.9,
                    pref_class: 0,
                }
            })
            .collect();
        let updates = us
            .into_iter()
            .enumerate()
            .map(|(i, (item, period, exec, first))| UpdateSpec {
                id: UpdateStreamId(i as u32),
                item: DataId(item),
                period: SimDuration::from_secs(period),
                exec_time: SimDuration::from_secs(exec),
                first_arrival: SimTime::from_secs(first),
            })
            .collect();
        Trace {
            n_items: items,
            queries,
            updates,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// For any random trace: every query gets exactly one outcome, CPU time
    /// never exceeds wall time, ratios partition, and the run is
    /// deterministic.
    #[test]
    fn random_runs_satisfy_conservation_laws(trace in random_trace_strategy()) {
        let cfg = SimConfig::new(SimDuration::from_secs(2_200));
        let a = run_simulation(&trace, ApplyAll, cfg);
        prop_assert_eq!(a.counts.total() as usize, trace.queries.len());
        let sum: f64 = a.ratios().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(a.cpu_busy.as_secs_f64() <= a.end_time.as_secs_f64() + 1e-9);
        // Apply-all with no admission control never rejects.
        prop_assert_eq!(a.counts.rejected, 0);
        // Determinism.
        let b = run_simulation(&trace, ApplyAll, cfg);
        prop_assert_eq!(a.counts, b.counts);
        prop_assert_eq!(a.cpu_busy, b.cpu_busy);
        // Every emitted version is accounted: applied <= arrived, per item.
        for i in 0..trace.n_items {
            prop_assert!(a.updates_applied[i] <= a.versions_arrived[i]);
        }
    }
}

// ---------------------------------------------------------------------------
// Whole-run invariants with the real policies
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// The full UNIT policy (feedback controller, lottery, admission) upholds
    /// the same conservation laws on arbitrary traces, and stays
    /// deterministic.
    #[test]
    fn unit_policy_random_runs_are_sound(trace in random_trace_strategy(), seed in any::<u64>()) {
        use unit_core::config::UnitConfig;
        use unit_core::unit_policy::UnitPolicy;
        use unit_core::usm::UsmWeights;

        let cfg = SimConfig::new(SimDuration::from_secs(2_200));
        let mk = || UnitPolicy::new(
            UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(seed),
        );
        let a = run_simulation(&trace, mk(), cfg);
        prop_assert_eq!(a.counts.total() as usize, trace.queries.len());
        prop_assert!(a.cpu_busy.as_secs_f64() <= a.end_time.as_secs_f64() + 1e-9);
        let (lo, hi) = UsmWeights::low_high_cfm().range();
        let usm = a.counts.average_usm(&UsmWeights::low_high_cfm());
        prop_assert!(usm >= lo - 1e-9 && usm <= hi + 1e-9);
        for i in 0..trace.n_items {
            prop_assert!(a.updates_applied[i] <= a.versions_arrived[i]);
        }
        // Per-class counts partition the totals.
        let class_total: u64 = a.class_counts.iter().map(unit_core::OutcomeCounts::total).sum();
        prop_assert_eq!(class_total, a.counts.total());

        let b = run_simulation(&trace, mk(), cfg);
        prop_assert_eq!(a.counts, b.counts);
        prop_assert_eq!(a.updates_applied, b.updates_applied);
    }

    /// The baselines uphold their defining guarantees on arbitrary traces:
    /// IMU/ODU never reject and never deliver stale data; QMF conserves
    /// outcomes.
    #[test]
    fn baseline_policies_random_runs_are_sound(trace in random_trace_strategy()) {
        use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};

        let cfg = SimConfig::new(SimDuration::from_secs(2_200));

        let imu = run_simulation(&trace, ImuPolicy::new(), cfg);
        prop_assert_eq!(imu.counts.total() as usize, trace.queries.len());
        prop_assert_eq!(imu.counts.rejected, 0);
        prop_assert_eq!(imu.counts.data_stale, 0, "IMU delivers 100% freshness");

        let odu = run_simulation(&trace, OduPolicy::new(), cfg);
        prop_assert_eq!(odu.counts.total() as usize, trace.queries.len());
        prop_assert_eq!(odu.counts.rejected, 0);
        prop_assert_eq!(odu.counts.data_stale, 0, "ODU delivers 100% freshness");
        let applied: u64 = odu.updates_applied.iter().sum();
        prop_assert_eq!(applied, odu.demand_refreshes);

        let qmf = run_simulation(&trace, QmfPolicy::default(), cfg);
        prop_assert_eq!(qmf.counts.total() as usize, trace.queries.len());
        prop_assert!(qmf.cpu_busy.as_secs_f64() <= qmf.end_time.as_secs_f64() + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Multi-CPU runs uphold the same conservation laws, never exceed the
    /// aggregate CPU budget, and never do worse than fewer CPUs for the
    /// open-loop apply-all policy.
    #[test]
    fn multi_cpu_random_runs_are_sound(trace in random_trace_strategy(), cpus in 2usize..5) {
        let horizon = SimDuration::from_secs(2_200);
        let multi = run_simulation(&trace, ApplyAll, SimConfig::new(horizon).with_cpus(cpus));
        prop_assert_eq!(multi.counts.total() as usize, trace.queries.len());
        prop_assert!(
            multi.cpu_busy.as_secs_f64()
                <= multi.end_time.as_secs_f64() * cpus as f64 + 1e-9
        );
        for i in 0..trace.n_items {
            prop_assert!(multi.updates_applied[i] <= multi.versions_arrived[i]);
        }
        // Determinism holds with concurrency (virtual time, ordered events).
        let again = run_simulation(&trace, ApplyAll, SimConfig::new(horizon).with_cpus(cpus));
        prop_assert_eq!(multi.counts, again.counts);
        prop_assert_eq!(multi.cpu_busy, again.cpu_busy);
        // Near-monotonicity: more CPUs should not lose ground under
        // apply-all. (Strict monotonicity is not a theorem — multiprocessor
        // scheduling anomalies à la Graham exist with locking — so a small
        // tolerance absorbs the rare pathological interleaving.)
        let single = run_simulation(&trace, ApplyAll, SimConfig::new(horizon));
        prop_assert!(
            multi.counts.success + 2 >= single.counts.success,
            "{} cpus: {} << {}",
            cpus,
            multi.counts.success,
            single.counts.success
        );
    }
}
