//! Recovery differential suite (DESIGN.md §4b): a run that crashes with
//! **lose-state** semantics — discarding all volatile state, restoring its
//! last control-boundary checkpoint, and replaying the lost window in
//! virtual time — must end `report_digest`-bit-identical to the same run
//! without the crashes, for all 4 policies × 3 scheduling disciplines on
//! the golden fig3-style workload.
//!
//! The reference run installs the *same* hook with the crashes disarmed:
//! it schedules identical fault-transition events, so the two event tapes
//! match instant for instant and the only difference is the crash/restore
//! cycle itself. The suite also pins the checkpoint codec's byte
//! stability (`checkpoint → restore → checkpoint` is a byte-level fixed
//! point) and the streamed feeder's crash transparency.

use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};
use unit_core::config::UnitConfig;
use unit_core::policy::Policy;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::DataId;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_obs::{ObsEvent, RingRecorder};
use unit_sim::{
    report_digest, BackgroundLoad, FaultHook, HealthState, SchedulingDiscipline, SimConfig, SimRun,
    Simulator, UpdateFault,
};
use unit_workload::{
    QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume,
};

const SCALE: u64 = 8;
const SEED: u64 = 0x5EED_0001;

/// A hook whose only fault is crashing: the server is always healthy, but
/// at each instant in `crashes` it loses all volatile state. Disarmed, it
/// schedules the *same* transition events and does nothing at them —
/// giving the crashed run a reference with an identical event tape.
struct CrashFaults {
    crashes: Vec<SimTime>,
    armed: bool,
}

impl FaultHook for CrashFaults {
    fn transition_times(&self) -> Vec<SimTime> {
        self.crashes.clone()
    }

    fn health(&self, _now: SimTime) -> HealthState {
        HealthState::Up
    }

    fn update_fault(&self, _item: DataId, _now: SimTime) -> UpdateFault {
        UpdateFault::Apply
    }

    fn load_at(&self, _now: SimTime) -> Vec<BackgroundLoad> {
        Vec::new()
    }

    fn lose_state_crashes(&self) -> Vec<SimTime> {
        if self.armed {
            self.crashes.clone()
        } else {
            Vec::new()
        }
    }
}

/// The golden workload at scale=8 (same bundle as the cluster suites).
fn golden_bundle() -> TraceBundle {
    let qcfg = QueryTraceConfig::default().scaled_down(SCALE);
    let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
        .with_total((UpdateVolume::Med.total_updates() / SCALE).max(1));
    TraceBundle::generate(&qcfg, &ucfg)
}

fn sim_config(horizon: SimDuration, discipline: SchedulingDiscipline) -> SimConfig {
    SimConfig::new(horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10))
        .with_discipline(discipline)
        .with_outcome_log()
}

/// Two mid-run crash instants, deliberately off the control-tick grid so
/// each replay window spans real work.
fn crash_times(horizon: SimDuration) -> Vec<SimTime> {
    vec![
        SimTime(horizon.0 * 2 / 5 + 1),
        SimTime(horizon.0 * 7 / 10 + 3),
    ]
}

const DISCIPLINES: [(SchedulingDiscipline, &str); 3] = [
    (SchedulingDiscipline::DualPriorityEdf, "dual"),
    (SchedulingDiscipline::GlobalEdf, "global"),
    (SchedulingDiscipline::QueryFirst, "qfirst"),
];

/// Crashed run == disarmed-reference run, digest for digest, outcome for
/// outcome, across every discipline.
fn recovery_differential<P: Policy>(policy_name: &str, make: impl Fn() -> P) {
    let bundle = golden_bundle();
    let crashes = crash_times(bundle.horizon);
    for (discipline, dname) in DISCIPLINES {
        let cfg = sim_config(bundle.horizon, discipline);
        let reference = SimRun::trace(&bundle.trace, make(), cfg)
            .with_faults(Box::new(CrashFaults {
                crashes: crashes.clone(),
                armed: false,
            }))
            .run();
        let crashed = SimRun::trace(&bundle.trace, make(), cfg)
            .with_faults(Box::new(CrashFaults {
                crashes: crashes.clone(),
                armed: true,
            }))
            .run();
        assert_eq!(
            reference.faults.recoveries, 0,
            "{policy_name}/{dname}: disarmed hook must not recover"
        );
        assert_eq!(
            crashed.faults.recoveries,
            crashes.len() as u64,
            "{policy_name}/{dname}: every crash instant must recover once"
        );
        assert_eq!(
            report_digest(&reference),
            report_digest(&crashed),
            "{policy_name}/{dname}: recovered run diverged from the uncrashed run"
        );
        assert_eq!(
            reference.outcome_records, crashed.outcome_records,
            "{policy_name}/{dname}: outcome stream diverged"
        );
    }
}

#[test]
fn recovery_is_invisible_imu() {
    recovery_differential("IMU", ImuPolicy::new);
}

#[test]
fn recovery_is_invisible_odu() {
    recovery_differential("ODU", OduPolicy::new);
}

#[test]
fn recovery_is_invisible_qmf() {
    recovery_differential("QMF", QmfPolicy::default);
}

#[test]
fn recovery_is_invisible_unit() {
    recovery_differential("UNIT", || {
        UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(SEED))
    });
}

#[test]
fn recovery_emits_the_checkpoint_event_arc() {
    let bundle = golden_bundle();
    let crashes = crash_times(bundle.horizon);
    let cfg = sim_config(bundle.horizon, SchedulingDiscipline::DualPriorityEdf);
    let mut rec = RingRecorder::unbounded();
    let report = SimRun::trace(
        &bundle.trace,
        UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(SEED)),
        cfg,
    )
    .with_faults(Box::new(CrashFaults {
        crashes: crashes.clone(),
        armed: true,
    }))
    .with_observer(&mut rec)
    .run();
    assert_eq!(report.faults.recoveries, crashes.len() as u64);

    let events = rec.into_events();
    let taken: Vec<SimTime> = events
        .iter()
        .filter_map(|e| match e {
            ObsEvent::CheckpointTaken { time, bytes } => {
                assert!(*bytes > 0, "a checkpoint is never empty");
                Some(*time)
            }
            _ => None,
        })
        .collect();
    let restores: Vec<(SimTime, SimTime)> = events
        .iter()
        .filter_map(|e| match e {
            ObsEvent::RestoreBegin { time, checkpoint } => Some((*time, *checkpoint)),
            _ => None,
        })
        .collect();
    let replays: Vec<(SimTime, SimTime)> = events
        .iter()
        .filter_map(|e| match e {
            ObsEvent::ReplayComplete { time, checkpoint } => Some((*time, *checkpoint)),
            _ => None,
        })
        .collect();

    assert!(
        taken.first().is_some_and(|&t| t <= crashes[0]),
        "a checkpoint must precede the first crash"
    );
    assert_eq!(
        restores.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
        crashes,
        "one restore per crash instant"
    );
    for &(crash, ckpt) in &restores {
        assert!(ckpt <= crash, "restores rewind, never fast-forward");
        assert!(taken.contains(&ckpt), "restored from a taken checkpoint");
    }
    assert_eq!(
        replays.len(),
        crashes.len(),
        "every replay window must close"
    );
    for (&(crash, ckpt), &(replayed, from)) in restores.iter().zip(&replays) {
        assert_eq!((replayed, from), (crash, ckpt), "replay closes its crash");
    }
}

#[test]
fn checkpoint_restore_checkpoint_is_byte_stable() {
    let bundle = golden_bundle();
    let cfg = sim_config(bundle.horizon, SchedulingDiscipline::DualPriorityEdf);
    let make =
        || UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(SEED));
    let mid = SimTime(bundle.horizon.0 / 2);

    let mut original = Simulator::new(&bundle.trace, make(), cfg);
    original.step_until(mid);
    let bytes = original.checkpoint();
    assert_eq!(
        original.checkpoint(),
        bytes,
        "checkpointing is non-destructive and deterministic"
    );

    let mut restored = Simulator::new(&bundle.trace, make(), cfg);
    restored.restore(&bytes).expect("own snapshot must restore");
    assert_eq!(
        restored.checkpoint(),
        bytes,
        "checkpoint → restore → checkpoint must be a byte-level fixed point"
    );

    // Both halves of the fork must finish identically.
    while original.step() {}
    while restored.step() {}
    let (a, _) = original.finish();
    let (b, _) = restored.finish();
    assert_eq!(report_digest(&a), report_digest(&b));
    assert_eq!(a.outcome_records, b.outcome_records);

    // And identically to the unforked run.
    let plain = Simulator::new(&bundle.trace, make(), cfg).run();
    assert_eq!(report_digest(&a), report_digest(&plain));
}

#[test]
fn restore_rejects_foreign_shapes() {
    let bundle = golden_bundle();
    let cfg = sim_config(bundle.horizon, SchedulingDiscipline::DualPriorityEdf);
    let make =
        || UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(SEED));
    let mut original = Simulator::new(&bundle.trace, make(), cfg);
    original.step_until(SimTime(bundle.horizon.0 / 4));
    let bytes = original.checkpoint();

    // A streaming simulator has a different store flavour: rejected.
    let mut streaming =
        Simulator::new_streaming(bundle.trace.n_items, &bundle.trace.updates, make(), cfg);
    assert!(
        streaming.restore(&bytes).is_err(),
        "materialized snapshot must not restore into a streaming store"
    );

    // Truncated and trailing bytes are rejected too.
    let mut fresh = Simulator::new(&bundle.trace, make(), cfg);
    assert!(fresh.restore(&bytes[..bytes.len() - 1]).is_err());
    let mut padded = bytes.clone();
    padded.push(0);
    let mut fresh2 = Simulator::new(&bundle.trace, make(), cfg);
    assert!(fresh2.restore(&padded).is_err());
}

#[test]
fn streamed_feed_recovers_identically() {
    // The streaming feeder exercises the input log: arrivals fed after the
    // last checkpoint exist nowhere in the snapshot and must be replayed
    // from the log. A small chunk keeps the feed close to the clock so
    // every crash window actually contains logged arrivals.
    let bundle = golden_bundle();
    let crashes = crash_times(bundle.horizon);
    let cfg = sim_config(bundle.horizon, SchedulingDiscipline::DualPriorityEdf);
    let make =
        || UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(SEED));

    let reference = SimRun::trace(&bundle.trace, make(), cfg)
        .with_faults(Box::new(CrashFaults {
            crashes: crashes.clone(),
            armed: false,
        }))
        .run();
    for chunk in [1usize, 4, 64] {
        let crashed = SimRun::streaming(bundle.trace.n_items, &bundle.trace.updates, make(), cfg)
            .with_faults(Box::new(CrashFaults {
                crashes: crashes.clone(),
                armed: true,
            }))
            .run_streamed(bundle.trace.queries.iter().cloned(), chunk);
        assert_eq!(
            crashed.faults.recoveries,
            crashes.len() as u64,
            "chunk {chunk}: every crash must recover"
        );
        assert_eq!(
            report_digest(&reference),
            report_digest(&crashed),
            "chunk {chunk}: streamed recovery diverged from the uncrashed run"
        );
        assert_eq!(reference.outcome_records, crashed.outcome_records);
    }
}
