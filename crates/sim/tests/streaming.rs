//! Streaming-feed differential suite: the chunked feed path must be
//! bit-identical to the materialized path, for every policy, any chunk
//! size, and any `step_until` pause schedule.
//!
//! The engine keeps same-instant tie-breaking a pure function of the trace
//! by giving arrivals their global query index as the heap sequence number
//! (below every runtime event's); these tests pin the consequence — when a
//! query is *pushed* is unobservable, only when it *arrives* matters.

use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};
use unit_core::config::UnitConfig;
use unit_core::policy::Policy;
use unit_core::time::{SimDuration, SimTime};
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_sim::{report_digest, run_simulation, SchedulingDiscipline, SimConfig, Simulator};
use unit_workload::{
    stream_queries, QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig,
    UpdateVolume,
};

const SCALE: u64 = 32;
const SEED: u64 = 0x57EA_0001;

fn bundle() -> TraceBundle {
    let qcfg = QueryTraceConfig {
        seed: SEED,
        ..QueryTraceConfig::default().scaled_down(SCALE)
    };
    let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
        .with_total((UpdateVolume::Med.total_updates() / SCALE).max(1));
    TraceBundle::generate(&qcfg, &ucfg)
}

fn sim_config(horizon: SimDuration, discipline: SchedulingDiscipline) -> SimConfig {
    SimConfig::new(horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10))
        .with_discipline(discipline)
}

const DISCIPLINES: [SchedulingDiscipline; 3] = [
    SchedulingDiscipline::DualPriorityEdf,
    SchedulingDiscipline::GlobalEdf,
    SchedulingDiscipline::QueryFirst,
];

fn assert_streamed_matches<P: Policy>(make: impl Fn() -> P, name: &str) {
    let b = bundle();
    for discipline in DISCIPLINES {
        let cfg = sim_config(b.horizon, discipline);
        let materialized = run_simulation(&b.trace, make(), cfg);
        let streamed = Simulator::new_streaming(b.trace.n_items, &b.trace.updates, make(), cfg)
            .run_streamed(b.trace.queries.iter().cloned(), 16);
        assert_eq!(
            report_digest(&streamed),
            report_digest(&materialized),
            "{name}/{discipline:?}: streamed feed diverged from materialized run"
        );
        assert_eq!(streamed.query_accesses, materialized.query_accesses);
        assert_eq!(streamed.events_processed, materialized.events_processed);
    }
}

#[test]
fn streamed_feed_matches_materialized_unit() {
    assert_streamed_matches(
        || UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(SEED)),
        "UNIT",
    );
}

#[test]
fn streamed_feed_matches_materialized_imu() {
    assert_streamed_matches(ImuPolicy::new, "IMU");
}

#[test]
fn streamed_feed_matches_materialized_odu() {
    assert_streamed_matches(OduPolicy::new, "ODU");
}

#[test]
fn streamed_feed_matches_materialized_qmf() {
    assert_streamed_matches(QmfPolicy::default, "QMF");
}

#[test]
fn chunk_size_is_unobservable() {
    let b = bundle();
    let cfg = sim_config(b.horizon, SchedulingDiscipline::DualPriorityEdf);
    let make =
        || UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(SEED));
    let baseline = report_digest(&run_simulation(&b.trace, make(), cfg));
    for chunk in [0usize, 1, 3, 64, 10_000] {
        let streamed = Simulator::new_streaming(b.trace.n_items, &b.trace.updates, make(), cfg)
            .run_streamed(b.trace.queries.iter().cloned(), chunk);
        assert_eq!(
            report_digest(&streamed),
            baseline,
            "chunk {chunk} changed the digest"
        );
    }
}

#[test]
fn generation_stream_feeds_the_engine_without_materializing() {
    // End-to-end: workload generation streams straight into the engine —
    // the full query Vec never exists — and the digest still matches the
    // all-materialized pipeline.
    let b = bundle();
    let qcfg = QueryTraceConfig {
        seed: SEED,
        ..QueryTraceConfig::default().scaled_down(SCALE)
    };
    let cfg = sim_config(b.horizon, SchedulingDiscipline::DualPriorityEdf);
    let make =
        || UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(SEED));
    let materialized = run_simulation(&b.trace, make(), cfg);
    let streamed = Simulator::new_streaming(b.trace.n_items, &b.trace.updates, make(), cfg)
        .run_streamed(stream_queries(&qcfg), 32);
    assert_eq!(report_digest(&streamed), report_digest(&materialized));
}

#[test]
fn step_until_pauses_reorder_nothing() {
    let b = bundle();
    let cfg = sim_config(b.horizon, SchedulingDiscipline::DualPriorityEdf);
    let make =
        || UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(SEED));
    let baseline = report_digest(&run_simulation(&b.trace, make(), cfg));
    for epoch_s in [1u64, 37, 1_000] {
        let mut sim = Simulator::new(&b.trace, make(), cfg);
        let epoch = SimDuration::from_secs(epoch_s);
        let mut limit = SimTime::ZERO;
        loop {
            limit += epoch;
            if !sim.step_until(limit) {
                break;
            }
        }
        let (report, _policy) = sim.finish();
        assert_eq!(
            report_digest(&report),
            baseline,
            "epoch {epoch_s}s changed the digest"
        );
    }
}

#[test]
#[should_panic(expected = "trace order")]
fn out_of_order_feed_is_rejected() {
    let b = bundle();
    let cfg = sim_config(b.horizon, SchedulingDiscipline::DualPriorityEdf);
    let policy = UnitPolicy::new(UnitConfig::default());
    let mut sim = Simulator::new_streaming(b.trace.n_items, &b.trace.updates, policy, cfg);
    // Feeding query #1 first violates the id == fed-count contract.
    sim.feed_query(b.trace.queries[1].clone());
}
