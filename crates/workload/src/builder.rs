//! Fluent construction of hand-crafted workloads.
//!
//! The generators in [`crate::cello`] and [`crate::updates`] synthesize the
//! paper's statistical workloads; [`TraceBuilder`] is for the other kind of
//! user — someone modelling a *specific* scenario (a stock ticker, a sensor
//! fleet, a flash crowd) who wants readable, checked construction instead
//! of raw struct literals:
//!
//! ```
//! use unit_workload::builder::TraceBuilder;
//! use unit_core::time::SimDuration;
//!
//! let trace = TraceBuilder::new(8)
//!     // Every item ticks every 300 s, costing 20 s to apply.
//!     .update_stream(0, 300.0, 20.0)
//!     .update_stream(1, 300.0, 20.0)
//!     // A query at t=50 reading items 0 and 1, 2 s of work, 30 s deadline.
//!     .query(50.0, &[0, 1], 2.0, 30.0)
//!     // A strict-freshness query from preference class 1.
//!     .query_with(80.0, &[1], 1.0, 10.0, 0.99, 1)
//!     .build()
//!     .expect("valid trace");
//! assert_eq!(trace.queries.len(), 2);
//! assert_eq!(trace.offered_update_utilization(SimDuration::from_secs(300)), 2.0 * 20.0 / 300.0);
//! ```

use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, QueryId, QuerySpec, SpecError, Trace, UpdateSpec, UpdateStreamId};

/// Default freshness requirement applied by [`TraceBuilder::query`]
/// (the paper's 90%).
pub const DEFAULT_FRESHNESS_REQ: f64 = 0.9;

/// Incremental, checked construction of a [`Trace`].
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    n_items: usize,
    queries: Vec<QuerySpec>,
    updates: Vec<UpdateSpec>,
}

impl TraceBuilder {
    /// Start a workload over a database of `n_items` items.
    pub fn new(n_items: usize) -> Self {
        TraceBuilder {
            n_items,
            queries: Vec::new(),
            updates: Vec::new(),
        }
    }

    /// Add a query: arrival time, read set, execution time, and relative
    /// deadline (all in seconds). Freshness requirement defaults to the
    /// paper's 90%; preference class to 0.
    pub fn query(self, arrival_s: f64, items: &[u32], exec_s: f64, deadline_s: f64) -> Self {
        self.query_with(
            arrival_s,
            items,
            exec_s,
            deadline_s,
            DEFAULT_FRESHNESS_REQ,
            0,
        )
    }

    /// Add a query with an explicit freshness requirement and preference
    /// class.
    pub fn query_with(
        mut self,
        arrival_s: f64,
        items: &[u32],
        exec_s: f64,
        deadline_s: f64,
        freshness_req: f64,
        pref_class: u32,
    ) -> Self {
        let id = QueryId(self.queries.len() as u64);
        self.queries.push(QuerySpec {
            id,
            arrival: SimTime::from_secs_f64(arrival_s),
            items: items.iter().map(|&i| DataId(i)).collect(),
            exec_time: SimDuration::from_secs_f64(exec_s),
            relative_deadline: SimDuration::from_secs_f64(deadline_s),
            freshness_req,
            pref_class,
        });
        self
    }

    /// Add a periodic update stream for `item` with the given source period
    /// and per-application execution time (seconds). The first version
    /// arrives at `period` (use [`TraceBuilder::update_stream_at`] for an
    /// explicit phase).
    pub fn update_stream(self, item: u32, period_s: f64, exec_s: f64) -> Self {
        let phase = period_s;
        self.update_stream_at(item, period_s, exec_s, phase)
    }

    /// Add a periodic update stream with an explicit first-arrival time.
    pub fn update_stream_at(
        mut self,
        item: u32,
        period_s: f64,
        exec_s: f64,
        first_arrival_s: f64,
    ) -> Self {
        let id = UpdateStreamId(self.updates.len() as u32);
        self.updates.push(UpdateSpec {
            id,
            item: DataId(item),
            period: SimDuration::from_secs_f64(period_s),
            exec_time: SimDuration::from_secs_f64(exec_s),
            first_arrival: SimTime::from_secs_f64(first_arrival_s),
        });
        self
    }

    /// Number of queries added so far.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Number of update streams added so far.
    pub fn update_count(&self) -> usize {
        self.updates.len()
    }

    /// Finish: sorts queries by arrival (re-numbering ids to match), then
    /// validates everything against the database size.
    pub fn build(mut self) -> Result<Trace, SpecError> {
        self.queries
            .sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.id.cmp(&b.id)));
        for (i, q) in self.queries.iter_mut().enumerate() {
            q.id = QueryId(i as u64);
        }
        let trace = Trace {
            n_items: self.n_items,
            queries: self.queries,
            updates: self.updates,
        };
        trace.validate()?;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_sorted_validated_trace() {
        let trace = TraceBuilder::new(4)
            .query(20.0, &[1], 1.0, 10.0)
            .query(5.0, &[0, 2], 2.0, 30.0)
            .update_stream(0, 100.0, 5.0)
            .build()
            .expect("valid");
        assert_eq!(trace.queries.len(), 2);
        // Sorted by arrival, ids renumbered.
        assert_eq!(trace.queries[0].arrival, SimTime::from_secs(5));
        assert_eq!(trace.queries[0].id, QueryId(0));
        assert_eq!(trace.queries[1].arrival, SimTime::from_secs(20));
        assert_eq!(trace.queries[1].id, QueryId(1));
        assert_eq!(trace.updates.len(), 1);
        assert_eq!(trace.updates[0].first_arrival, SimTime::from_secs(100));
    }

    #[test]
    fn query_with_sets_freshness_and_class() {
        let trace = TraceBuilder::new(2)
            .query_with(1.0, &[0], 1.0, 5.0, 0.5, 3)
            .build()
            .expect("valid");
        assert_eq!(trace.queries[0].freshness_req, 0.5);
        assert_eq!(trace.queries[0].pref_class, 3);
    }

    #[test]
    fn defaults_match_the_paper() {
        let trace = TraceBuilder::new(2)
            .query(1.0, &[0], 1.0, 5.0)
            .build()
            .expect("valid");
        assert_eq!(trace.queries[0].freshness_req, DEFAULT_FRESHNESS_REQ);
        assert_eq!(trace.queries[0].pref_class, 0);
    }

    #[test]
    fn invalid_traces_are_rejected_at_build() {
        // Out-of-range item.
        let err = TraceBuilder::new(2).query(1.0, &[5], 1.0, 5.0).build();
        assert!(err.is_err());
        // Zero-period update stream.
        let err = TraceBuilder::new(2)
            .query(1.0, &[0], 1.0, 5.0)
            .update_stream(0, 0.0, 1.0)
            .build();
        assert!(err.is_err());
        // Duplicate read-set item.
        let err = TraceBuilder::new(2).query(1.0, &[0, 0], 1.0, 5.0).build();
        assert!(err.is_err());
    }

    #[test]
    fn counts_track_additions() {
        let b = TraceBuilder::new(3)
            .query(1.0, &[0], 1.0, 5.0)
            .update_stream(1, 10.0, 1.0)
            .update_stream(2, 10.0, 1.0);
        assert_eq!(b.query_count(), 1);
        assert_eq!(b.update_count(), 2);
    }
}
