//! Synthetic cello99a-like user-query trace (§4.1).
//!
//! The paper derives queries from HP's `cello99a` disk trace: 110,035 reads
//! over 3,848,104 s, mapped onto 1024 data items, with deadlines drawn
//! between the average response time and 10× the maximal response time and a
//! 90% freshness requirement everywhere. The raw trace is proprietary, so
//! this generator reproduces its load-bearing properties instead
//! (substitution documented in DESIGN.md):
//!
//! * **skewed spatial popularity** — Zipf(1.5) weights assigned to items
//!   through a seeded permutation (the paper's Fig. 3(a) histogram is
//!   strongly skewed but not sorted by id; the >95% update shedding of
//!   Fig. 3(c) requires the cold majority of items to carry negligible
//!   query traffic, which pins the exponent well above 1);
//! * **bursty arrivals** — a Poisson base process plus flash-crowd episodes
//!   (the paper motivates admission control with flash crowds);
//! * **calibrated CPU demand** — log-normal service times with a configured
//!   mean, so the query class offers a known utilization against which the
//!   paper's 15%/75%/150% update volumes are meaningful;
//! * the paper's exact **deadline recipe** and **freshness requirement**.

use crate::dist::{capped_geometric, exponential, log_normal_with_mean, zipf_weights};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use unit_core::lottery::WeightedSampler;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, QueryId, QuerySpec};

/// Configuration of the query-trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryTraceConfig {
    /// Database size `S` (paper: 1024).
    pub n_items: usize,
    /// Trace horizon.
    pub horizon: SimDuration,
    /// Number of user queries to generate.
    pub n_queries: usize,
    /// Zipf exponent of the item-popularity skew.
    pub zipf_exponent: f64,
    /// Mean query execution time, seconds (log-normal).
    pub mean_exec_secs: f64,
    /// Sigma of the underlying normal for execution times.
    pub exec_sigma: f64,
    /// Hard clamp on execution times, seconds.
    pub exec_clamp_secs: (f64, f64),
    /// Maximum read-set size (1 + capped geometric extras).
    pub max_items_per_query: usize,
    /// Continue-probability of the geometric read-set extension.
    pub multi_item_p: f64,
    /// Number of flash-crowd episodes.
    pub burst_count: usize,
    /// Duration of each flash-crowd episode.
    pub burst_duration: SimDuration,
    /// Fraction of all queries arriving inside flash crowds.
    pub burst_query_fraction: f64,
    /// Freshness requirement `qf` for every query (paper: 0.9).
    pub freshness_req: f64,
    /// Number of user-preference classes; each query is assigned a class
    /// uniformly at random (multi-preference extension; 1 = the paper's
    /// single-class setting).
    #[serde(default = "default_pref_classes")]
    pub pref_class_count: u32,
    /// RNG seed.
    pub seed: u64,
}

fn default_pref_classes() -> u32 {
    1
}

impl Default for QueryTraceConfig {
    /// The paper's exact scale: 1024 items, 110,035 queries over
    /// 3,848,104 s (the cello99a footprint). Query service times are ≈1 s
    /// (≈3% utilization — queries are cheap), while updates cost ≈96 s each
    /// (`UpdateTraceConfig` default): that is the only reading under which
    /// Table 1's "30,000 updates = 75% cpu utilization" holds over this
    /// horizon, and it is what makes the evaluation interesting — one
    /// background update blocks the CPU for roughly a whole query deadline.
    fn default() -> Self {
        QueryTraceConfig {
            n_items: 1024,
            horizon: SimDuration::from_secs(3_848_104),
            n_queries: 110_035,
            zipf_exponent: 1.5,
            mean_exec_secs: 1.0,
            exec_sigma: 0.5,
            exec_clamp_secs: (0.1, 10.0),
            max_items_per_query: 4,
            multi_item_p: 0.35,
            burst_count: 20,
            burst_duration: SimDuration::from_secs(1_000),
            burst_query_fraction: 0.10,
            freshness_req: 0.9,
            pref_class_count: 1,
            seed: 0xce110,
        }
    }
}

impl QueryTraceConfig {
    /// A scaled-down config for tests: `scale` divides query count and
    /// horizon (keeping the offered utilization constant).
    pub fn scaled_down(mut self, scale: u64) -> Self {
        assert!(scale >= 1);
        self.n_queries /= scale as usize;
        self.horizon = self.horizon / scale;
        self.burst_count = (self.burst_count as u64 / scale).max(1) as usize;
        self
    }

    /// A scaled-up config for throughput benchmarking: `scale` multiplies
    /// the query count at a *fixed* horizon, so offered load rises with
    /// `scale` (the complement of [`QueryTraceConfig::scaled_down`], which
    /// shrinks both and keeps load constant). Pair with
    /// [`crate::stream::stream_queries`] — at scale 1000 the materialized
    /// trace would hold ~110M heap-allocated read sets.
    pub fn scaled_up(mut self, scale: u64) -> Self {
        assert!(scale >= 1);
        self.n_queries = self.n_queries.saturating_mul(scale as usize);
        self
    }

    /// Offered query-class utilization of the configured trace.
    pub fn offered_utilization(&self) -> f64 {
        self.n_queries as f64 * self.mean_exec_secs / self.horizon.as_secs_f64()
    }
}

/// A generated query trace plus the popularity profile behind it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryTrace {
    /// The queries, sorted by arrival time.
    pub queries: Vec<QuerySpec>,
    /// Normalized per-item access weights the generator drew from (used as
    /// the reference distribution for correlated update traces).
    pub item_weights: Vec<f64>,
    /// The configuration that produced the trace.
    pub config: QueryTraceConfig,
}

/// Generate a query trace.
///
/// # Panics
/// Panics on degenerate configurations (zero items/queries/horizon).
pub fn generate_queries(cfg: &QueryTraceConfig) -> QueryTrace {
    assert!(cfg.n_items > 0, "need at least one data item");
    assert!(cfg.n_queries > 0, "need at least one query");
    assert!(!cfg.horizon.is_zero(), "horizon must be positive");
    assert!(cfg.max_items_per_query >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // --- spatial popularity: permuted Zipf --------------------------------
    let ranked = zipf_weights(cfg.n_items, cfg.zipf_exponent);
    let mut perm: Vec<usize> = (0..cfg.n_items).collect();
    perm.shuffle(&mut rng);
    let mut weights = vec![0.0; cfg.n_items];
    for (rank, &item) in perm.iter().enumerate() {
        weights[item] = ranked[rank];
    }
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    let sampler = WeightedSampler::from_weights(&weights);

    // --- temporal profile: Poisson base + flash crowds --------------------
    let arrivals = generate_arrivals(cfg, &mut rng);

    // --- per-query attributes ---------------------------------------------
    let mut exec_times = Vec::with_capacity(cfg.n_queries);
    let (clamp_lo, clamp_hi) = cfg.exec_clamp_secs;
    for _ in 0..cfg.n_queries {
        let e = log_normal_with_mean(&mut rng, cfg.mean_exec_secs, cfg.exec_sigma)
            .clamp(clamp_lo, clamp_hi);
        exec_times.push(e);
    }
    // Deadline recipe from the paper: uniform between the average response
    // time and 10x the maximal response time (we use the generated execution
    // times as the response-time base).
    let avg_exec = exec_times.iter().sum::<f64>() / exec_times.len() as f64;
    let max_exec = exec_times.iter().copied().fold(0.0_f64, f64::max);
    let deadline_lo = avg_exec;
    let deadline_hi = (10.0 * max_exec).max(deadline_lo + 1.0);

    let mut queries = Vec::with_capacity(cfg.n_queries);
    for (i, (&arrival, &exec)) in arrivals.iter().zip(&exec_times).enumerate() {
        let n_extra = capped_geometric(&mut rng, cfg.multi_item_p, cfg.max_items_per_query - 1);
        let mut items = Vec::with_capacity(1 + n_extra);
        while items.len() < 1 + n_extra {
            // lint: allow(panic) — zipf_weights() returns >= 1 strictly positive weights
            let d = DataId(sampler.sample(&mut rng).expect("non-empty weights") as u32);
            if !items.contains(&d) {
                items.push(d);
            }
        }
        let deadline = rng.gen_range(deadline_lo..deadline_hi);
        let pref_class = if cfg.pref_class_count > 1 {
            rng.gen_range(0..cfg.pref_class_count)
        } else {
            0
        };
        queries.push(QuerySpec {
            id: QueryId(i as u64),
            arrival,
            items,
            exec_time: SimDuration::from_secs_f64(exec),
            relative_deadline: SimDuration::from_secs_f64(deadline),
            freshness_req: cfg.freshness_req,
            pref_class,
        });
    }

    QueryTrace {
        queries,
        item_weights: weights,
        config: *cfg,
    }
}

/// Arrival instants: `burst_query_fraction` of queries land uniformly inside
/// randomly placed flash-crowd windows; the rest follow a Poisson process
/// over the whole horizon. Sorted ascending.
pub(crate) fn generate_arrivals(cfg: &QueryTraceConfig, rng: &mut StdRng) -> Vec<SimTime> {
    let horizon = cfg.horizon.as_secs_f64();
    let burst_len = cfg.burst_duration.as_secs_f64();

    let n_burst = if cfg.burst_count == 0 {
        0
    } else {
        (cfg.n_queries as f64 * cfg.burst_query_fraction).round() as usize
    };
    let n_base = cfg.n_queries - n_burst;

    let mut arrivals: Vec<f64> = Vec::with_capacity(cfg.n_queries);

    // Base Poisson process, thinned to exactly n_base arrivals by rescaling.
    if n_base > 0 {
        let rate = n_base as f64 / horizon;
        let mut t = 0.0;
        while arrivals.len() < n_base {
            t += exponential(rng, rate);
            if t >= horizon {
                // Wrap around: keeps exactly n_base arrivals while preserving
                // exponential gaps locally.
                t -= horizon;
            }
            arrivals.push(t);
        }
    }

    // Flash crowds: uniform within each window; windows placed uniformly.
    if n_burst > 0 && cfg.burst_count > 0 {
        let mut windows = Vec::with_capacity(cfg.burst_count);
        for _ in 0..cfg.burst_count {
            let start = rng.gen_range(0.0..(horizon - burst_len).max(1.0));
            windows.push(start);
        }
        for k in 0..n_burst {
            let w = windows[k % windows.len()];
            arrivals.push(w + rng.gen_range(0.0..burst_len));
        }
    }

    arrivals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    arrivals.into_iter().map(SimTime::from_secs_f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> QueryTraceConfig {
        QueryTraceConfig {
            n_items: 64,
            horizon: SimDuration::from_secs(2_000),
            n_queries: 600,
            seed: 7,
            ..QueryTraceConfig::default()
        }
    }

    #[test]
    fn generates_requested_count_sorted_by_arrival() {
        let t = generate_queries(&small_cfg());
        assert_eq!(t.queries.len(), 600);
        assert!(t.queries.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(t
            .queries
            .iter()
            .all(|q| q.arrival.0 <= SimTime::from_secs(2_000).0));
    }

    #[test]
    fn queries_validate_against_the_database() {
        let cfg = small_cfg();
        let t = generate_queries(&cfg);
        for q in &t.queries {
            q.validate(cfg.n_items)
                .expect("generated query must be valid");
            assert_eq!(q.freshness_req, cfg.freshness_req);
            assert!(q.items.len() <= cfg.max_items_per_query);
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let t = generate_queries(&small_cfg());
        let mut hist = vec![0u64; 64];
        for q in &t.queries {
            for d in &q.items {
                hist[d.index()] += 1;
            }
        }
        let mut sorted = hist.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sorted.iter().sum();
        let top10: u64 = sorted.iter().take(6).sum();
        // Zipf(0.9) over 64 items: the top ~10% of items should carry far
        // more than 10% of accesses.
        assert!(
            top10 as f64 / total as f64 > 0.25,
            "top-6 share {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn item_weights_are_normalized_and_match_skew() {
        let t = generate_queries(&small_cfg());
        let sum: f64 = t.item_weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // The empirical histogram should correlate strongly with the weights.
        let mut hist = vec![0.0f64; 64];
        for q in &t.queries {
            for d in &q.items {
                hist[d.index()] += 1.0;
            }
        }
        let rho = crate::dist::pearson(&t.item_weights, &hist);
        assert!(rho > 0.8, "weights/histogram correlation {rho}");
    }

    #[test]
    fn deadlines_follow_the_paper_recipe() {
        let t = generate_queries(&small_cfg());
        let execs: Vec<f64> = t
            .queries
            .iter()
            .map(|q| q.exec_time.as_secs_f64())
            .collect();
        let avg = execs.iter().sum::<f64>() / execs.len() as f64;
        let max = execs.iter().copied().fold(0.0_f64, f64::max);
        for q in &t.queries {
            let d = q.relative_deadline.as_secs_f64();
            assert!(d >= avg - 1e-9, "deadline {d} below average exec {avg}");
            assert!(
                d <= 10.0 * max + 1e-9,
                "deadline {d} above 10x max exec {max}"
            );
        }
    }

    #[test]
    fn bursts_concentrate_arrivals() {
        let cfg = QueryTraceConfig {
            burst_query_fraction: 0.5,
            burst_count: 2,
            // Keep each flash crowd comparable to the bucket width below:
            // with the default 1000 s windows half the horizon is "burst"
            // and no bucket stands out, regardless of the RNG stream.
            burst_duration: SimDuration::from_secs(100),
            ..small_cfg()
        };
        let t = generate_queries(&cfg);
        // Count arrivals per 100s bucket; the busiest buckets should hold a
        // disproportionate share.
        let mut buckets = [0u64; 20];
        for q in &t.queries {
            let b = (q.arrival.as_secs_f64() / 100.0) as usize;
            buckets[b.min(19)] += 1;
        }
        let total: u64 = buckets.iter().sum();
        let max_bucket = *buckets.iter().max().unwrap();
        assert!(
            max_bucket as f64 / total as f64 > 0.10,
            "no flash crowd visible: max bucket share {}",
            max_bucket as f64 / total as f64
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_queries(&small_cfg());
        let b = generate_queries(&small_cfg());
        assert_eq!(a.queries, b.queries);
        let mut cfg = small_cfg();
        cfg.seed += 1;
        let c = generate_queries(&cfg);
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn offered_utilization_matches_calibration() {
        // Paper scale: ~110k queries x ~1s over 3.85M s ≈ 2.9% of the CPU —
        // queries are cheap; the update volumes carry the load.
        let cfg = QueryTraceConfig::default();
        assert!((cfg.offered_utilization() - 0.0286).abs() < 0.002);
        let t = generate_queries(&QueryTraceConfig {
            n_queries: 2_000,
            horizon: SimDuration::from_secs(8_000),
            ..QueryTraceConfig::default()
        });
        let work: f64 = t.queries.iter().map(|q| q.exec_time.as_secs_f64()).sum();
        let util = work / 8_000.0;
        assert!((util - 0.25).abs() < 0.05, "offered utilization {util}");
    }

    #[test]
    fn burst_free_configs_generate_pure_poisson_arrivals() {
        let cfg = QueryTraceConfig {
            burst_query_fraction: 0.0,
            burst_count: 0,
            ..small_cfg()
        };
        let t = generate_queries(&cfg);
        assert_eq!(t.queries.len(), cfg.n_queries);
        // Interarrival CV of a Poisson process is ~1.
        let gaps: Vec<f64> = t
            .queries
            .windows(2)
            .map(|w| w[1].arrival.saturating_since(w[0].arrival).as_secs_f64())
            .collect();
        let cv = crate::dist::pearson(&gaps, &gaps); // self-correlation sanity
        assert!((cv - 1.0).abs() < 1e-9);
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let sd =
            (gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64).sqrt();
        assert!(
            (sd / mean - 1.0).abs() < 0.2,
            "CV {} not Poisson-like",
            sd / mean
        );
    }

    #[test]
    fn preference_classes_are_assigned_uniformly() {
        let cfg = QueryTraceConfig {
            pref_class_count: 4,
            ..small_cfg()
        };
        let t = generate_queries(&cfg);
        let mut counts = [0usize; 4];
        for q in &t.queries {
            counts[q.pref_class as usize] += 1;
        }
        for (c, &n) in counts.iter().enumerate() {
            assert!(
                n > cfg.n_queries / 8,
                "class {c} underrepresented: {n} of {}",
                cfg.n_queries
            );
        }
    }

    #[test]
    fn scaled_down_configs_shrink_consistently() {
        let cfg = QueryTraceConfig::default().scaled_down(10);
        assert_eq!(cfg.n_queries, 11_003);
        assert_eq!(
            cfg.horizon,
            SimDuration(SimDuration::from_secs(3_848_104).0 / 10)
        );
        let t = generate_queries(&cfg);
        assert_eq!(t.queries.len(), 11_003);
    }
}
