//! Synthesis of update distributions with a target correlation to the query
//! distribution (§4.1: "positive correlation and negative correlation (to
//! the query distribution with a coefficient of 0.8)").
//!
//! Given per-item query weights `w`, we build update weights as a convex
//! mixture of a *signal* component and independent noise:
//!
//! * positive: signal = `w` itself,
//! * negative: signal = the *affine flip* `max(w) − w`, whose Pearson
//!   correlation with `w` is exactly −1. (Merely permuting the weight
//!   multiset cannot reach strong anti-correlation for heavy-tailed `w`:
//!   the negative covariance of any rearrangement is bounded by the small
//!   lower weights.) The flip also reproduces the paper's Fig. 3(c) shape —
//!   "two prominent groups": cold-queried items all receive roughly
//!   `max(w)` (hot updated), hot-queried items receive little (cold
//!   updated).
//!
//! The mixing coefficient is found by bisection until the Pearson
//! correlation of the result against `w` hits the target within tolerance —
//! so every generated trace records an *achieved* coefficient near ±0.8
//! rather than assuming one.

use crate::dist::pearson;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Spatial shape of an update trace relative to the query distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum UpdateDistribution {
    /// Equal expected update volume per item.
    Uniform,
    /// Correlated with the query distribution (ρ ≈ +0.8).
    PositiveCorrelation,
    /// Anti-correlated with the query distribution (ρ ≈ −0.8).
    NegativeCorrelation,
}

impl UpdateDistribution {
    /// Trace-name fragment used by Table 1 ("unif", "pos", "neg").
    pub fn short_name(self) -> &'static str {
        match self {
            UpdateDistribution::Uniform => "unif",
            UpdateDistribution::PositiveCorrelation => "pos",
            UpdateDistribution::NegativeCorrelation => "neg",
        }
    }
}

/// Result of weight synthesis: normalized weights plus the achieved
/// correlation against the reference.
#[derive(Debug, Clone)]
pub struct CorrelatedWeights {
    /// Normalized (sums to 1) per-item weights.
    pub weights: Vec<f64>,
    /// Pearson correlation against the reference distribution.
    pub achieved_rho: f64,
}

/// Build normalized update weights for `distribution` against the reference
/// query weights, targeting `|rho| = target_rho` for the correlated shapes.
///
/// # Panics
/// Panics if `reference` is empty or `target_rho` is outside `(0, 1)`.
pub fn correlated_weights(
    reference: &[f64],
    distribution: UpdateDistribution,
    target_rho: f64,
    seed: u64,
) -> CorrelatedWeights {
    assert!(!reference.is_empty(), "reference distribution is empty");
    assert!(
        target_rho > 0.0 && target_rho < 1.0,
        "target rho must be in (0,1), got {target_rho}"
    );
    let n = reference.len();
    let mut rng = StdRng::seed_from_u64(seed);

    match distribution {
        UpdateDistribution::Uniform => {
            let weights = vec![1.0 / n as f64; n];
            let achieved_rho = pearson(&weights, reference);
            CorrelatedWeights {
                weights,
                achieved_rho,
            }
        }
        UpdateDistribution::PositiveCorrelation => {
            mix_to_target(reference.to_vec(), reference, target_rho, &mut rng)
        }
        UpdateDistribution::NegativeCorrelation => {
            let signal = affine_flip(reference);
            mix_to_target(signal, reference, -target_rho, &mut rng)
        }
    }
}

/// The affine flip `max(w) − w`: non-negative, and its Pearson correlation
/// with `w` is exactly −1 (it is a decreasing affine function of `w`).
fn affine_flip(reference: &[f64]) -> Vec<f64> {
    let max = reference.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    reference.iter().map(|&w| max - w).collect()
}

/// Bisect the mixing coefficient `alpha` in
/// `u = alpha * signal + (1 - alpha) * noise` until `pearson(u, reference)`
/// hits `target` (which may be negative) within tolerance.
fn mix_to_target(
    signal: Vec<f64>,
    reference: &[f64],
    target: f64,
    rng: &mut StdRng,
) -> CorrelatedWeights {
    let n = reference.len();
    let noise: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();

    let signal = normalize(signal);
    let noise = normalize(noise);
    let blend = |alpha: f64| -> Vec<f64> {
        normalize(
            signal
                .iter()
                .zip(&noise)
                .map(|(&s, &z)| alpha * s + (1.0 - alpha) * z)
                .collect(),
        )
    };

    let mut lo = 0.0;
    let mut hi = 1.0;
    let mut best = blend(1.0);
    let mut best_rho = pearson(&best, reference);
    // With alpha=1 the correlation is the extreme the signal can reach; if
    // even that undershoots the target magnitude, keep the extreme.
    if best_rho.abs() >= target.abs() {
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            let cand = blend(mid);
            let rho = pearson(&cand, reference);
            if (rho - target).abs() < (best_rho - target).abs() {
                best = cand.clone();
                best_rho = rho;
            }
            if rho.abs() < target.abs() {
                lo = mid;
            } else {
                hi = mid;
            }
            if (best_rho - target).abs() < 1e-3 {
                break;
            }
        }
    }
    CorrelatedWeights {
        weights: best,
        achieved_rho: best_rho,
    }
}

fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in &mut v {
            *x /= sum;
        }
    }
    v
}

/// Convert normalized weights into integer per-item counts summing exactly
/// to `total` (largest-remainder apportionment).
pub fn apportion_counts(weights: &[f64], total: u64) -> Vec<u64> {
    let mut counts: Vec<u64> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let exact = w * total as f64;
        let floor = exact.floor() as u64;
        counts.push(floor);
        assigned += floor;
        remainders.push((i, exact - floor as f64));
    }
    // Distribute the leftover to the largest remainders (ties by index for
    // determinism).
    remainders.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let leftover = total.saturating_sub(assigned) as usize;
    for &(i, _) in remainders.iter().take(leftover) {
        counts[i] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::zipf_weights;

    fn reference() -> Vec<f64> {
        // A shuffled Zipf-like reference resembling real query skew.
        let mut w = zipf_weights(256, 0.9);
        // Deterministic shuffle-ish rearrangement.
        w.rotate_left(97);
        w
    }

    #[test]
    fn uniform_weights_are_flat() {
        let r = reference();
        let c = correlated_weights(&r, UpdateDistribution::Uniform, 0.8, 1);
        assert!(c.weights.iter().all(|&x| (x - 1.0 / 256.0).abs() < 1e-12));
        assert!(c.achieved_rho.abs() < 1e-6);
    }

    #[test]
    fn positive_correlation_hits_target() {
        let r = reference();
        let c = correlated_weights(&r, UpdateDistribution::PositiveCorrelation, 0.8, 2);
        assert!(
            (c.achieved_rho - 0.8).abs() < 0.02,
            "achieved {}",
            c.achieved_rho
        );
        let sum: f64 = c.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn negative_correlation_hits_target() {
        let r = reference();
        let c = correlated_weights(&r, UpdateDistribution::NegativeCorrelation, 0.8, 3);
        assert!(
            (c.achieved_rho + 0.8).abs() < 0.05,
            "achieved {}",
            c.achieved_rho
        );
        assert!(c.weights.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn affine_flip_is_perfectly_anticorrelated() {
        let r = reference();
        let flip = affine_flip(&r);
        assert!((pearson(&r, &flip) + 1.0).abs() < 1e-9);
        assert!(flip.iter().all(|&x| x >= 0.0));
        // The hottest reference item receives zero flipped weight.
        let hot = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(flip[hot], 0.0);
    }

    #[test]
    fn apportionment_is_exact_and_proportional() {
        let weights = normalize(vec![0.5, 0.25, 0.125, 0.125]);
        let counts = apportion_counts(&weights, 1000);
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        assert_eq!(counts, vec![500, 250, 125, 125]);

        // Awkward fractions still sum exactly.
        let weights = normalize(vec![1.0, 1.0, 1.0]);
        let counts = apportion_counts(&weights, 1000);
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        assert!(counts.iter().all(|&c| c == 333 || c == 334));
    }

    #[test]
    fn apportionment_handles_zero_weights() {
        let counts = apportion_counts(&[0.0, 1.0, 0.0], 10);
        assert_eq!(counts, vec![0, 10, 0]);
    }

    #[test]
    fn short_names_match_table1() {
        assert_eq!(UpdateDistribution::Uniform.short_name(), "unif");
        assert_eq!(UpdateDistribution::PositiveCorrelation.short_name(), "pos");
        assert_eq!(UpdateDistribution::NegativeCorrelation.short_name(), "neg");
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let r = reference();
        let a = correlated_weights(&r, UpdateDistribution::PositiveCorrelation, 0.8, 42);
        let b = correlated_weights(&r, UpdateDistribution::PositiveCorrelation, 0.8, 42);
        assert_eq!(a.weights, b.weights);
        let c = correlated_weights(&r, UpdateDistribution::PositiveCorrelation, 0.8, 43);
        assert_ne!(a.weights, c.weights);
    }
}
