//! Small deterministic sampling primitives used by the generators.
//!
//! `rand` (without `rand_distr`) only ships uniform sampling, so the few
//! distributions the workload needs — normal (Box–Muller), log-normal,
//! exponential, Zipf weights, geometric — are implemented here and unit
//! tested against their analytic moments.

use rand::Rng;

/// One standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A log-normal sample parameterized by the *target mean* of the
/// distribution and the underlying normal's sigma:
/// `mu = ln(mean) − sigma²/2`, so `E[X] = mean` exactly.
pub fn log_normal_with_mean<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    debug_assert!(mean > 0.0 && sigma >= 0.0);
    let mu = mean.ln() - sigma * sigma / 2.0;
    (mu + sigma * standard_normal(rng)).exp()
}

/// An exponential sample with the given rate (mean `1/rate`).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Unnormalized Zipf weights `1/rank^s` for ranks `1..=n`.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect()
}

/// A geometric "number of extra items" sample: counts failures until the
/// first success with continue-probability `p`, capped at `max`.
pub fn capped_geometric<R: Rng + ?Sized>(rng: &mut R, p: f64, max: usize) -> usize {
    let mut k = 0;
    while k < max && rng.gen::<f64>() < p {
        k += 1;
    }
    k
}

/// Pearson correlation coefficient between two equal-length slices.
/// Returns 0 when either side has zero variance.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson requires equal lengths");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn log_normal_hits_target_mean() {
        let mut r = rng();
        let n = 200_000;
        let mean = 2.0;
        let sum: f64 = (0..n)
            .map(|_| log_normal_with_mean(&mut r, mean, 0.5))
            .sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.05, "observed mean {observed}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(log_normal_with_mean(&mut r, 1.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = rng();
        let n = 200_000;
        let rate = 0.25;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, rate)).sum();
        let observed = sum / n as f64;
        assert!((observed - 4.0).abs() < 0.05, "observed mean {observed}");
    }

    #[test]
    fn zipf_weights_decay_by_rank() {
        let w = zipf_weights(4, 1.0);
        assert_eq!(w[0], 1.0);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
        // s = 0 degenerates to uniform.
        assert!(zipf_weights(5, 0.0)
            .iter()
            .all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn capped_geometric_respects_cap_and_mean() {
        let mut r = rng();
        let n = 100_000;
        let max = 3;
        let samples: Vec<usize> = (0..n).map(|_| capped_geometric(&mut r, 0.4, max)).collect();
        assert!(samples.iter().all(|&k| k <= max));
        // Uncapped mean would be p/(1-p) = 2/3; the cap trims it slightly.
        let mean = samples.iter().sum::<usize>() as f64 / n as f64;
        assert!(mean > 0.5 && mean < 0.68, "mean {mean}");
    }

    #[test]
    fn pearson_on_known_vectors() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &down) + 1.0).abs() < 1e-12);
        let flat = [5.0; 4];
        assert_eq!(pearson(&a, &flat), 0.0);
    }
}
