//! # unit-workload — synthetic workload generation
//!
//! The UNIT paper evaluates on traces derived from HP's proprietary
//! `cello99a` disk trace plus nine synthetic update traces (Table 1). This
//! crate synthesizes statistically matched equivalents:
//!
//! * [`cello`] — a cello99a-like query trace: Zipf-skewed item popularity,
//!   flash-crowd bursts on a Poisson base, log-normal service times, the
//!   paper's deadline recipe (uniform in `[avg_resp, 10×max_resp]`) and a
//!   90% freshness requirement.
//! * [`updates`] — Table 1's update traces: {low, med, high} volumes
//!   (6,144 / 30,000 / 61,440 updates ≈ 15% / 75% / 150% CPU) × {uniform,
//!   positively-, negatively-correlated} spatial distributions (ρ ≈ ±0.8).
//! * [`correlate`] — correlation-targeted weight synthesis with bisection to
//!   the requested Pearson coefficient.
//! * [`trace`] — bundle assembly and JSON (de)serialization.
//! * [`partition`] — item ownership + per-shard trace slicing for the
//!   cluster layer.
//! * [`builder`] — fluent, checked construction of hand-crafted scenarios.
//! * [`stats`] — descriptive workload statistics (skew, burstiness, load).
//! * [`dist`] — the deterministic sampling primitives behind all of it.
//!
//! Everything is seeded: the same configuration always yields the same
//! trace, byte for byte.
//!
//! ```
//! use unit_workload::prelude::*;
//! use unit_core::time::SimDuration;
//!
//! let qcfg = QueryTraceConfig {
//!     n_items: 64,
//!     n_queries: 200,
//!     horizon: SimDuration::from_secs(1_000),
//!     ..QueryTraceConfig::default()
//! };
//! let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
//!     .with_total(750);
//! let bundle = TraceBundle::generate(&qcfg, &ucfg);
//! assert_eq!(bundle.name, "med-unif");
//! assert!(bundle.trace.validate().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod cello;
pub mod correlate;
pub mod dist;
pub mod partition;
pub mod stats;
pub mod stream;
pub mod trace;
pub mod updates;

pub use builder::TraceBuilder;
pub use cello::{generate_queries, QueryTrace, QueryTraceConfig};
pub use correlate::{apportion_counts, correlated_weights, CorrelatedWeights, UpdateDistribution};
pub use partition::{
    slice_trace, slice_trace_filtered, slice_trace_replicated, ItemPartition, PartitionError,
    ReplicaMap, UpdateFanout,
};
pub use stats::TraceStats;
pub use stream::{
    read_queries_jsonl, stream_queries, write_queries_jsonl, JsonlError, QueryStream,
};
pub use trace::TraceBundle;
pub use updates::{generate_updates, UpdateTrace, UpdateTraceConfig, UpdateVolume};

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::builder::TraceBuilder;
    pub use crate::cello::{generate_queries, QueryTrace, QueryTraceConfig};
    pub use crate::correlate::UpdateDistribution;
    pub use crate::stream::{stream_queries, QueryStream};
    pub use crate::trace::TraceBundle;
    pub use crate::updates::{generate_updates, UpdateTrace, UpdateTraceConfig, UpdateVolume};
}
