//! Partitioning a trace across cluster shards.
//!
//! A cluster run splits one global [`Trace`] into per-shard traces: every
//! data item has exactly one *owner* shard ([`ItemPartition`]), update
//! streams follow their item to its owner, and queries go wherever the
//! dispatcher routed them. [`slice_trace`] performs the split from a
//! per-query assignment computed by the cluster's routing policy.
//!
//! Shards keep the **global** item-id space (`n_items` is unchanged): a
//! shard simply never sees arrivals for items it does not own. This keeps
//! ids stable across shard counts — no remapping tables — and makes the
//! 1-shard cluster trace *identical* to the global trace, which is what the
//! differential suite pins against the single-server engine.

use unit_core::types::{DataId, Trace};

/// Modulo ownership of data items by shard.
///
/// Item `d` belongs to shard `d mod n_shards`. Deterministic, stateless,
/// and uniform over the id space; with Zipf-popular items spread across
/// ids, it also spreads the hot set (DESIGN.md §3 discusses the limits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemPartition {
    n_shards: usize,
}

impl ItemPartition {
    /// Build a partition over `n_shards` shards.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero.
    pub fn new(n_shards: usize) -> ItemPartition {
        assert!(n_shards > 0, "a cluster needs at least one shard");
        ItemPartition { n_shards }
    }

    /// Number of shards the items are spread over.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard that owns item `d`. O(1).
    pub fn owner(&self, d: DataId) -> usize {
        d.index() % self.n_shards
    }

    /// Deduplicated, ascending list of shards owning at least one of
    /// `items` — the shards *eligible* to serve a query with that read
    /// set. O(|items| + n_shards) via a seen-bitmap, no allocation beyond
    /// the result.
    pub fn eligible_shards(&self, items: &[DataId]) -> Vec<usize> {
        let mut seen = vec![false; self.n_shards];
        for &d in items {
            seen[self.owner(d)] = true;
        }
        seen.iter()
            .enumerate()
            .filter_map(|(s, &hit)| hit.then_some(s))
            .collect()
    }
}

/// A malformed query-to-shard assignment handed to [`slice_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The assignment has a different length than the trace's query list.
    AssignmentLength {
        /// Queries in the trace.
        queries: usize,
        /// Entries in the assignment.
        assigned: usize,
    },
    /// An assignment entry referenced a shard outside `0..n_shards`.
    ShardOutOfRange {
        /// Index of the offending query in the trace.
        query_index: usize,
        /// The out-of-range shard.
        shard: usize,
        /// Number of shards in the partition.
        n_shards: usize,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::AssignmentLength { queries, assigned } => write!(
                f,
                "assignment covers {assigned} queries but the trace has {queries}"
            ),
            PartitionError::ShardOutOfRange {
                query_index,
                shard,
                n_shards,
            } => write!(
                f,
                "query #{query_index} assigned to shard {shard} of {n_shards}"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Split a global trace into one trace per shard.
///
/// Query `i` goes to shard `assignment[i]`; update streams go to their
/// item's owner under `partition`. Relative arrival order is preserved
/// within every shard (a filtered subsequence of a sorted list stays
/// sorted), so each slice is a valid trace. Every query and every update
/// stream lands in exactly one slice — the conservation property the
/// cluster tests check end-to-end. O(N_q + N_u).
pub fn slice_trace(
    trace: &Trace,
    assignment: &[usize],
    partition: &ItemPartition,
) -> Result<Vec<Trace>, PartitionError> {
    check_assignment(trace, assignment, partition.n_shards())?;
    let mut shards = empty_slices(trace, partition.n_shards());
    for (q, &s) in trace.queries.iter().zip(assignment) {
        shards[s].queries.push(q.clone());
    }
    for u in &trace.updates {
        shards[partition.owner(u.item)].updates.push(u.clone());
    }
    Ok(shards)
}

/// Update-stream routing statistics reported by [`slice_trace_filtered`],
/// surfaced in BENCH_cluster.json so routing regressions are visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateFanout {
    /// Update streams in the global trace.
    pub total_streams: usize,
    /// Streams each shard received after filtering.
    pub kept_per_shard: Vec<usize>,
    /// Streams dropped cluster-wide: their owner shard serves no query
    /// that reads the item, so the stream could only burn CPU there.
    pub dropped_streams: usize,
}

impl UpdateFanout {
    /// Streams that survived filtering, across all shards.
    pub fn kept(&self) -> usize {
        self.kept_per_shard.iter().sum()
    }
}

/// [`slice_trace`] plus *demand filtering* of update streams: an update
/// stream for item `d` is routed to `owner(d)` only if some query assigned
/// to that shard reads `d`. Streams nobody co-located reads are dropped —
/// on their owner shard they would only spawn update transactions that
/// compete with queries for CPU, and no other shard ever sees them under
/// ownership routing anyway.
///
/// **This is a lossy optimization**: dropped streams change the owner
/// shard's CPU contention, `versions_arrived`/`updates_applied` histograms
/// and `cpu_busy`, so per-shard `report_digest`s differ from the unfiltered
/// slicing even at one shard. Use it for throughput experiments
/// (`ClusterConfig::filter_updates`), never for differential pinning.
/// O(N_q·r + N_u + n_shards·S) where `r` is the mean read-set size.
pub fn slice_trace_filtered(
    trace: &Trace,
    assignment: &[usize],
    partition: &ItemPartition,
) -> Result<(Vec<Trace>, UpdateFanout), PartitionError> {
    check_assignment(trace, assignment, partition.n_shards())?;
    let n = partition.n_shards();
    // Which items each shard actually reads.
    let mut read = vec![false; n * trace.n_items];
    for (q, &s) in trace.queries.iter().zip(assignment) {
        for &d in &q.items {
            read[s * trace.n_items + d.index()] = true;
        }
    }
    let mut shards = empty_slices(trace, n);
    let mut fanout = UpdateFanout {
        total_streams: trace.updates.len(),
        kept_per_shard: vec![0; n],
        dropped_streams: 0,
    };
    for (q, &s) in trace.queries.iter().zip(assignment) {
        shards[s].queries.push(q.clone());
    }
    for u in &trace.updates {
        let s = partition.owner(u.item);
        if read[s * trace.n_items + u.item.index()] {
            shards[s].updates.push(u.clone());
            fanout.kept_per_shard[s] += 1;
        } else {
            fanout.dropped_streams += 1;
        }
    }
    Ok((shards, fanout))
}

fn check_assignment(
    trace: &Trace,
    assignment: &[usize],
    n_shards: usize,
) -> Result<(), PartitionError> {
    if assignment.len() != trace.queries.len() {
        return Err(PartitionError::AssignmentLength {
            queries: trace.queries.len(),
            assigned: assignment.len(),
        });
    }
    if let Some((query_index, &shard)) =
        assignment.iter().enumerate().find(|&(_, &s)| s >= n_shards)
    {
        return Err(PartitionError::ShardOutOfRange {
            query_index,
            shard,
            n_shards,
        });
    }
    Ok(())
}

fn empty_slices(trace: &Trace, n_shards: usize) -> Vec<Trace> {
    (0..n_shards)
        .map(|_| Trace {
            n_items: trace.n_items,
            queries: Vec::new(),
            updates: Vec::new(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::time::{SimDuration, SimTime};
    use unit_core::types::{QueryId, QuerySpec, UpdateSpec, UpdateStreamId};

    fn query(id: u64, arrival: u64, items: &[u32]) -> QuerySpec {
        QuerySpec {
            id: QueryId(id),
            arrival: SimTime::from_secs(arrival),
            items: items.iter().map(|&i| DataId(i)).collect(),
            exec_time: SimDuration::from_secs(1),
            relative_deadline: SimDuration::from_secs(10),
            freshness_req: 0.9,
            pref_class: 0,
        }
    }

    fn update(id: u32, item: u32) -> UpdateSpec {
        UpdateSpec {
            id: UpdateStreamId(id),
            item: DataId(item),
            period: SimDuration::from_secs(60),
            exec_time: SimDuration::from_secs(2),
            first_arrival: SimTime::ZERO,
        }
    }

    fn trace() -> Trace {
        Trace {
            n_items: 8,
            queries: vec![
                query(0, 1, &[0, 1]),
                query(1, 2, &[2]),
                query(2, 2, &[3, 5]),
                query(3, 4, &[6]),
            ],
            updates: vec![update(0, 0), update(1, 1), update(2, 5), update(3, 6)],
        }
    }

    #[test]
    fn ownership_is_modular_and_total() {
        let p = ItemPartition::new(3);
        for i in 0..32 {
            assert_eq!(p.owner(DataId(i)), (i as usize) % 3);
        }
        assert_eq!(ItemPartition::new(1).owner(DataId(31)), 0);
    }

    #[test]
    fn eligible_shards_dedup_and_sort() {
        let p = ItemPartition::new(4);
        // items 1, 5 -> shard 1 (twice); item 2 -> shard 2.
        assert_eq!(
            p.eligible_shards(&[DataId(5), DataId(2), DataId(1)]),
            vec![1, 2]
        );
        assert_eq!(ItemPartition::new(1).eligible_shards(&[DataId(7)]), vec![0]);
    }

    #[test]
    fn slices_conserve_queries_and_updates() {
        let t = trace();
        let p = ItemPartition::new(2);
        let shards = slice_trace(&t, &[0, 1, 0, 1], &p).unwrap();
        assert_eq!(shards.len(), 2);
        // Every query in exactly one shard, order preserved.
        let ids: Vec<u64> = shards
            .iter()
            .flat_map(|s| s.queries.iter().map(|q| q.id.0))
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert_eq!(shards[0].queries[0].id, QueryId(0));
        assert_eq!(shards[0].queries[1].id, QueryId(2));
        // Updates follow ownership: items 0, 6 -> shard 0; 1, 5 -> shard 1.
        let u0: Vec<u32> = shards[0].updates.iter().map(|u| u.item.0).collect();
        let u1: Vec<u32> = shards[1].updates.iter().map(|u| u.item.0).collect();
        assert_eq!(u0, vec![0, 6]);
        assert_eq!(u1, vec![1, 5]);
        // Slices keep the global id space and stay valid traces.
        for s in &shards {
            assert_eq!(s.n_items, 8);
            s.validate().unwrap();
        }
    }

    #[test]
    fn one_shard_slice_is_the_identity() {
        let t = trace();
        let p = ItemPartition::new(1);
        let shards = slice_trace(&t, &[0, 0, 0, 0], &p).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0], t);
    }

    #[test]
    fn filtered_slices_drop_unread_streams() {
        let t = trace();
        let p = ItemPartition::new(2);
        // Queries 0,2 -> shard 0 read {0,1,3,5}; queries 1,3 -> shard 1
        // read {2,6}. Stream owners (item mod 2): 0,6 -> shard 0; 1,5 ->
        // shard 1. Only item 0 is read *on its owner*: item 6's reader runs
        // on shard 1 (which never sees shard-0 updates), and items 1/5 are
        // read only on shard 0 while their streams land on shard 1.
        let (shards, fanout) = slice_trace_filtered(&t, &[0, 1, 0, 1], &p).unwrap();
        let u0: Vec<u32> = shards[0].updates.iter().map(|u| u.item.0).collect();
        let u1: Vec<u32> = shards[1].updates.iter().map(|u| u.item.0).collect();
        assert_eq!(u0, vec![0]);
        assert_eq!(u1, Vec::<u32>::new());
        assert_eq!(fanout.total_streams, 4);
        assert_eq!(fanout.kept_per_shard, vec![1, 0]);
        assert_eq!(fanout.dropped_streams, 3);
        assert_eq!(fanout.kept(), 1);
        // Queries are routed exactly as in the unfiltered slicing.
        let plain = slice_trace(&t, &[0, 1, 0, 1], &p).unwrap();
        for (f, u) in shards.iter().zip(&plain) {
            assert_eq!(f.queries, u.queries);
            f.validate().unwrap();
        }
    }

    #[test]
    fn filtered_one_shard_keeps_exactly_the_read_streams() {
        let t = trace();
        let p = ItemPartition::new(1);
        // The single shard reads {0,1,2,3,5,6}; every update item (0,1,5,6)
        // is read, so filtering is the identity here.
        let (shards, fanout) = slice_trace_filtered(&t, &[0, 0, 0, 0], &p).unwrap();
        assert_eq!(shards[0], t);
        assert_eq!(fanout.dropped_streams, 0);
    }

    #[test]
    fn filtered_rejects_malformed_assignments_like_plain() {
        let t = trace();
        let p = ItemPartition::new(2);
        assert!(matches!(
            slice_trace_filtered(&t, &[0, 1], &p),
            Err(PartitionError::AssignmentLength { .. })
        ));
        assert!(matches!(
            slice_trace_filtered(&t, &[0, 1, 2, 0], &p),
            Err(PartitionError::ShardOutOfRange { shard: 2, .. })
        ));
    }

    #[test]
    fn malformed_assignments_are_rejected() {
        let t = trace();
        let p = ItemPartition::new(2);
        assert_eq!(
            slice_trace(&t, &[0, 1], &p),
            Err(PartitionError::AssignmentLength {
                queries: 4,
                assigned: 2
            })
        );
        assert_eq!(
            slice_trace(&t, &[0, 1, 2, 0], &p),
            Err(PartitionError::ShardOutOfRange {
                query_index: 2,
                shard: 2,
                n_shards: 2
            })
        );
    }
}
