//! Partitioning a trace across cluster shards.
//!
//! A cluster run splits one global [`Trace`] into per-shard traces: every
//! data item has exactly one *owner* shard ([`ItemPartition`]), update
//! streams follow their item to its owner, and queries go wherever the
//! dispatcher routed them. [`slice_trace`] performs the split from a
//! per-query assignment computed by the cluster's routing policy.
//!
//! Shards keep the **global** item-id space (`n_items` is unchanged): a
//! shard simply never sees arrivals for items it does not own. This keeps
//! ids stable across shard counts — no remapping tables — and makes the
//! 1-shard cluster trace *identical* to the global trace, which is what the
//! differential suite pins against the single-server engine.

use unit_core::types::{DataId, Trace};

/// Modulo ownership of data items by shard.
///
/// Item `d` belongs to shard `d mod n_shards`. Deterministic, stateless,
/// and uniform over the id space; with Zipf-popular items spread across
/// ids, it also spreads the hot set (DESIGN.md §3 discusses the limits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemPartition {
    n_shards: usize,
}

impl ItemPartition {
    /// Build a partition over `n_shards` shards.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero.
    pub fn new(n_shards: usize) -> ItemPartition {
        assert!(n_shards > 0, "a cluster needs at least one shard");
        ItemPartition { n_shards }
    }

    /// Number of shards the items are spread over.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard that owns item `d`. O(1).
    pub fn owner(&self, d: DataId) -> usize {
        d.index() % self.n_shards
    }

    /// Deduplicated, ascending list of shards owning at least one of
    /// `items` — the shards *eligible* to serve a query with that read
    /// set. O(|items| + n_shards) via a seen-bitmap, no allocation beyond
    /// the result.
    pub fn eligible_shards(&self, items: &[DataId]) -> Vec<usize> {
        let mut seen = vec![false; self.n_shards];
        for &d in items {
            // lint: allow(D6) — owner() is a modulo by n_shards
            seen[self.owner(d)] = true;
        }
        seen.iter()
            .enumerate()
            .filter_map(|(s, &hit)| hit.then_some(s))
            .collect()
    }
}

/// Strided-ring leader/follower placement of data items over shards.
///
/// Item `d`'s **leader** is its modulo owner (`d mod n_shards`, matching
/// [`ItemPartition`]); its `factor - 1` **followers** sit at
/// `(leader + k·stride) mod n_shards` for `k = 1..factor`. `stride = 1` is
/// the classic ring placement; larger strides spread an item's replica set
/// across the ring so correlated shard failures hit fewer replicas of the
/// same item. With `factor = 1` the map degenerates to plain ownership and
/// every function below agrees with [`ItemPartition`] exactly — the anchor
/// for the replication differential suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaMap {
    n_shards: usize,
    factor: usize,
    stride: usize,
}

impl ReplicaMap {
    /// Build a placement of `factor` replicas per item over `n_shards`
    /// shards with the given follower stride.
    ///
    /// # Panics
    /// Panics if the placement is invalid: zero shards, zero factor,
    /// `factor > n_shards`, or a slot collision (two replicas of one item
    /// on the same shard — see [`ReplicaMap::collision_slot`]). Callers
    /// with untrusted parameters should validate via `collision_slot`
    /// first; the cluster layer surfaces these as typed config errors.
    pub fn new(n_shards: usize, factor: usize, stride: usize) -> ReplicaMap {
        assert!(n_shards > 0, "a cluster needs at least one shard");
        assert!(
            factor > 0,
            "an item needs at least one replica (its leader)"
        );
        assert!(
            factor <= n_shards,
            "replication factor {factor} exceeds {n_shards} shards"
        );
        assert!(
            ReplicaMap::collision_slot(n_shards, factor, stride).is_none(),
            "replica placement collides: stride {stride} revisits a shard \
             within {factor} slots on a {n_shards}-shard ring"
        );
        ReplicaMap {
            n_shards,
            factor,
            stride,
        }
    }

    /// The degenerate factor-1 map: leaders only, no followers. Equivalent
    /// to [`ItemPartition::new`] for every query below.
    pub fn solo(n_shards: usize) -> ReplicaMap {
        ReplicaMap::new(n_shards, 1, 1)
    }

    /// First follower slot `k` in `1..factor` whose shard coincides with an
    /// earlier replica of the same item, or `None` if the placement is
    /// collision-free. Placement is translation-invariant (every leader
    /// sees the same slot offsets), so checking leader 0 covers all items.
    /// O(factor).
    pub fn collision_slot(n_shards: usize, factor: usize, stride: usize) -> Option<usize> {
        if n_shards == 0 || factor == 0 {
            return None;
        }
        let mut seen = vec![false; n_shards];
        seen[0] = true; // lint: allow(D6) — n_shards > 0 was just checked
        for k in 1..factor {
            let slot = (k * stride) % n_shards;
            // lint: allow(D6) — slot is a modulo by n_shards
            if seen[slot] {
                return Some(k);
            }
            seen[slot] = true; // lint: allow(D6) — slot < n_shards as above
        }
        None
    }

    /// Number of shards the replicas are spread over.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Replicas per item (leader included).
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Ring distance between consecutive replicas of one item.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The shard leading item `d` — identical to [`ItemPartition::owner`].
    /// O(1).
    pub fn leader(&self, d: DataId) -> usize {
        d.index() % self.n_shards
    }

    /// The shard holding follower slot `k` (`1 <= k < factor`) of item `d`.
    /// O(1).
    pub fn follower(&self, d: DataId, k: usize) -> usize {
        debug_assert!(k >= 1 && k < self.factor);
        (self.leader(d) + k * self.stride) % self.n_shards
    }

    /// All shards hosting item `d`, leader first then followers in slot
    /// order. O(factor).
    pub fn replicas(&self, d: DataId) -> impl Iterator<Item = usize> + '_ {
        let leader = self.leader(d);
        (0..self.factor).map(move |k| (leader + k * self.stride) % self.n_shards)
    }

    /// True when shard `s` hosts item `d` as a *follower* (not its
    /// leader). O(factor).
    pub fn follows(&self, s: usize, d: DataId) -> bool {
        (1..self.factor).any(|k| self.follower(d, k) == s)
    }

    /// True when shard `s` hosts any replica of item `d`. O(factor).
    pub fn hosts(&self, s: usize, d: DataId) -> bool {
        self.leader(d) == s || self.follows(s, d)
    }
}

/// A malformed query-to-shard assignment handed to [`slice_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The assignment has a different length than the trace's query list.
    AssignmentLength {
        /// Queries in the trace.
        queries: usize,
        /// Entries in the assignment.
        assigned: usize,
    },
    /// An assignment entry referenced a shard outside `0..n_shards`.
    ShardOutOfRange {
        /// Index of the offending query in the trace.
        query_index: usize,
        /// The out-of-range shard.
        shard: usize,
        /// Number of shards in the partition.
        n_shards: usize,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::AssignmentLength { queries, assigned } => write!(
                f,
                "assignment covers {assigned} queries but the trace has {queries}"
            ),
            PartitionError::ShardOutOfRange {
                query_index,
                shard,
                n_shards,
            } => write!(
                f,
                "query #{query_index} assigned to shard {shard} of {n_shards}"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Split a global trace into one trace per shard.
///
/// Query `i` goes to shard `assignment[i]`; update streams go to their
/// item's owner under `partition`. Relative arrival order is preserved
/// within every shard (a filtered subsequence of a sorted list stays
/// sorted), so each slice is a valid trace. Every query and every update
/// stream lands in exactly one slice — the conservation property the
/// cluster tests check end-to-end. O(N_q + N_u).
pub fn slice_trace(
    trace: &Trace,
    assignment: &[usize],
    partition: &ItemPartition,
) -> Result<Vec<Trace>, PartitionError> {
    check_assignment(trace, assignment, partition.n_shards())?;
    let mut shards = empty_slices(trace, partition.n_shards());
    for (q, &s) in trace.queries.iter().zip(assignment) {
        // lint: allow(D6) — check_assignment bounds every entry by n_shards
        shards[s].queries.push(q.clone());
    }
    for u in &trace.updates {
        // lint: allow(D6) — owner() is a modulo by n_shards
        shards[partition.owner(u.item)].updates.push(u.clone());
    }
    Ok(shards)
}

/// Update-stream routing statistics reported by [`slice_trace_filtered`],
/// surfaced in BENCH_cluster.json so routing regressions are visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateFanout {
    /// Update streams in the global trace.
    pub total_streams: usize,
    /// Streams each shard received after filtering.
    pub kept_per_shard: Vec<usize>,
    /// Streams dropped cluster-wide: their owner shard serves no query
    /// that reads the item, so the stream could only burn CPU there.
    pub dropped_streams: usize,
}

impl UpdateFanout {
    /// Streams that survived filtering, across all shards.
    pub fn kept(&self) -> usize {
        self.kept_per_shard.iter().sum()
    }
}

/// [`slice_trace`] plus *demand filtering* of update streams: an update
/// stream for item `d` is routed to `owner(d)` only if some query assigned
/// to that shard reads `d`. Streams nobody co-located reads are dropped —
/// on their owner shard they would only spawn update transactions that
/// compete with queries for CPU, and no other shard ever sees them under
/// ownership routing anyway.
///
/// **This is a lossy optimization**: dropped streams change the owner
/// shard's CPU contention, `versions_arrived`/`updates_applied` histograms
/// and `cpu_busy`, so per-shard `report_digest`s differ from the unfiltered
/// slicing even at one shard. Use it for throughput experiments
/// (`ClusterConfig::filter_updates`), never for differential pinning.
///
/// Demand is judged **per hosting shard**, not per owner: this function is
/// the factor-1 special case of [`slice_trace_replicated`], which keeps a
/// stream copy wherever *some replica* of the item serves a reader. An
/// earlier owner-only implementation would silently starve follower
/// placements (the copy a follower needed was dropped because the *leader*
/// had no co-located reader) — pinned by
/// `filtered_slicing_must_not_starve_followers` below.
/// O(N_q·r + N_u + n_shards·S) where `r` is the mean read-set size.
pub fn slice_trace_filtered(
    trace: &Trace,
    assignment: &[usize],
    partition: &ItemPartition,
) -> Result<(Vec<Trace>, UpdateFanout), PartitionError> {
    slice_trace_replicated(
        trace,
        assignment,
        &ReplicaMap::solo(partition.n_shards()),
        true,
    )
}

/// Replication-aware trace slicing: every update stream is fanned out to
/// **all** shards hosting its item under `map` (leader first, then
/// followers in slot order), each copy keeping the global stream id; query
/// `i` still goes to shard `assignment[i]`. With `filter` set, a copy is
/// kept on a hosting shard only if some query assigned *to that shard*
/// reads the item — the per-replica generalization of demand filtering, so
/// a stream a follower placement needs survives even when the leader has
/// no co-located reader.
///
/// Within each slice the global update order is preserved (each shard gets
/// at most one copy per stream — the placement is collision-free), so a
/// factor-1 map reproduces [`slice_trace`] (unfiltered) or
/// [`slice_trace_filtered`] (filtered) byte for byte.
///
/// [`UpdateFanout`] counts *copies*: `kept() + dropped_streams` equals
/// `total_streams × factor`. O(N_q·r + N_u·factor + n_shards·S).
pub fn slice_trace_replicated(
    trace: &Trace,
    assignment: &[usize],
    map: &ReplicaMap,
    filter: bool,
) -> Result<(Vec<Trace>, UpdateFanout), PartitionError> {
    check_assignment(trace, assignment, map.n_shards())?;
    let n = map.n_shards();
    // Which items each shard actually reads (only consulted when filtering).
    let mut read = vec![false; if filter { n * trace.n_items } else { 0 }];
    if filter {
        for (q, &s) in trace.queries.iter().zip(assignment) {
            for &d in &q.items {
                // lint: allow(D6) — s < n_shards (check_assignment), d.index() < n_items (trace invariant)
                read[s * trace.n_items + d.index()] = true;
            }
        }
    }
    let mut shards = empty_slices(trace, n);
    let mut fanout = UpdateFanout {
        total_streams: trace.updates.len(),
        kept_per_shard: vec![0; n],
        dropped_streams: 0,
    };
    for (q, &s) in trace.queries.iter().zip(assignment) {
        // lint: allow(D6) — check_assignment bounds every entry by n_shards
        shards[s].queries.push(q.clone());
    }
    for u in &trace.updates {
        for s in map.replicas(u.item) {
            // lint: allow(D6) — replicas() yields shard ids < n_shards
            if !filter || read[s * trace.n_items + u.item.index()] {
                // lint: allow(D6) — s < n_shards as above
                shards[s].updates.push(u.clone());
                fanout.kept_per_shard[s] += 1; // lint: allow(D6) — s < n_shards
            } else {
                fanout.dropped_streams += 1;
            }
        }
    }
    Ok((shards, fanout))
}

fn check_assignment(
    trace: &Trace,
    assignment: &[usize],
    n_shards: usize,
) -> Result<(), PartitionError> {
    if assignment.len() != trace.queries.len() {
        return Err(PartitionError::AssignmentLength {
            queries: trace.queries.len(),
            assigned: assignment.len(),
        });
    }
    if let Some((query_index, &shard)) =
        assignment.iter().enumerate().find(|&(_, &s)| s >= n_shards)
    {
        return Err(PartitionError::ShardOutOfRange {
            query_index,
            shard,
            n_shards,
        });
    }
    Ok(())
}

fn empty_slices(trace: &Trace, n_shards: usize) -> Vec<Trace> {
    (0..n_shards)
        .map(|_| Trace {
            n_items: trace.n_items,
            queries: Vec::new(),
            updates: Vec::new(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::time::{SimDuration, SimTime};
    use unit_core::types::{QueryId, QuerySpec, UpdateSpec, UpdateStreamId};

    fn query(id: u64, arrival: u64, items: &[u32]) -> QuerySpec {
        QuerySpec {
            id: QueryId(id),
            arrival: SimTime::from_secs(arrival),
            items: items.iter().map(|&i| DataId(i)).collect(),
            exec_time: SimDuration::from_secs(1),
            relative_deadline: SimDuration::from_secs(10),
            freshness_req: 0.9,
            pref_class: 0,
        }
    }

    fn update(id: u32, item: u32) -> UpdateSpec {
        UpdateSpec {
            id: UpdateStreamId(id),
            item: DataId(item),
            period: SimDuration::from_secs(60),
            exec_time: SimDuration::from_secs(2),
            first_arrival: SimTime::ZERO,
        }
    }

    fn trace() -> Trace {
        Trace {
            n_items: 8,
            queries: vec![
                query(0, 1, &[0, 1]),
                query(1, 2, &[2]),
                query(2, 2, &[3, 5]),
                query(3, 4, &[6]),
            ],
            updates: vec![update(0, 0), update(1, 1), update(2, 5), update(3, 6)],
        }
    }

    #[test]
    fn ownership_is_modular_and_total() {
        let p = ItemPartition::new(3);
        for i in 0..32 {
            assert_eq!(p.owner(DataId(i)), (i as usize) % 3);
        }
        assert_eq!(ItemPartition::new(1).owner(DataId(31)), 0);
    }

    #[test]
    fn eligible_shards_dedup_and_sort() {
        let p = ItemPartition::new(4);
        // items 1, 5 -> shard 1 (twice); item 2 -> shard 2.
        assert_eq!(
            p.eligible_shards(&[DataId(5), DataId(2), DataId(1)]),
            vec![1, 2]
        );
        assert_eq!(ItemPartition::new(1).eligible_shards(&[DataId(7)]), vec![0]);
    }

    #[test]
    fn slices_conserve_queries_and_updates() {
        let t = trace();
        let p = ItemPartition::new(2);
        let shards = slice_trace(&t, &[0, 1, 0, 1], &p).unwrap();
        assert_eq!(shards.len(), 2);
        // Every query in exactly one shard, order preserved.
        let ids: Vec<u64> = shards
            .iter()
            .flat_map(|s| s.queries.iter().map(|q| q.id.0))
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert_eq!(shards[0].queries[0].id, QueryId(0));
        assert_eq!(shards[0].queries[1].id, QueryId(2));
        // Updates follow ownership: items 0, 6 -> shard 0; 1, 5 -> shard 1.
        let u0: Vec<u32> = shards[0].updates.iter().map(|u| u.item.0).collect();
        let u1: Vec<u32> = shards[1].updates.iter().map(|u| u.item.0).collect();
        assert_eq!(u0, vec![0, 6]);
        assert_eq!(u1, vec![1, 5]);
        // Slices keep the global id space and stay valid traces.
        for s in &shards {
            assert_eq!(s.n_items, 8);
            s.validate().unwrap();
        }
    }

    #[test]
    fn one_shard_slice_is_the_identity() {
        let t = trace();
        let p = ItemPartition::new(1);
        let shards = slice_trace(&t, &[0, 0, 0, 0], &p).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0], t);
    }

    #[test]
    fn filtered_slices_drop_unread_streams() {
        let t = trace();
        let p = ItemPartition::new(2);
        // Queries 0,2 -> shard 0 read {0,1,3,5}; queries 1,3 -> shard 1
        // read {2,6}. Stream owners (item mod 2): 0,6 -> shard 0; 1,5 ->
        // shard 1. Only item 0 is read *on its owner*: item 6's reader runs
        // on shard 1 (which never sees shard-0 updates), and items 1/5 are
        // read only on shard 0 while their streams land on shard 1.
        let (shards, fanout) = slice_trace_filtered(&t, &[0, 1, 0, 1], &p).unwrap();
        let u0: Vec<u32> = shards[0].updates.iter().map(|u| u.item.0).collect();
        let u1: Vec<u32> = shards[1].updates.iter().map(|u| u.item.0).collect();
        assert_eq!(u0, vec![0]);
        assert_eq!(u1, Vec::<u32>::new());
        assert_eq!(fanout.total_streams, 4);
        assert_eq!(fanout.kept_per_shard, vec![1, 0]);
        assert_eq!(fanout.dropped_streams, 3);
        assert_eq!(fanout.kept(), 1);
        // Queries are routed exactly as in the unfiltered slicing.
        let plain = slice_trace(&t, &[0, 1, 0, 1], &p).unwrap();
        for (f, u) in shards.iter().zip(&plain) {
            assert_eq!(f.queries, u.queries);
            f.validate().unwrap();
        }
    }

    #[test]
    fn filtered_one_shard_keeps_exactly_the_read_streams() {
        let t = trace();
        let p = ItemPartition::new(1);
        // The single shard reads {0,1,2,3,5,6}; every update item (0,1,5,6)
        // is read, so filtering is the identity here.
        let (shards, fanout) = slice_trace_filtered(&t, &[0, 0, 0, 0], &p).unwrap();
        assert_eq!(shards[0], t);
        assert_eq!(fanout.dropped_streams, 0);
    }

    #[test]
    fn filtered_rejects_malformed_assignments_like_plain() {
        let t = trace();
        let p = ItemPartition::new(2);
        assert!(matches!(
            slice_trace_filtered(&t, &[0, 1], &p),
            Err(PartitionError::AssignmentLength { .. })
        ));
        assert!(matches!(
            slice_trace_filtered(&t, &[0, 1, 2, 0], &p),
            Err(PartitionError::ShardOutOfRange { shard: 2, .. })
        ));
    }

    #[test]
    fn replica_map_places_leader_then_strided_followers() {
        let m = ReplicaMap::new(4, 3, 1);
        // Item 5: leader 1, followers 2, 3.
        let d = DataId(5);
        assert_eq!(m.leader(d), 1);
        assert_eq!(m.replicas(d).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(m.hosts(1, d) && m.hosts(2, d) && m.hosts(3, d));
        assert!(!m.hosts(0, d));
        assert!(m.follows(2, d) && m.follows(3, d));
        assert!(!m.follows(1, d), "the leader is not a follower of itself");
        // Strided placement wraps around the ring.
        let s = ReplicaMap::new(5, 3, 2);
        assert_eq!(s.replicas(DataId(4)).collect::<Vec<_>>(), vec![4, 1, 3]);
    }

    #[test]
    fn replica_map_factor_one_agrees_with_item_partition() {
        let m = ReplicaMap::solo(3);
        let p = ItemPartition::new(3);
        for i in 0..32 {
            let d = DataId(i);
            assert_eq!(m.leader(d), p.owner(d));
            assert_eq!(m.replicas(d).collect::<Vec<_>>(), vec![p.owner(d)]);
            assert!(!m.follows(p.owner(d), d));
        }
    }

    #[test]
    fn replica_collisions_are_detected() {
        // 4 shards, stride 2: slots 0, 2, 0 -> slot 2 collides with leader.
        assert_eq!(ReplicaMap::collision_slot(4, 3, 2), Some(2));
        // stride 0 collides immediately.
        assert_eq!(ReplicaMap::collision_slot(4, 2, 0), Some(1));
        // Ring placement never collides while factor <= n_shards.
        assert_eq!(ReplicaMap::collision_slot(4, 4, 1), None);
        assert_eq!(ReplicaMap::collision_slot(5, 3, 2), None);
        // factor 1 has nothing to collide with.
        assert_eq!(ReplicaMap::collision_slot(1, 1, 7), None);
    }

    #[test]
    fn replicated_slices_fan_out_updates_to_followers() {
        let t = trace();
        let m = ReplicaMap::new(2, 2, 1);
        let (shards, fanout) = slice_trace_replicated(&t, &[0, 1, 0, 1], &m, false).unwrap();
        // Every stream lands on both shards (factor 2 over 2 shards), in
        // global order, with ids untouched.
        for s in &shards {
            let items: Vec<u32> = s.updates.iter().map(|u| u.item.0).collect();
            assert_eq!(items, vec![0, 1, 5, 6]);
            s.validate().unwrap();
        }
        assert_eq!(fanout.total_streams, 4);
        assert_eq!(fanout.kept_per_shard, vec![4, 4]);
        assert_eq!(fanout.dropped_streams, 0);
        assert_eq!(fanout.kept(), fanout.total_streams * m.factor());
    }

    #[test]
    fn replicated_factor_one_is_plain_slicing_bit_for_bit() {
        let t = trace();
        let assignment = [0, 1, 0, 1];
        let p = ItemPartition::new(2);
        let m = ReplicaMap::solo(2);
        let plain = slice_trace(&t, &assignment, &p).unwrap();
        let (unfiltered, _) = slice_trace_replicated(&t, &assignment, &m, false).unwrap();
        assert_eq!(unfiltered, plain);
        let (filtered_old, fan_old) = slice_trace_filtered(&t, &assignment, &p).unwrap();
        let (filtered_new, fan_new) = slice_trace_replicated(&t, &assignment, &m, true).unwrap();
        assert_eq!(filtered_new, filtered_old);
        assert_eq!(fan_new, fan_old);
    }

    /// Satellite regression (written first, against the owner-only demand
    /// filter): item 5's leader is shard 1, but its only reader (query 2)
    /// runs on shard 0 — which *follows* item 5 under a factor-2 ring.
    /// Owner-only filtering dropped the stream everywhere, starving the
    /// follower; replica-aware filtering must keep the follower's copy.
    #[test]
    fn filtered_slicing_must_not_starve_followers() {
        let t = trace();
        let assignment = [0, 1, 0, 1];
        let m = ReplicaMap::new(2, 2, 1);
        let (shards, fanout) = slice_trace_replicated(&t, &assignment, &m, true).unwrap();
        // Shard 0 reads {0,1,3,5}; it leads {0,6} and follows {1,5}.
        // Kept on shard 0: 0 (led + read), 1 and 5 (followed + read).
        let u0: Vec<u32> = shards[0].updates.iter().map(|u| u.item.0).collect();
        assert_eq!(u0, vec![0, 1, 5]);
        assert!(
            u0.contains(&5),
            "follower copy of item 5 must survive demand filtering"
        );
        // Shard 1 reads {2,6}; it leads {1,5} and follows {0,6}: only the
        // followed copy of 6 is read there.
        let u1: Vec<u32> = shards[1].updates.iter().map(|u| u.item.0).collect();
        assert_eq!(u1, vec![6]);
        // 8 copies total (4 streams x factor 2), 4 kept.
        assert_eq!(fanout.kept_per_shard, vec![3, 1]);
        assert_eq!(fanout.dropped_streams, 4);
        // The owner-only factor-1 filter (correct for plain clusters) keeps
        // only item 0 — the behaviour the replicated path must not inherit.
        let (old, _) = slice_trace_filtered(&t, &assignment, &ItemPartition::new(2)).unwrap();
        assert_eq!(
            old[0].updates.iter().map(|u| u.item.0).collect::<Vec<_>>(),
            vec![0]
        );
        assert!(old[1].updates.is_empty());
    }

    #[test]
    fn replicated_rejects_malformed_assignments_like_plain() {
        let t = trace();
        let m = ReplicaMap::new(2, 2, 1);
        assert!(matches!(
            slice_trace_replicated(&t, &[0, 1], &m, true),
            Err(PartitionError::AssignmentLength { .. })
        ));
        assert!(matches!(
            slice_trace_replicated(&t, &[0, 1, 2, 0], &m, false),
            Err(PartitionError::ShardOutOfRange { shard: 2, .. })
        ));
    }

    #[test]
    fn malformed_assignments_are_rejected() {
        let t = trace();
        let p = ItemPartition::new(2);
        assert_eq!(
            slice_trace(&t, &[0, 1], &p),
            Err(PartitionError::AssignmentLength {
                queries: 4,
                assigned: 2
            })
        );
        assert_eq!(
            slice_trace(&t, &[0, 1, 2, 0], &p),
            Err(PartitionError::ShardOutOfRange {
                query_index: 2,
                shard: 2,
                n_shards: 2
            })
        );
    }
}
