//! Descriptive statistics for workloads: the numbers that let you check a
//! synthesized trace against the properties the paper's experiments rely on
//! (skew, burstiness, load), and that `tracegen` prints.

use serde::{Deserialize, Serialize};
use unit_core::time::SimDuration;
use unit_core::types::Trace;

/// Summary statistics of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of data items.
    pub n_items: usize,
    /// Number of queries.
    pub n_queries: usize,
    /// Number of update streams.
    pub n_update_streams: usize,
    /// Offered query-class utilization.
    pub query_utilization: f64,
    /// Offered update-class utilization.
    pub update_utilization: f64,
    /// Gini coefficient of the per-item query-access distribution
    /// (0 = uniform, →1 = all accesses on one item).
    pub access_gini: f64,
    /// Share of accesses landing on the top 10% of items.
    pub top_decile_access_share: f64,
    /// Coefficient of variation of query interarrival times (1 ≈ Poisson,
    /// ≫1 = bursty).
    pub interarrival_cv: f64,
    /// Mean query execution time, seconds.
    pub mean_exec_secs: f64,
    /// Mean relative deadline, seconds.
    pub mean_deadline_secs: f64,
    /// Mean ratio of deadline to execution time (scheduling slack).
    pub mean_slack_factor: f64,
    /// Mean update execution time, seconds (0 without streams).
    pub mean_update_exec_secs: f64,
}

/// Gini coefficient of a non-negative distribution (0 for uniform or empty).
pub fn gini(values: &[u64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let total: u64 = values.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable();
    // G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n, with 1-based i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Coefficient of variation (σ/μ) of a sample; 0 for fewer than two points.
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

impl TraceStats {
    /// Compute the statistics of `trace` over `horizon`.
    pub fn of(trace: &Trace, horizon: SimDuration) -> TraceStats {
        let access = trace.query_access_histogram();
        let total_access: u64 = access.iter().sum();
        let mut sorted = access.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u64 = sorted.iter().take((sorted.len() / 10).max(1)).sum();

        let interarrivals: Vec<f64> = trace
            .queries
            .windows(2)
            .map(|w| w[1].arrival.saturating_since(w[0].arrival).as_secs_f64())
            .collect();

        let execs: Vec<f64> = trace
            .queries
            .iter()
            .map(|q| q.exec_time.as_secs_f64())
            .collect();
        let deadlines: Vec<f64> = trace
            .queries
            .iter()
            .map(|q| q.relative_deadline.as_secs_f64())
            .collect();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let slack: Vec<f64> = trace
            .queries
            .iter()
            .map(|q| q.relative_deadline.as_secs_f64() / q.exec_time.as_secs_f64().max(1e-9))
            .collect();
        let update_execs: Vec<f64> = trace
            .updates
            .iter()
            .map(|u| u.exec_time.as_secs_f64())
            .collect();

        TraceStats {
            n_items: trace.n_items,
            n_queries: trace.queries.len(),
            n_update_streams: trace.updates.len(),
            query_utilization: trace.offered_query_utilization(horizon),
            update_utilization: trace.offered_update_utilization(horizon),
            access_gini: gini(&access),
            top_decile_access_share: if total_access == 0 {
                0.0
            } else {
                top_decile as f64 / total_access as f64
            },
            interarrival_cv: coefficient_of_variation(&interarrivals),
            mean_exec_secs: mean(&execs),
            mean_deadline_secs: mean(&deadlines),
            mean_slack_factor: mean(&slack),
            mean_update_exec_secs: mean(&update_execs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::{generate_queries, QueryTraceConfig};

    #[test]
    fn gini_of_uniform_is_near_zero_and_of_concentrated_near_one() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        let uniform = [10u64; 100];
        assert!(gini(&uniform).abs() < 1e-9);
        let mut concentrated = [0u64; 100];
        concentrated[0] = 1000;
        assert!(gini(&concentrated) > 0.98);
        // Monotone: more skew, more Gini.
        let mild = [5u64, 5, 5, 5, 20];
        let wild = [1u64, 1, 1, 1, 36];
        assert!(gini(&wild) > gini(&mild));
    }

    #[test]
    fn cv_detects_burstiness() {
        // Regular arrivals: CV 0.
        let regular = [5.0f64; 50];
        assert!(coefficient_of_variation(&regular) < 1e-9);
        // Bursty: long gaps + clusters.
        let mut bursty = vec![0.01f64; 48];
        bursty.push(100.0);
        bursty.push(100.0);
        assert!(coefficient_of_variation(&bursty) > 2.0);
        assert_eq!(coefficient_of_variation(&[1.0]), 0.0);
    }

    #[test]
    fn stats_of_a_hand_built_trace() {
        let trace = TraceBuilder::new(4)
            .query(0.0, &[0], 2.0, 10.0)
            .query(10.0, &[0], 2.0, 20.0)
            .query(20.0, &[1], 2.0, 30.0)
            .update_stream(2, 50.0, 5.0)
            .build()
            .unwrap();
        let s = TraceStats::of(&trace, SimDuration::from_secs(100));
        assert_eq!(s.n_queries, 3);
        assert_eq!(s.n_update_streams, 1);
        assert!((s.mean_exec_secs - 2.0).abs() < 1e-9);
        assert!((s.mean_deadline_secs - 20.0).abs() < 1e-9);
        assert!((s.mean_slack_factor - 10.0).abs() < 1e-9);
        assert!((s.query_utilization - 0.06).abs() < 1e-9);
        assert!((s.mean_update_exec_secs - 5.0).abs() < 1e-9);
        // Regular spacing: no burstiness.
        assert!(s.interarrival_cv < 1e-9);
    }

    #[test]
    fn generated_traces_show_the_calibrated_properties() {
        let cfg = QueryTraceConfig {
            n_items: 256,
            n_queries: 4_000,
            horizon: unit_core::time::SimDuration::from_secs(140_000),
            ..QueryTraceConfig::default()
        };
        let t = generate_queries(&cfg);
        let trace = Trace {
            n_items: cfg.n_items,
            queries: t.queries,
            updates: vec![],
        };
        let s = TraceStats::of(&trace, cfg.horizon);
        // Zipf(1.5) skew: heavy concentration.
        assert!(s.access_gini > 0.6, "gini {}", s.access_gini);
        assert!(
            s.top_decile_access_share > 0.5,
            "top decile {}",
            s.top_decile_access_share
        );
        // Flash crowds make arrivals (mildly, at this scale) super-Poisson.
        assert!(s.interarrival_cv >= 1.0, "cv {}", s.interarrival_cv);
        // ~1s executions with generous deadlines.
        assert!(
            (s.mean_exec_secs - 1.0).abs() < 0.15,
            "{}",
            s.mean_exec_secs
        );
        assert!(s.mean_slack_factor > 10.0);
    }
}
