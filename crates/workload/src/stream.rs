//! Streaming trace ingestion: generate or parse queries one at a time.
//!
//! The materialized path ([`crate::cello::generate_queries`]) builds the full
//! `Vec<QuerySpec>` up front — fine at the paper's 110k queries, but a
//! scale-1000 run is ~110M queries and each spec carries a heap-allocated
//! read set. This module provides the constant-overhead alternative:
//!
//! * [`QueryStream`] — an iterator that yields the *exact same* specs as
//!   `generate_queries`, in the same order, bit for bit (enforced by a
//!   property test across seeds × scales × workload families). Only the
//!   arrival instants and execution times are precomputed (16 bytes per
//!   query — the paper's deadline recipe needs the whole execution-time
//!   population for its `[avg, 10×max]` bounds); read sets, deadlines and
//!   preference classes are drawn lazily from the continuing RNG stream.
//! * [`write_queries_jsonl`] / [`read_queries_jsonl`] — line-delimited JSON
//!   persistence that never holds more than one spec in memory on either
//!   side, for feeding externally recorded traces into
//!   `unit_sim::Simulator::run_streamed`.
//!
//! Both halves compose with the engine's chunked feed: the simulator's peak
//! footprint becomes O(live transactions), not O(trace length).

use crate::cello::{generate_arrivals, QueryTraceConfig};
use crate::dist::{capped_geometric, log_normal_with_mean, zipf_weights};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, Write};
use unit_core::lottery::WeightedSampler;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, QueryId, QuerySpec};

/// Lazily generates the query trace of a [`QueryTraceConfig`].
///
/// Construction runs the generator's *population-level* phases (popularity
/// permutation, arrival process, execution-time draws, deadline bounds);
/// each [`Iterator::next`] call then performs only that query's per-spec
/// draws. `stream_queries(cfg).collect::<Vec<_>>()` equals
/// `generate_queries(cfg).queries` exactly.
#[derive(Debug, Clone)]
pub struct QueryStream {
    rng: StdRng,
    sampler: WeightedSampler,
    item_weights: Vec<f64>,
    arrivals: Vec<SimTime>,
    exec_times: Vec<f64>,
    deadline_lo: f64,
    deadline_hi: f64,
    multi_item_p: f64,
    max_items_per_query: usize,
    freshness_req: f64,
    pref_class_count: u32,
    next: usize,
}

/// Start streaming the queries of `cfg`.
///
/// # Panics
/// Panics on degenerate configurations (zero items/queries/horizon), exactly
/// like [`crate::cello::generate_queries`].
pub fn stream_queries(cfg: &QueryTraceConfig) -> QueryStream {
    assert!(cfg.n_items > 0, "need at least one data item");
    assert!(cfg.n_queries > 0, "need at least one query");
    assert!(!cfg.horizon.is_zero(), "horizon must be positive");
    assert!(cfg.max_items_per_query >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Phases 1–4 mirror generate_queries draw for draw; the stream-identity
    // property test (tests/stream_identity.rs) pins the equivalence.
    let ranked = zipf_weights(cfg.n_items, cfg.zipf_exponent);
    let mut perm: Vec<usize> = (0..cfg.n_items).collect();
    perm.shuffle(&mut rng);
    let mut weights = vec![0.0; cfg.n_items];
    for (rank, &item) in perm.iter().enumerate() {
        weights[item] = ranked[rank];
    }
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    let sampler = WeightedSampler::from_weights(&weights);

    let arrivals = generate_arrivals(cfg, &mut rng);

    let mut exec_times = Vec::with_capacity(cfg.n_queries);
    let (clamp_lo, clamp_hi) = cfg.exec_clamp_secs;
    for _ in 0..cfg.n_queries {
        let e = log_normal_with_mean(&mut rng, cfg.mean_exec_secs, cfg.exec_sigma)
            .clamp(clamp_lo, clamp_hi);
        exec_times.push(e);
    }
    let avg_exec = exec_times.iter().sum::<f64>() / exec_times.len() as f64;
    let max_exec = exec_times.iter().copied().fold(0.0_f64, f64::max);
    let deadline_lo = avg_exec;
    let deadline_hi = (10.0 * max_exec).max(deadline_lo + 1.0);

    QueryStream {
        rng,
        sampler,
        item_weights: weights,
        arrivals,
        exec_times,
        deadline_lo,
        deadline_hi,
        multi_item_p: cfg.multi_item_p,
        max_items_per_query: cfg.max_items_per_query,
        freshness_req: cfg.freshness_req,
        pref_class_count: cfg.pref_class_count,
        next: 0,
    }
}

impl QueryStream {
    /// Normalized per-item access weights the stream draws read sets from —
    /// the same profile [`crate::cello::QueryTrace::item_weights`] reports.
    pub fn item_weights(&self) -> &[f64] {
        &self.item_weights
    }

    /// Queries not yet yielded.
    pub fn remaining(&self) -> usize {
        self.arrivals.len() - self.next
    }
}

impl Iterator for QueryStream {
    type Item = QuerySpec;

    fn next(&mut self) -> Option<QuerySpec> {
        if self.next >= self.arrivals.len() {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let arrival = self.arrivals[i];
        let exec = self.exec_times[i];
        let n_extra = capped_geometric(
            &mut self.rng,
            self.multi_item_p,
            self.max_items_per_query - 1,
        );
        let mut items = Vec::with_capacity(1 + n_extra);
        while items.len() < 1 + n_extra {
            let d = DataId(
                self.sampler
                    .sample(&mut self.rng)
                    // lint: allow(panic) — zipf_weights() returns >= 1 strictly positive weights
                    .expect("non-empty weights") as u32,
            );
            if !items.contains(&d) {
                items.push(d);
            }
        }
        let deadline = self.rng.gen_range(self.deadline_lo..self.deadline_hi);
        let pref_class = if self.pref_class_count > 1 {
            self.rng.gen_range(0..self.pref_class_count)
        } else {
            0
        };
        Some(QuerySpec {
            id: QueryId(i as u64),
            arrival,
            items,
            exec_time: SimDuration::from_secs_f64(exec),
            relative_deadline: SimDuration::from_secs_f64(deadline),
            freshness_req: self.freshness_req,
            pref_class,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for QueryStream {}

/// Failure while reading a JSONL query trace.
#[derive(Debug)]
pub enum JsonlError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A line was not a valid `QuerySpec` (1-based line number attached).
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// The deserialization failure.
        source: serde_json::Error,
    },
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonlError::Io(e) => write!(f, "jsonl read failed: {e}"),
            JsonlError::Parse { line, source } => {
                write!(f, "jsonl line {line}: invalid QuerySpec: {source}")
            }
        }
    }
}

impl std::error::Error for JsonlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JsonlError::Io(e) => Some(e),
            JsonlError::Parse { source, .. } => Some(source),
        }
    }
}

/// Serialize queries as line-delimited JSON, one [`QuerySpec`] per line,
/// holding only one spec at a time. Pairs with [`read_queries_jsonl`].
pub fn write_queries_jsonl<W: Write>(
    mut out: W,
    queries: impl IntoIterator<Item = QuerySpec>,
) -> std::io::Result<()> {
    for q in queries {
        let line = serde_json::to_string(&q).map_err(std::io::Error::other)?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Parse a line-delimited JSON query trace lazily: each call to the
/// returned iterator reads and decodes exactly one line. Blank lines are
/// skipped so hand-edited files round-trip.
pub fn read_queries_jsonl<R: BufRead>(
    reader: R,
) -> impl Iterator<Item = Result<QuerySpec, JsonlError>> {
    reader
        .lines()
        .enumerate()
        .filter_map(|(idx, line)| match line {
            Err(e) => Some(Err(JsonlError::Io(e))),
            Ok(l) if l.trim().is_empty() => None,
            Ok(l) => Some(
                serde_json::from_str(&l).map_err(|source| JsonlError::Parse {
                    line: idx + 1,
                    source,
                }),
            ),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cello::generate_queries;

    fn small_cfg() -> QueryTraceConfig {
        QueryTraceConfig {
            n_items: 64,
            horizon: SimDuration::from_secs(2_000),
            n_queries: 400,
            seed: 11,
            ..QueryTraceConfig::default()
        }
    }

    #[test]
    fn stream_matches_materialized_generation() {
        let cfg = small_cfg();
        let eager = generate_queries(&cfg);
        let stream = stream_queries(&cfg);
        assert_eq!(stream.item_weights(), eager.item_weights.as_slice());
        let lazy: Vec<QuerySpec> = stream.collect();
        assert_eq!(lazy, eager.queries);
    }

    #[test]
    fn stream_reports_exact_size() {
        let cfg = small_cfg();
        let mut s = stream_queries(&cfg);
        assert_eq!(s.len(), 400);
        assert_eq!(s.remaining(), 400);
        s.next();
        assert_eq!(s.remaining(), 399);
        assert_eq!(s.size_hint(), (399, Some(399)));
    }

    #[test]
    fn jsonl_round_trips() {
        let cfg = small_cfg();
        let eager = generate_queries(&cfg).queries;
        let mut buf = Vec::new();
        write_queries_jsonl(&mut buf, eager.iter().cloned()).expect("write");
        let back: Vec<QuerySpec> = read_queries_jsonl(buf.as_slice())
            .collect::<Result<_, _>>()
            .expect("parse");
        assert_eq!(back, eager);
    }

    #[test]
    fn jsonl_skips_blank_lines_and_reports_bad_ones() {
        let cfg = small_cfg();
        let q = generate_queries(&cfg).queries[0].clone();
        let mut buf = Vec::new();
        write_queries_jsonl(&mut buf, [q.clone()]).expect("write");
        buf.extend_from_slice(b"\n\nnot json\n");
        let parsed: Vec<Result<QuerySpec, JsonlError>> =
            read_queries_jsonl(buf.as_slice()).collect();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].as_ref().expect("first record ok"), &q);
        match &parsed[1] {
            Err(JsonlError::Parse { line, .. }) => assert_eq!(*line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
