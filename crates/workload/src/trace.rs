//! Trace assembly and (de)serialization.
//!
//! [`TraceBundle`] pairs a generated query trace with one update trace and
//! the resulting [`Trace`] the simulator consumes, carrying the achieved
//! statistics (utilizations, correlation) so experiments can report what
//! they actually ran on. Bundles serialize to JSON for inspection and reuse.

use crate::cello::{generate_queries, QueryTrace, QueryTraceConfig};
use crate::updates::{generate_updates, UpdateTrace, UpdateTraceConfig};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;
use unit_core::time::SimDuration;
use unit_core::types::Trace;

/// A fully generated workload: queries + updates + derived statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceBundle {
    /// Table 1-style trace name, e.g. "med-unif".
    pub name: String,
    /// The simulator-facing trace.
    pub trace: Trace,
    /// Workload horizon.
    pub horizon: SimDuration,
    /// Normalized per-item query weights used as the reference distribution.
    pub query_weights: Vec<f64>,
    /// Achieved update/query correlation.
    pub achieved_rho: f64,
    /// Offered query-class utilization.
    pub query_utilization: f64,
    /// Offered update-class utilization.
    pub update_utilization: f64,
}

impl TraceBundle {
    /// Combine pre-generated query and update traces.
    pub fn assemble(queries: QueryTrace, updates: UpdateTrace) -> TraceBundle {
        let horizon = queries.config.horizon;
        let trace = Trace {
            n_items: queries.config.n_items,
            queries: queries.queries,
            updates: updates.updates,
        };
        let query_utilization = trace.offered_query_utilization(horizon);
        let update_utilization = trace.offered_update_utilization(horizon);
        TraceBundle {
            name: updates.config.trace_name(),
            trace,
            horizon,
            query_weights: queries.item_weights,
            achieved_rho: updates.achieved_rho,
            query_utilization,
            update_utilization,
        }
    }

    /// Generate a bundle from the two configurations.
    pub fn generate(qcfg: &QueryTraceConfig, ucfg: &UpdateTraceConfig) -> TraceBundle {
        let queries = generate_queries(qcfg);
        let updates = generate_updates(ucfg, &queries.item_weights, qcfg.horizon);
        TraceBundle::assemble(queries, updates)
    }

    /// Combined offered utilization (query + update classes).
    pub fn offered_load(&self) -> f64 {
        self.query_utilization + self.update_utilization
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<TraceBundle> {
        serde_json::from_str(s)
    }

    /// Write the bundle to a file as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = self
            .to_json()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Load a bundle from a JSON file.
    pub fn load(path: &Path) -> io::Result<TraceBundle> {
        let s = std::fs::read_to_string(path)?;
        TraceBundle::from_json(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::UpdateDistribution;
    use crate::updates::UpdateVolume;

    fn small_bundle() -> TraceBundle {
        let qcfg = QueryTraceConfig {
            n_items: 64,
            n_queries: 300,
            horizon: SimDuration::from_secs(20_000),
            seed: 11,
            ..QueryTraceConfig::default()
        };
        // 156 updates x ~96s over 20,000s ≈ 75% utilization.
        let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
            .with_total(156);
        TraceBundle::generate(&qcfg, &ucfg)
    }

    #[test]
    fn bundle_is_valid_and_named() {
        let b = small_bundle();
        assert_eq!(b.name, "med-unif");
        b.trace.validate().expect("bundle trace must validate");
        assert_eq!(b.trace.n_items, 64);
        assert_eq!(b.trace.queries.len(), 300);
    }

    #[test]
    fn utilizations_are_recorded() {
        let b = small_bundle();
        // 300 queries x ~1s over 20,000s ≈ 1.5%; 156 updates x ~96s ≈ 75%.
        assert!(
            (b.query_utilization - 0.015).abs() < 0.005,
            "{}",
            b.query_utilization
        );
        assert!(
            (b.update_utilization - 0.75).abs() < 0.12,
            "{}",
            b.update_utilization
        );
        assert!((b.offered_load() - (b.query_utilization + b.update_utilization)).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip_preserves_the_trace() {
        let b = small_bundle();
        let json = b.to_json().unwrap();
        let back = TraceBundle::from_json(&json).unwrap();
        assert_eq!(b.trace, back.trace);
        assert_eq!(b.name, back.name);
        assert_eq!(b.achieved_rho, back.achieved_rho);
    }

    #[test]
    fn file_round_trip() {
        let b = small_bundle();
        let dir = std::env::temp_dir().join("unit-workload-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.json");
        b.save(&path).unwrap();
        let back = TraceBundle::load(&path).unwrap();
        assert_eq!(b.trace, back.trace);
        std::fs::remove_file(&path).ok();
    }
}
