//! Trace assembly and (de)serialization.
//!
//! [`TraceBundle`] pairs a generated query trace with one update trace and
//! the resulting [`Trace`] the simulator consumes, carrying the achieved
//! statistics (utilizations, correlation) so experiments can report what
//! they actually ran on. Bundles serialize to JSON for inspection and reuse.

use crate::cello::{generate_queries, QueryTrace, QueryTraceConfig};
use crate::updates::{generate_updates, UpdateTrace, UpdateTraceConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::path::Path;
use unit_core::time::SimDuration;
use unit_core::types::{SpecError, Trace};

/// A trace-deserialization failure with source-position context.
///
/// The vendored JSON parser reports byte offsets in its messages;
/// [`TraceBundle::from_json`] resolves the offset against the input text so
/// a malformed trace file points at the offending line instead of panicking
/// or surfacing a bare parser string. Shape errors (valid JSON that does not
/// match the [`TraceBundle`] schema) carry no position — `line` is `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// The underlying parser or deserializer message.
    pub message: String,
    /// 1-based line of the error, when the parser reported a byte offset.
    pub line: Option<usize>,
    /// 1-based byte column within that line, when known.
    pub column: Option<usize>,
}

impl TraceParseError {
    /// Wrap a parser message, resolving any `at byte N` suffix the vendored
    /// parser embeds into a line/column pair within `src`.
    fn locate(src: &str, message: String) -> TraceParseError {
        let (line, column) = match byte_offset_in(&message) {
            Some(off) => {
                let (l, c) = line_col(src, off);
                (Some(l), Some(c))
            }
            None => (None, None),
        };
        TraceParseError {
            message,
            line,
            column,
        }
    }

    /// Wrap a semantic (spec-validation) failure, pointing at the `"id"` key
    /// of the offending query or update stream when it can be found in the
    /// source text.
    fn locate_spec(src: &str, err: &SpecError) -> TraceParseError {
        let (line, column) =
            match spec_error_anchor(err).and_then(|(id, q)| locate_spec_id(src, id, q)) {
                Some(off) => {
                    let (l, c) = line_col(src, off);
                    (Some(l), Some(c))
                }
                None => (None, None),
            };
        TraceParseError {
            message: format!("invalid trace: {err}"),
            line,
            column,
        }
    }
}

/// 1-based line and byte-column of byte offset `off` within `src`. Counts
/// `\n` only, so CRLF input resolves to the same line numbers an editor
/// shows (the `\r` lands in the previous line's last column).
fn line_col(src: &str, off: usize) -> (usize, usize) {
    let prefix = &src.as_bytes()[..off.min(src.len())];
    let line = 1 + prefix.iter().filter(|&&b| b == b'\n').count();
    let col = 1 + prefix.iter().rev().take_while(|&&b| b != b'\n').count();
    (line, col)
}

/// The spec id a [`SpecError`] is anchored to: `(raw id, is_query)`.
/// Out-of-range items carry no owning id, so they resolve to `None`.
fn spec_error_anchor(err: &SpecError) -> Option<(u64, bool)> {
    match err {
        SpecError::EmptyReadSet(q)
        | SpecError::DuplicateItem(q, _)
        | SpecError::ZeroExecTime(q)
        | SpecError::ZeroDeadline(q)
        | SpecError::BadFreshnessReq(q, _)
        | SpecError::UnsortedQueries(q) => Some((q.0, true)),
        SpecError::ZeroPeriod(u) | SpecError::ZeroUpdateExec(u) => Some((u.0 as u64, false)),
        SpecError::ItemOutOfRange(..) => None,
    }
}

/// Best-effort byte offset of the `"id"` key belonging to query (or update
/// stream) `id` in the serialized trace. Relies on the `Trace` field order —
/// the `"queries"` array precedes the `"updates"` array — to tell the two
/// id spaces apart; returns `None` rather than guessing when the sections
/// cannot be found.
fn locate_spec_id(src: &str, id: u64, query: bool) -> Option<usize> {
    let queries_at = src.find("\"queries\"")?;
    let updates_at = src.find("\"updates\"")?;
    let (lo, hi) = if query {
        (queries_at, updates_at)
    } else {
        (updates_at, src.len())
    };
    let section = src.get(lo..hi)?;
    let want = id.to_string();
    let mut from = 0;
    while let Some(rel) = section[from..].find("\"id\"") {
        let key_at = from + rel;
        let rest = section[key_at + "\"id\"".len()..].trim_start();
        if let Some(rest) = rest.strip_prefix(':') {
            let rest = rest.trim_start();
            let digits: &str = rest
                .split(|c: char| !c.is_ascii_digit())
                .next()
                .unwrap_or("");
            if digits == want {
                return Some(lo + key_at);
            }
        }
        from = key_at + "\"id\"".len();
    }
    None
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.column) {
            (Some(l), Some(c)) => {
                write!(
                    f,
                    "trace parse error at line {l}, column {c}: {}",
                    self.message
                )
            }
            _ => write!(f, "trace parse error: {}", self.message),
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Extract the byte offset from a vendored-parser message ending in
/// `... at byte N ...`, if present.
fn byte_offset_in(message: &str) -> Option<usize> {
    let tail = &message[message.rfind("at byte ")? + "at byte ".len()..];
    let digits: &str = tail.split(|c: char| !c.is_ascii_digit()).next()?;
    digits.parse().ok()
}

/// A fully generated workload: queries + updates + derived statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceBundle {
    /// Table 1-style trace name, e.g. "med-unif".
    pub name: String,
    /// The simulator-facing trace.
    pub trace: Trace,
    /// Workload horizon.
    pub horizon: SimDuration,
    /// Normalized per-item query weights used as the reference distribution.
    pub query_weights: Vec<f64>,
    /// Achieved update/query correlation.
    pub achieved_rho: f64,
    /// Offered query-class utilization.
    pub query_utilization: f64,
    /// Offered update-class utilization.
    pub update_utilization: f64,
}

impl TraceBundle {
    /// Combine pre-generated query and update traces.
    pub fn assemble(queries: QueryTrace, updates: UpdateTrace) -> TraceBundle {
        let horizon = queries.config.horizon;
        let trace = Trace {
            n_items: queries.config.n_items,
            queries: queries.queries,
            updates: updates.updates,
        };
        let query_utilization = trace.offered_query_utilization(horizon);
        let update_utilization = trace.offered_update_utilization(horizon);
        TraceBundle {
            name: updates.config.trace_name(),
            trace,
            horizon,
            query_weights: queries.item_weights,
            achieved_rho: updates.achieved_rho,
            query_utilization,
            update_utilization,
        }
    }

    /// Generate a bundle from the two configurations.
    pub fn generate(qcfg: &QueryTraceConfig, ucfg: &UpdateTraceConfig) -> TraceBundle {
        let queries = generate_queries(qcfg);
        let updates = generate_updates(ucfg, &queries.item_weights, qcfg.horizon);
        TraceBundle::assemble(queries, updates)
    }

    /// Combined offered utilization (query + update classes).
    pub fn offered_load(&self) -> f64 {
        self.query_utilization + self.update_utilization
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserialize from JSON. Malformed input yields a [`TraceParseError`]
    /// carrying the 1-based line and column of the first syntax error;
    /// well-formed JSON whose trace violates a spec invariant (duplicate
    /// read-set item, zero deadline, unsorted arrivals, ...) yields one
    /// pointing at the offending spec's `"id"` key. Either way the
    /// simulator's panicking constructor is never reached with bad input.
    pub fn from_json(s: &str) -> Result<TraceBundle, TraceParseError> {
        let bundle: TraceBundle =
            serde_json::from_str(s).map_err(|e| TraceParseError::locate(s, e.to_string()))?;
        if let Err(e) = bundle.trace.validate() {
            return Err(TraceParseError::locate_spec(s, &e));
        }
        Ok(bundle)
    }

    /// Write the bundle to a file as JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = self
            .to_json()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Load a bundle from a JSON file. Parse failures are reported as
    /// [`io::ErrorKind::InvalidData`] with the file path and, for syntax
    /// errors, the line and column of the offending byte.
    pub fn load(path: &Path) -> io::Result<TraceBundle> {
        let s = std::fs::read_to_string(path)?;
        TraceBundle::from_json(&s).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::UpdateDistribution;
    use crate::updates::UpdateVolume;

    fn small_bundle() -> TraceBundle {
        let qcfg = QueryTraceConfig {
            n_items: 64,
            n_queries: 300,
            horizon: SimDuration::from_secs(20_000),
            seed: 11,
            ..QueryTraceConfig::default()
        };
        // 156 updates x ~96s over 20,000s ≈ 75% utilization.
        let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
            .with_total(156);
        TraceBundle::generate(&qcfg, &ucfg)
    }

    #[test]
    fn bundle_is_valid_and_named() {
        let b = small_bundle();
        assert_eq!(b.name, "med-unif");
        b.trace.validate().expect("bundle trace must validate");
        assert_eq!(b.trace.n_items, 64);
        assert_eq!(b.trace.queries.len(), 300);
    }

    #[test]
    fn utilizations_are_recorded() {
        let b = small_bundle();
        // 300 queries x ~1s over 20,000s ≈ 1.5%; 156 updates x ~96s ≈ 75%.
        assert!(
            (b.query_utilization - 0.015).abs() < 0.005,
            "{}",
            b.query_utilization
        );
        assert!(
            (b.update_utilization - 0.75).abs() < 0.12,
            "{}",
            b.update_utilization
        );
        assert!((b.offered_load() - (b.query_utilization + b.update_utilization)).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip_preserves_the_trace() {
        let b = small_bundle();
        let json = b.to_json().unwrap();
        let back = TraceBundle::from_json(&json).unwrap();
        assert_eq!(b.trace, back.trace);
        assert_eq!(b.name, back.name);
        assert_eq!(b.achieved_rho, back.achieved_rho);
    }

    #[test]
    fn syntax_errors_carry_line_and_column() {
        // The `]` on line 4 is wrong inside an object: error at line 4.
        let bad = "{\n  \"name\": \"x\",\n  \"trace\": 1,\n]\n}";
        let err = TraceBundle::from_json(bad).unwrap_err();
        assert_eq!(err.line, Some(4), "{err}");
        assert_eq!(err.column, Some(1), "{err}");
        let rendered = err.to_string();
        assert!(rendered.contains("line 4"), "{rendered}");
    }

    #[test]
    fn shape_errors_pass_through_without_position() {
        // Valid JSON, wrong shape: no byte offset to resolve.
        let err = TraceBundle::from_json("[1, 2, 3]").unwrap_err();
        assert_eq!(err.line, None);
        assert!(err.to_string().starts_with("trace parse error:"));
    }

    #[test]
    fn load_reports_path_and_line() {
        let dir = std::env::temp_dir().join("unit-workload-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "{\n  \"name\": oops\n}").unwrap();
        let err = TraceBundle::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let rendered = err.to_string();
        assert!(rendered.contains("corrupt.json"), "{rendered}");
        assert!(rendered.contains("line 2"), "{rendered}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_round_trip() {
        let b = small_bundle();
        let dir = std::env::temp_dir().join("unit-workload-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.json");
        b.save(&path).unwrap();
        let back = TraceBundle::load(&path).unwrap();
        assert_eq!(b.trace, back.trace);
        std::fs::remove_file(&path).ok();
    }
}
