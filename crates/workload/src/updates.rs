//! Update-trace generation — Table 1 of the paper.
//!
//! Nine traces: three volumes × three spatial distributions:
//!
//! | volume | total updates | offered utilization |
//! |--------|---------------|---------------------|
//! | low    | 6,144         | ≈ 15%               |
//! | med    | 30,000        | ≈ 75%               |
//! | high   | 61,440        | ≈ 150%              |
//!
//! with uniform, positively correlated (ρ ≈ +0.8), and negatively
//! correlated (ρ ≈ −0.8) placement over the data items relative to the
//! query distribution. Each item receiving a non-zero share becomes one
//! periodic [`UpdateSpec`] whose period spreads its count evenly over the
//! horizon; update execution times are drawn uniformly from a configured
//! range with mean 96 s — the only reading under which Table 1's counts
//! equal its quoted utilizations over the 3,848,104 s cello99a horizon —
//! so total counts translate directly into the paper's utilization levels.

use crate::correlate::{apportion_counts, correlated_weights, UpdateDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, UpdateSpec, UpdateStreamId};

/// Update volume level (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateVolume {
    /// 6,144 updates ≈ 15% CPU.
    Low,
    /// 30,000 updates ≈ 75% CPU.
    Med,
    /// 61,440 updates ≈ 150% CPU.
    High,
}

impl UpdateVolume {
    /// Total update count the paper assigns to this level.
    pub fn total_updates(self) -> u64 {
        match self {
            UpdateVolume::Low => 6_144,
            UpdateVolume::Med => 30_000,
            UpdateVolume::High => 61_440,
        }
    }

    /// Nominal CPU utilization the paper quotes for this level.
    pub fn nominal_utilization(self) -> f64 {
        match self {
            UpdateVolume::Low => 0.15,
            UpdateVolume::Med => 0.75,
            UpdateVolume::High => 1.50,
        }
    }

    /// Trace-name fragment ("low", "med", "high").
    pub fn short_name(self) -> &'static str {
        match self {
            UpdateVolume::Low => "low",
            UpdateVolume::Med => "med",
            UpdateVolume::High => "high",
        }
    }

    /// All three levels, Table 1 order.
    pub const ALL: [UpdateVolume; 3] = [UpdateVolume::Low, UpdateVolume::Med, UpdateVolume::High];
}

/// Configuration of the update-trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateTraceConfig {
    /// Volume level (or use `total_override`).
    pub volume: UpdateVolume,
    /// Optional explicit total (overrides `volume.total_updates()`; used by
    /// scaled-down test traces).
    pub total_override: Option<u64>,
    /// Spatial distribution relative to the query weights.
    pub distribution: UpdateDistribution,
    /// Target |Pearson correlation| for the correlated shapes (paper: 0.8).
    pub target_rho: f64,
    /// Update execution times are uniform in this range, seconds (the mean
    /// must stay at 96.0 for the Table 1 utilizations to hold over the
    /// paper's horizon).
    pub exec_range_secs: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl UpdateTraceConfig {
    /// The Table 1 configuration for a volume/distribution pair.
    ///
    /// Update execution times are uniform in [48, 144] s (mean 96 s): over
    /// the paper's 3,848,104 s horizon this makes 6,144 / 30,000 / 61,440
    /// updates cost exactly the quoted 15% / 75% / 150% of the CPU.
    pub fn table1(volume: UpdateVolume, distribution: UpdateDistribution) -> Self {
        UpdateTraceConfig {
            volume,
            total_override: None,
            distribution,
            target_rho: 0.8,
            exec_range_secs: (48.0, 144.0),
            seed: 0x0bda7e,
        }
    }

    /// Override the total update count (for scaled-down traces).
    pub fn with_total(mut self, total: u64) -> Self {
        self.total_override = Some(total);
        self
    }

    /// Trace name in the paper's convention, e.g. "med-unif".
    pub fn trace_name(&self) -> String {
        format!(
            "{}-{}",
            self.volume.short_name(),
            self.distribution.short_name()
        )
    }

    /// The effective total update count.
    pub fn total_updates(&self) -> u64 {
        self.total_override
            .unwrap_or_else(|| self.volume.total_updates())
    }
}

/// A generated update trace with its achieved statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpdateTrace {
    /// One periodic stream per item with non-zero volume.
    pub updates: Vec<UpdateSpec>,
    /// Achieved Pearson correlation of per-item update counts against the
    /// query weights.
    pub achieved_rho: f64,
    /// Per-item planned update counts over the horizon.
    pub item_counts: Vec<u64>,
    /// The configuration that produced the trace.
    pub config: UpdateTraceConfig,
}

impl UpdateTrace {
    /// Offered update-class utilization over `horizon`.
    pub fn offered_utilization(&self, horizon: SimDuration) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        let mut work = 0.0;
        for u in &self.updates {
            if u.first_arrival.0 > horizon.0 {
                continue; // stream never fires inside the horizon
            }
            let n = 1 + (horizon.0 - u.first_arrival.0) / u.period.0.max(1);
            work += n as f64 * u.exec_time.as_secs_f64();
        }
        work / horizon.as_secs_f64()
    }
}

/// Generate an update trace against the query popularity profile.
///
/// `query_weights` is the normalized per-item access distribution from
/// [`crate::cello::QueryTrace::item_weights`].
///
/// # Panics
/// Panics on an empty weight vector or a zero horizon.
pub fn generate_updates(
    cfg: &UpdateTraceConfig,
    query_weights: &[f64],
    horizon: SimDuration,
) -> UpdateTrace {
    assert!(!query_weights.is_empty(), "query weights are empty");
    assert!(!horizon.is_zero(), "horizon must be positive");
    let (lo, hi) = cfg.exec_range_secs;
    assert!(lo > 0.0 && hi >= lo, "bad exec range");

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let total = cfg.total_updates();

    let cw = correlated_weights(
        query_weights,
        cfg.distribution,
        cfg.target_rho,
        cfg.seed ^ 0x77,
    );
    let counts = apportion_counts(&cw.weights, total);

    // Achieved correlation of the *integer counts* (what the figures show).
    let counts_f: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    let achieved_rho = crate::dist::pearson(&counts_f, query_weights);

    let mut updates = Vec::new();
    for (item, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let period = SimDuration(horizon.0 / count);
        let period = if period.is_zero() {
            SimDuration(1)
        } else {
            period
        };
        let exec = SimDuration::from_secs_f64(rng.gen_range(lo..=hi));
        // Random phase within the first period de-synchronizes the sources.
        let first = SimTime(rng.gen_range(0..period.0.max(1)));
        updates.push(UpdateSpec {
            id: UpdateStreamId(updates.len() as u32),
            item: DataId(item as u32),
            period,
            exec_time: exec,
            first_arrival: first,
        });
    }

    UpdateTrace {
        updates,
        achieved_rho,
        item_counts: counts,
        config: *cfg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cello::{generate_queries, QueryTraceConfig};

    fn weights() -> (Vec<f64>, SimDuration) {
        let cfg = QueryTraceConfig {
            n_items: 128,
            n_queries: 800,
            horizon: SimDuration::from_secs(400_000),
            seed: 3,
            ..QueryTraceConfig::default()
        };
        (generate_queries(&cfg).item_weights, cfg.horizon)
    }

    #[test]
    fn table1_volumes_match_the_paper() {
        assert_eq!(UpdateVolume::Low.total_updates(), 6_144);
        assert_eq!(UpdateVolume::Med.total_updates(), 30_000);
        assert_eq!(UpdateVolume::High.total_updates(), 61_440);
        assert_eq!(UpdateVolume::Med.nominal_utilization(), 0.75);
    }

    #[test]
    fn trace_names_follow_the_convention() {
        let cfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform);
        assert_eq!(cfg.trace_name(), "med-unif");
        let cfg =
            UpdateTraceConfig::table1(UpdateVolume::High, UpdateDistribution::NegativeCorrelation);
        assert_eq!(cfg.trace_name(), "high-neg");
    }

    #[test]
    fn total_counts_are_exact() {
        let (w, h) = weights();
        for dist in [
            UpdateDistribution::Uniform,
            UpdateDistribution::PositiveCorrelation,
            UpdateDistribution::NegativeCorrelation,
        ] {
            let cfg = UpdateTraceConfig::table1(UpdateVolume::Low, dist).with_total(5_000);
            let t = generate_updates(&cfg, &w, h);
            assert_eq!(t.item_counts.iter().sum::<u64>(), 5_000);
        }
    }

    #[test]
    fn uniform_counts_are_flat() {
        let (w, h) = weights();
        let cfg = UpdateTraceConfig::table1(UpdateVolume::Low, UpdateDistribution::Uniform)
            .with_total(12_800);
        let t = generate_updates(&cfg, &w, h);
        // 12,800 over 128 items -> exactly 100 each.
        assert!(t.item_counts.iter().all(|&c| c == 100));
        assert!(t.achieved_rho.abs() < 0.05);
    }

    #[test]
    fn correlations_land_near_target() {
        let (w, h) = weights();
        let pos = generate_updates(
            &UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::PositiveCorrelation)
                .with_total(20_000),
            &w,
            h,
        );
        assert!(
            (pos.achieved_rho - 0.8).abs() < 0.05,
            "pos rho {}",
            pos.achieved_rho
        );
        let neg = generate_updates(
            &UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::NegativeCorrelation)
                .with_total(20_000),
            &w,
            h,
        );
        assert!(
            (neg.achieved_rho + 0.8).abs() < 0.10,
            "neg rho {}",
            neg.achieved_rho
        );
    }

    #[test]
    fn specs_validate_and_respect_the_horizon() {
        let (w, h) = weights();
        let cfg = UpdateTraceConfig::table1(UpdateVolume::Low, UpdateDistribution::Uniform)
            .with_total(2_000);
        let t = generate_updates(&cfg, &w, h);
        for u in &t.updates {
            u.validate(w.len()).expect("generated update must be valid");
            assert!(u.first_arrival.0 < u.period.0.max(2));
        }
    }

    #[test]
    fn offered_utilization_tracks_volume() {
        let (w, h) = weights();
        // 3125 updates x ~96s over 400,000s -> ~75%.
        let cfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
            .with_total(3_125);
        let t = generate_updates(&cfg, &w, h);
        let util = t.offered_utilization(h);
        assert!((util - 0.75).abs() < 0.12, "utilization {util}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (w, h) = weights();
        let cfg =
            UpdateTraceConfig::table1(UpdateVolume::Low, UpdateDistribution::PositiveCorrelation)
                .with_total(1_000);
        let a = generate_updates(&cfg, &w, h);
        let b = generate_updates(&cfg, &w, h);
        assert_eq!(a.updates, b.updates);
        let mut cfg2 = cfg;
        cfg2.seed += 1;
        let c = generate_updates(&cfg2, &w, h);
        assert_ne!(a.updates, c.updates);
    }

    #[test]
    fn negative_correlation_starves_hot_items() {
        let (w, h) = weights();
        let cfg =
            UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::NegativeCorrelation)
                .with_total(20_000);
        let t = generate_updates(&cfg, &w, h);
        // The hottest-queried item should get far fewer updates than the
        // coldest-queried item.
        let hot = w
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let cold = w
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            t.item_counts[cold] > t.item_counts[hot],
            "cold {} vs hot {}",
            t.item_counts[cold],
            t.item_counts[hot]
        );
    }
}
