//! Trace-parser edge cases: every malformed input must come back as a
//! clean [`TraceParseError`] (or `InvalidData` io error through the file
//! API) with useful position info — never a panic, and never a bad trace
//! that detonates later inside the simulator's panicking constructor.

use std::io;
use unit_workload::prelude::*;
use unit_workload::trace::TraceParseError;

/// A minimal well-formed bundle, as pretty JSON, to mutate from.
fn good_json() -> String {
    let qcfg = QueryTraceConfig {
        n_items: 16,
        n_queries: 8,
        horizon: unit_core::time::SimDuration::from_secs(1_000),
        seed: 3,
        ..QueryTraceConfig::default()
    };
    let ucfg =
        UpdateTraceConfig::table1(UpdateVolume::Low, UpdateDistribution::Uniform).with_total(4);
    TraceBundle::generate(&qcfg, &ucfg).to_json().unwrap()
}

fn parse(s: &str) -> Result<TraceBundle, TraceParseError> {
    TraceBundle::from_json(s)
}

#[test]
fn empty_input_is_a_clean_error_at_line_one() {
    let err = parse("").unwrap_err();
    assert_eq!(err.line, Some(1), "{err}");
    assert_eq!(err.column, Some(1), "{err}");
    assert!(err.to_string().contains("line 1"), "{err}");
}

#[test]
fn whitespace_only_file_is_a_clean_error() {
    // An "empty" trace file in practice: a couple of blank lines.
    let err = parse("\n\n  \n").unwrap_err();
    assert!(err.line.is_some(), "{err}");
}

#[test]
fn trailing_newline_is_accepted() {
    let mut json = good_json();
    json.push('\n');
    let b = parse(&json).expect("trailing newline must not break parsing");
    b.trace.validate().unwrap();
}

#[test]
fn crlf_line_endings_parse_and_locate_correctly() {
    // CRLF input must parse; CRLF input with an error must report the same
    // line number an editor would show.
    let crlf = good_json().replace('\n', "\r\n");
    parse(&crlf).expect("CRLF bundle must parse");

    let bad = "{\r\n  \"name\": \"x\",\r\n  \"trace\": 1,\r\n]\r\n}";
    let err = parse(bad).unwrap_err();
    assert_eq!(err.line, Some(4), "{err}");
}

#[test]
fn empty_file_through_the_file_api_is_invalid_data_not_a_panic() {
    let dir = std::env::temp_dir().join("unit-workload-parser-edges");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("empty.json");
    std::fs::write(&path, "").unwrap();
    let err = TraceBundle::load(&path).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("empty.json"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn duplicate_item_id_is_a_located_parse_error_not_a_panic() {
    // Duplicate an item inside the first query's read set. The JSON stays
    // syntactically valid, so only semantic validation can catch it — and
    // it must point at the offending query, not panic in Simulator::new.
    let json = good_json();
    let items_at = json.find("\"items\": [").expect("pretty items array");
    let open = items_at + "\"items\": [".len();
    let close = open + json[open..].find(']').unwrap();
    let first_item = json[open..close]
        .split(',')
        .next()
        .unwrap()
        .trim()
        .to_string();
    let mut bad = json.clone();
    bad.insert_str(close, &format!(", {first_item}"));

    let err = parse(&bad).unwrap_err();
    assert!(
        err.message.contains("reads item") && err.message.contains("twice"),
        "{err}"
    );
    assert!(err.line.is_some(), "semantic errors should locate: {err}");
    assert!(err.column.is_some(), "{err}");

    // The reported line is the offending query's "id" key, which must sit
    // at or before the mutated read set.
    let (mutation_line, _) = {
        let prefix = &bad.as_bytes()[..close];
        (1 + prefix.iter().filter(|&&b| b == b'\n').count(), 0)
    };
    assert!(err.line.unwrap() <= mutation_line, "{err}");
}

#[test]
fn unsorted_arrivals_are_a_clean_semantic_error() {
    // Swap the arrival times of the first two queries by editing the JSON's
    // first two "arrival" values to be out of order.
    let json = good_json();
    let b: TraceBundle = parse(&json).unwrap();
    let mut trace = b.trace.clone();
    if trace.queries.len() >= 2 {
        let a0 = trace.queries[0].arrival;
        let a1 = trace.queries[1].arrival;
        trace.queries[0].arrival = a0.max(a1) + unit_core::time::SimDuration::from_secs(1);
    }
    let mut tampered = b.clone();
    tampered.trace = trace;
    let bad_json = tampered.to_json().unwrap();
    let err = parse(&bad_json).unwrap_err();
    assert!(err.message.contains("arrives before"), "{err}");
}
