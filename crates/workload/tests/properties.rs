//! Property-based tests for the workload generators: every generated trace
//! must validate, hit its configured sizes, and stay deterministic.

use proptest::prelude::*;
use unit_core::time::SimDuration;
use unit_workload::correlate::{apportion_counts, correlated_weights, UpdateDistribution};
use unit_workload::dist::pearson;
use unit_workload::{
    generate_queries, generate_updates, QueryTraceConfig, TraceBundle, UpdateTraceConfig,
    UpdateVolume,
};

fn query_cfg_strategy() -> impl Strategy<Value = QueryTraceConfig> {
    (
        8usize..128,      // n_items
        50usize..500,     // n_queries
        2_000u64..40_000, // horizon seconds
        0.5f64..2.0,      // zipf exponent
        any::<u64>(),     // seed
    )
        .prop_map(
            |(n_items, n_queries, horizon, zipf, seed)| QueryTraceConfig {
                n_items,
                n_queries,
                horizon: SimDuration::from_secs(horizon),
                zipf_exponent: zipf,
                burst_count: 3,
                seed,
                ..QueryTraceConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated query traces always validate, are sorted, sized, and
    /// within-horizon; deadlines respect the paper's recipe.
    #[test]
    fn query_traces_are_well_formed(cfg in query_cfg_strategy()) {
        let t = generate_queries(&cfg);
        prop_assert_eq!(t.queries.len(), cfg.n_queries);
        for q in &t.queries {
            q.validate(cfg.n_items).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert!(q.arrival.0 <= cfg.horizon.0 + 1);
        }
        prop_assert!(t.queries.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let sum: f64 = t.item_weights.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        // Determinism.
        let t2 = generate_queries(&cfg);
        prop_assert_eq!(t.queries, t2.queries);
    }

    /// Update traces hit their exact totals and validate, for every
    /// distribution shape.
    #[test]
    fn update_traces_are_well_formed(
        cfg in query_cfg_strategy(),
        total in 100u64..5_000,
        dist_pick in 0u8..3,
        seed in any::<u64>(),
    ) {
        let dist = match dist_pick {
            0 => UpdateDistribution::Uniform,
            1 => UpdateDistribution::PositiveCorrelation,
            _ => UpdateDistribution::NegativeCorrelation,
        };
        let queries = generate_queries(&cfg);
        let mut ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, dist).with_total(total);
        ucfg.seed = seed;
        let t = generate_updates(&ucfg, &queries.item_weights, cfg.horizon);
        prop_assert_eq!(t.item_counts.iter().sum::<u64>(), total);
        for u in &t.updates {
            u.validate(cfg.n_items).map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        prop_assert!(t.achieved_rho.is_finite());
        prop_assert!((-1.0..=1.0).contains(&t.achieved_rho));
        // One stream per item with non-zero volume.
        let nonzero = t.item_counts.iter().filter(|&&c| c > 0).count();
        prop_assert_eq!(t.updates.len(), nonzero);
    }

    /// Apportionment is exact and never negative, for arbitrary weights.
    #[test]
    fn apportionment_is_exact(
        raw in prop::collection::vec(0.0f64..10.0, 1..64),
        total in 0u64..10_000,
    ) {
        let sum: f64 = raw.iter().sum();
        prop_assume!(sum > 0.0);
        let weights: Vec<f64> = raw.iter().map(|w| w / sum).collect();
        let counts = apportion_counts(&weights, total);
        prop_assert_eq!(counts.iter().sum::<u64>(), total);
        // Zero weight -> zero count.
        for (c, w) in counts.iter().zip(&weights) {
            if *w == 0.0 {
                prop_assert_eq!(*c, 0);
            }
        }
    }

    /// Correlated weight synthesis always yields a normalized, non-negative
    /// vector whose correlation has the requested sign.
    #[test]
    fn correlated_weights_have_the_right_sign(
        raw in prop::collection::vec(0.01f64..10.0, 16..128),
        seed in any::<u64>(),
    ) {
        let sum: f64 = raw.iter().sum();
        let reference: Vec<f64> = raw.iter().map(|w| w / sum).collect();
        prop_assume!(pearson(&reference, &reference) > 0.99); // non-degenerate variance

        let pos = correlated_weights(&reference, UpdateDistribution::PositiveCorrelation, 0.8, seed);
        prop_assert!(pos.weights.iter().all(|&w| w >= 0.0));
        prop_assert!((pos.weights.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        prop_assert!(pos.achieved_rho > 0.0, "pos rho {}", pos.achieved_rho);

        let neg = correlated_weights(&reference, UpdateDistribution::NegativeCorrelation, 0.8, seed);
        prop_assert!(neg.weights.iter().all(|&w| w >= 0.0));
        prop_assert!(neg.achieved_rho < 0.0, "neg rho {}", neg.achieved_rho);
    }

    /// Bundles assemble consistently from their parts.
    #[test]
    fn bundles_are_consistent(cfg in query_cfg_strategy(), total in 100u64..2_000) {
        let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
            .with_total(total);
        let b = TraceBundle::generate(&cfg, &ucfg);
        b.trace.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(b.trace.n_items, cfg.n_items);
        prop_assert_eq!(b.trace.queries.len(), cfg.n_queries);
        prop_assert!(b.query_utilization > 0.0);
        prop_assert!(b.update_utilization > 0.0);
        // JSON round trip.
        let back = TraceBundle::from_json(&b.to_json().unwrap()).unwrap();
        prop_assert_eq!(b.trace, back.trace);
    }
}
