//! Property suite: streamed query generation is bit-identical to the
//! materialized path across seeds × scales × workload families, and the
//! JSONL persistence round-trips losslessly.
//!
//! (`chunk`-size invariance of the *feed* path is pinned on the engine
//! side, in `unit-sim`'s `streaming` suite — the stream itself has no
//! chunking; it yields specs one at a time.)

use proptest::prelude::*;
use unit_core::time::SimDuration;
use unit_workload::{generate_queries, read_queries_jsonl, stream_queries, write_queries_jsonl};
use unit_workload::{QueryTraceConfig, UpdateVolume};

/// A family of generator configurations spanning the knobs that change the
/// RNG draw sequence: bursts on/off, multi-item read sets on/off,
/// preference classes, and popularity skew.
fn config_family(
    family: u8,
    seed: u64,
    n_items: usize,
    n_queries: usize,
    horizon_s: u64,
) -> QueryTraceConfig {
    let base = QueryTraceConfig {
        n_items,
        n_queries,
        horizon: SimDuration::from_secs(horizon_s),
        seed,
        ..QueryTraceConfig::default()
    };
    match family % 4 {
        0 => base, // the paper's cello-like defaults
        1 => QueryTraceConfig {
            burst_count: 0,
            burst_query_fraction: 0.0,
            ..base
        }, // pure Poisson
        2 => QueryTraceConfig {
            max_items_per_query: 1,
            pref_class_count: 4,
            ..base
        }, // single-item reads, multi-class
        _ => QueryTraceConfig {
            zipf_exponent: 0.8,
            multi_item_p: 0.7,
            burst_query_fraction: 0.5,
            ..base
        }, // mild skew, fat read sets, heavy bursts
    }
}

proptest! {
    /// The streamed generator yields exactly the materialized query list —
    /// same ids, arrivals, read sets, deadlines, classes — for any seed,
    /// scale, and family, and reports the same popularity profile.
    #[test]
    fn stream_is_bit_identical_to_materialized(
        seed in any::<u64>(),
        family in 0u8..4,
        n_items in 4usize..128,
        n_queries in 1usize..600,
        horizon_s in 100u64..10_000,
    ) {
        let cfg = config_family(family, seed, n_items, n_queries, horizon_s);
        let eager = generate_queries(&cfg);
        let stream = stream_queries(&cfg);
        prop_assert_eq!(stream.item_weights(), eager.item_weights.as_slice());
        prop_assert_eq!(stream.len(), eager.queries.len());
        let lazy: Vec<_> = stream.collect();
        prop_assert_eq!(lazy, eager.queries);
    }

    /// JSONL persistence is lossless: write the streamed specs, read them
    /// back, get the identical list.
    #[test]
    fn jsonl_round_trip_is_lossless(
        seed in any::<u64>(),
        family in 0u8..4,
        n_queries in 1usize..200,
    ) {
        let cfg = config_family(family, seed, 32, n_queries, 2_000);
        let mut buf = Vec::new();
        write_queries_jsonl(&mut buf, stream_queries(&cfg)).expect("write");
        let back: Vec<_> = read_queries_jsonl(buf.as_slice())
            .collect::<Result<_, _>>()
            .expect("parse");
        prop_assert_eq!(back, generate_queries(&cfg).queries);
    }
}

#[test]
fn scaled_up_multiplies_queries_at_fixed_horizon() {
    let base = QueryTraceConfig {
        n_items: 32,
        n_queries: 50,
        horizon: SimDuration::from_secs(1_000),
        seed: 3,
        ..QueryTraceConfig::default()
    };
    let up = base.scaled_up(8);
    assert_eq!(up.n_queries, 400);
    assert_eq!(up.horizon, base.horizon);
    // Offered load scales with the multiplier.
    assert!((up.offered_utilization() / base.offered_utilization() - 8.0).abs() < 1e-9);
    // And the scaled-up stream still matches its materialized twin.
    let lazy: Vec<_> = stream_queries(&up).collect();
    assert_eq!(lazy, generate_queries(&up).queries);
}

#[test]
fn table1_scales_remain_available_for_the_bench_recipe() {
    // EXPERIMENTS.md's scale-256 recipe leans on these two knobs together:
    // scaled_down shrinks the paper trace, scaled_up multiplies load.
    let cfg = QueryTraceConfig::default().scaled_down(8).scaled_up(256);
    assert_eq!(cfg.n_queries, 110_035 / 8 * 256);
    assert!(UpdateVolume::Med.total_updates() > 0);
}
