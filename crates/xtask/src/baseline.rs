//! Stable fingerprints and the `xtask-baseline.json` ratchet.
//!
//! A fingerprint identifies a finding by *what* it is, not *where* it
//! currently sits: FNV-1a 64 over `rule|file|symbol|kind|occurrence`,
//! where `occurrence` is the finding's index among same-keyed findings in
//! source order. Line numbers are deliberately excluded, so editing an
//! unrelated part of a file never churns the baseline; moving a function
//! to another file does (the file is part of the identity — a fresh look
//! at relocated debt is intended).
//!
//! Ratchet semantics:
//!
//! * a finding whose fingerprint is **in** the baseline is accepted debt —
//!   reported in `--format text` as baselined, never a failure;
//! * a finding **not** in the baseline fails the run (exit 1);
//! * a baseline entry that no longer fires is **stale** — reported so it
//!   can be removed (shrinking the baseline is the point of the ratchet),
//!   but never a failure, so fixing debt can't break the build.
//!
//! `cargo xtask analyze --update-baseline` rewrites the file from the
//! current findings; review the diff like any other code change.

use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// FNV-1a 64-bit over `bytes`.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assign a stable fingerprint to every finding. Callers must pass the
/// findings already in final (file, line, rule) order so occurrence
/// indices are deterministic.
pub fn assign_fingerprints(findings: &mut [Finding]) {
    let mut occ: BTreeMap<(String, String, String, String), u32> = BTreeMap::new();
    for f in findings.iter_mut() {
        let key = (
            f.rule.to_string(),
            f.file.clone(),
            f.symbol.clone(),
            f.kind.clone(),
        );
        let n = occ.entry(key).or_insert(0);
        let id = format!("{}|{}|{}|{}|{}", f.rule, f.file, f.symbol, f.kind, n);
        *n += 1;
        f.fingerprint = format!("{:016x}", fnv64(id.as_bytes()));
    }
}

/// A parsed baseline: accepted fingerprints with their human-readable
/// descriptions.
#[derive(Debug, Default)]
pub struct Baseline {
    /// fingerprint → `"<rule> <file> <symbol or kind>"` description.
    pub entries: BTreeMap<String, String>,
}

/// The outcome of checking findings against a baseline.
#[derive(Debug)]
pub struct Ratchet {
    /// Findings not covered by the baseline — these fail the run.
    pub new: Vec<Finding>,
    /// Findings covered by the baseline — accepted debt.
    pub baselined: Vec<Finding>,
    /// Baseline entries that no longer fire, as `(fingerprint, description)`.
    pub stale: Vec<(String, String)>,
}

impl Baseline {
    /// Split `findings` into new vs. baselined and collect stale entries.
    pub fn ratchet(&self, findings: Vec<Finding>) -> Ratchet {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut new = Vec::new();
        let mut baselined = Vec::new();
        for f in findings {
            if self.entries.contains_key(&f.fingerprint) {
                baselined.push(f);
            } else {
                new.push(f);
            }
        }
        for f in &baselined {
            seen.insert(f.fingerprint.as_str());
        }
        let stale = self
            .entries
            .iter()
            .filter(|(fp, _)| !seen.contains(fp.as_str()))
            .map(|(fp, d)| (fp.clone(), d.clone()))
            .collect();
        Ratchet {
            new,
            baselined,
            stale,
        }
    }
}

/// Serialize a baseline from the current findings (sorted by fingerprint).
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut entries: BTreeMap<&str, String> = BTreeMap::new();
    for f in findings {
        let what = if f.symbol.is_empty() {
            f.kind.clone()
        } else {
            format!("{} {}", f.symbol, f.kind)
        };
        entries.insert(
            &f.fingerprint,
            format!("{} {} {}", f.rule, f.file, what.trim()),
        );
    }
    let mut out = String::from("{\n  \"version\": 1,\n  \"fingerprints\": {\n");
    for (i, (fp, desc)) in entries.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {}: {}{}",
            crate::json_str(fp),
            crate::json_str(desc),
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    out.push_str("  }\n}\n");
    out
}

/// Parse a baseline file. A minimal JSON reader (xtask has no deps): it
/// understands exactly the shape [`render_baseline`] writes — an object
/// with a `"fingerprints"` object of string→string entries — and
/// tolerates whitespace/ordering differences from hand edits.
///
/// # Errors
/// Fails on malformed JSON or a missing `fingerprints` object.
pub fn parse_baseline(src: &str) -> Result<Baseline, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    p.expect(b'{')?;
    let mut entries = BTreeMap::new();
    let mut first = true;
    loop {
        p.ws();
        if p.peek() == Some(b'}') {
            break;
        }
        if !first {
            p.expect(b',')?;
            p.ws();
        }
        first = false;
        let key = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        if key == "fingerprints" {
            p.expect(b'{')?;
            let mut inner_first = true;
            loop {
                p.ws();
                if p.peek() == Some(b'}') {
                    p.i += 1;
                    break;
                }
                if !inner_first {
                    p.expect(b',')?;
                    p.ws();
                }
                inner_first = false;
                let fp = p.string()?;
                p.ws();
                p.expect(b':')?;
                p.ws();
                let desc = p.string()?;
                entries.insert(fp, desc);
            }
        } else {
            p.skip_value()?;
        }
    }
    Ok(Baseline { entries })
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while self
            .peek()
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "baseline parse error at byte {}: expected `{}`",
                self.i, c as char
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("baseline: truncated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or("baseline: truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => {
                            return Err(format!("baseline: unknown escape \\{}", other as char))
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 char.
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xc0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("baseline: unterminated string".to_string()),
            }
        }
    }

    /// Skip any JSON value (for unknown top-level keys like `version`).
    fn skip_value(&mut self) -> Result<(), String> {
        self.ws();
        match self.peek() {
            Some(b'"') => {
                self.string()?;
            }
            Some(b'{' | b'[') => {
                let open = self.peek().unwrap();
                let close = if open == b'{' { b'}' } else { b']' };
                self.i += 1;
                let mut depth = 1usize;
                while depth > 0 {
                    match self.peek() {
                        Some(b'"') => {
                            self.string()?;
                        }
                        Some(c) if c == open => {
                            depth += 1;
                            self.i += 1;
                        }
                        Some(c) if c == close => {
                            depth -= 1;
                            self.i += 1;
                        }
                        Some(_) => self.i += 1,
                        None => return Err("baseline: unterminated value".to_string()),
                    }
                }
            }
            Some(_) => {
                while self
                    .peek()
                    .is_some_and(|c| !matches!(c, b',' | b'}' | b']'))
                {
                    self.i += 1;
                }
            }
            None => return Err("baseline: missing value".to_string()),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, symbol: &str, kind: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line: 1,
            rule,
            message: String::new(),
            hint: String::new(),
            symbol: symbol.to_string(),
            kind: kind.to_string(),
            fingerprint: String::new(),
        }
    }

    #[test]
    fn fingerprints_are_stable_and_occurrence_indexed() {
        let mut a = vec![
            finding("D6", "crates/sim/src/x.rs", "sim::f", "call:unwrap"),
            finding("D6", "crates/sim/src/x.rs", "sim::f", "call:unwrap"),
        ];
        assign_fingerprints(&mut a);
        assert_ne!(a[0].fingerprint, a[1].fingerprint);
        // Re-running on the same logical findings reproduces them exactly.
        let mut b = vec![
            finding("D6", "crates/sim/src/x.rs", "sim::f", "call:unwrap"),
            finding("D6", "crates/sim/src/x.rs", "sim::f", "call:unwrap"),
        ];
        b[0].line = 99; // lines don't matter
        assign_fingerprints(&mut b);
        assert_eq!(a[0].fingerprint, b[0].fingerprint);
        assert_eq!(a[1].fingerprint, b[1].fingerprint);
    }

    #[test]
    fn baseline_roundtrip_and_ratchet() {
        let mut old = vec![
            finding("D6", "crates/sim/src/x.rs", "sim::f", "call:unwrap"),
            finding("P2", "crates/sim/src/p.rs", "sim::U::on_q", "alloc:format!"),
        ];
        assign_fingerprints(&mut old);
        let baseline = parse_baseline(&render_baseline(&old)).unwrap();
        assert_eq!(baseline.entries.len(), 2);

        // Current run: the D6 still fires, the P2 was fixed, a D5 is new.
        let mut now = vec![
            finding("D6", "crates/sim/src/x.rs", "sim::f", "call:unwrap"),
            finding("D5", "crates/sim/src/s.rs", "sim::g", "taint:Instant::now"),
        ];
        assign_fingerprints(&mut now);
        let r = baseline.ratchet(now);
        assert_eq!(r.new.len(), 1);
        assert_eq!(r.new[0].rule, "D5");
        assert_eq!(r.baselined.len(), 1);
        assert_eq!(r.stale.len(), 1);
        assert!(r.stale[0].1.contains("P2"), "{:?}", r.stale);
    }

    #[test]
    fn parser_tolerates_unknown_keys_and_escapes() {
        let src = "{ \"version\": 1, \"note\": \"hand \\\"edited\\\"\",
                    \"fingerprints\": { \"00ff\": \"D1 a \\u2014 b\" } }";
        let b = parse_baseline(src).unwrap();
        assert_eq!(b.entries.get("00ff").unwrap(), "D1 a \u{2014} b");
    }

    #[test]
    fn empty_baseline_parses() {
        let b = parse_baseline("{\n  \"version\": 1,\n  \"fingerprints\": {}\n}\n").unwrap();
        assert!(b.entries.is_empty());
    }
}
