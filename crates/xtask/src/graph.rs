//! An approximate workspace call graph over the parsed function set.
//!
//! Resolution is name-based and deliberately over-approximate — when a
//! call cannot be pinned to one definition it resolves to *every*
//! same-named candidate, never to none:
//!
//! * `helper(…)` → every free `fn helper` in the analyzed crates;
//! * `Type::helper(…)` → every `fn helper` whose `impl` block names
//!   `Type` (as the implementing type or as the implemented trait), with
//!   `Self::` mapped to the caller's own owner;
//! * `x.helper(…)` → every method named `helper` anywhere in the
//!   workspace (the receiver's type is unknown without real inference);
//! * macros and unresolved paths (e.g. `std::…`) produce no edges — the
//!   passes treat those as leaf *sites*, not calls.
//!
//! False edges inflate reachability, so the interprocedural rules err
//! toward reporting; the baseline ratchet (see [`crate::baseline`])
//! absorbs accepted noise while still catching every newly-introduced
//! flow.

use crate::lexer::{Comment, Tok};
use crate::parser::{CallKind, FnDef};
use crate::rules::{Allows, FileCtx};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One analyzed source file: its lint context, token stream, comments,
/// parsed allow annotations, and parsed function items.
#[derive(Debug)]
pub struct ParsedFile {
    /// Crate / path context.
    pub ctx: FileCtx,
    /// Full token stream (for body-range scanning in the passes).
    pub toks: Vec<Tok>,
    /// All comments (already consumed into `allows`, kept for doc scans).
    pub comments: Vec<Comment>,
    /// Parsed allow annotations.
    pub allows: Allows,
    /// Function items in source order.
    pub fns: Vec<FnDef>,
}

/// One node in the call graph.
#[derive(Debug)]
pub struct Node {
    /// Index into the `ParsedFile` list this fn came from.
    pub file: usize,
    /// Index into that file's `fns`.
    pub fn_idx: usize,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct Graph {
    /// All nodes, in (file, fn) order.
    pub nodes: Vec<Node>,
    /// Adjacency: for each node, the nodes it may call (sorted, deduped).
    pub edges: Vec<Vec<usize>>,
}

/// The result of a reachability sweep: shortest-hop BFS parents.
#[derive(Debug)]
pub struct Reach {
    /// `parent[i]` is `Some(p)` when node `i` was reached via `p`
    /// (`p == i` for roots); `None` when unreachable.
    pub parent: Vec<Option<usize>>,
}

impl Reach {
    /// Is node `i` reachable from any root?
    pub fn contains(&self, i: usize) -> bool {
        self.parent[i].is_some()
    }

    /// The root→…→`i` node path (empty when unreachable).
    pub fn path_to(&self, i: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut cur = i;
        loop {
            match self.parent[cur] {
                Some(p) => {
                    path.push(cur);
                    if p == cur {
                        break;
                    }
                    cur = p;
                }
                None => return Vec::new(),
            }
        }
        path.reverse();
        path
    }
}

impl Graph {
    /// Build the graph over every fn in `files`.
    pub fn build(files: &[ParsedFile]) -> Graph {
        let mut nodes = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for (di, _) in f.fns.iter().enumerate() {
                nodes.push(Node {
                    file: fi,
                    fn_idx: di,
                });
            }
        }

        // Name-resolution maps. Test fns neither call nor get called —
        // the passes only reason about live library code.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut owned: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            let d = &files[n.file].fns[n.fn_idx];
            if d.in_test {
                continue;
            }
            match &d.owner {
                None => free.entry(d.name.as_str()).or_default().push(i),
                Some(o) => {
                    methods.entry(d.name.as_str()).or_default().push(i);
                    owned
                        .entry((o.as_str(), d.name.as_str()))
                        .or_default()
                        .push(i);
                    if let Some(tr) = &d.trait_impl {
                        owned
                            .entry((tr.as_str(), d.name.as_str()))
                            .or_default()
                            .push(i);
                    }
                }
            }
        }

        let mut edges = Vec::with_capacity(nodes.len());
        for n in &nodes {
            let d = &files[n.file].fns[n.fn_idx];
            let mut out = BTreeSet::new();
            if !d.in_test {
                for c in &d.calls {
                    let targets: Option<&Vec<usize>> = match &c.kind {
                        CallKind::Free => free.get(c.name.as_str()),
                        CallKind::Method => methods.get(c.name.as_str()),
                        CallKind::Qualified(q) => {
                            let q = if q == "Self" {
                                d.owner.as_deref().unwrap_or(q)
                            } else {
                                q.as_str()
                            };
                            owned.get(&(q, c.name.as_str()))
                        }
                        CallKind::Macro => None,
                    };
                    if let Some(ts) = targets {
                        out.extend(ts.iter().copied());
                    }
                }
            }
            edges.push(out.into_iter().collect());
        }
        Graph { nodes, edges }
    }

    /// BFS over call edges from `roots`, recording shortest-hop parents.
    pub fn reach(&self, roots: impl IntoIterator<Item = usize>) -> Reach {
        let mut parent = vec![None; self.nodes.len()];
        let mut queue = VecDeque::new();
        for r in roots {
            if parent[r].is_none() {
                parent[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &j in &self.edges[i] {
                if parent[j].is_none() {
                    parent[j] = Some(i);
                    queue.push_back(j);
                }
            }
        }
        Reach { parent }
    }

    /// `crate::Owner::name` display name for node `i`.
    pub fn qual_name(&self, files: &[ParsedFile], i: usize) -> String {
        let n = &self.nodes[i];
        let d = &files[n.file].fns[n.fn_idx];
        format!("{}::{}", files[n.file].ctx.crate_name, d.qual_name())
    }

    /// Render a node path as `a::F::f → b::G::g → …`.
    pub fn render_path(&self, files: &[ParsedFile], path: &[usize]) -> String {
        path.iter()
            .map(|&i| self.qual_name(files, i))
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// The fn definition behind node `i`.
    pub fn def<'a>(&self, files: &'a [ParsedFile], i: usize) -> &'a FnDef {
        let n = &self.nodes[i];
        &files[n.file].fns[n.fn_idx]
    }

    /// The file behind node `i`.
    pub fn file<'a>(&self, files: &'a [ParsedFile], i: usize) -> &'a ParsedFile {
        &files[self.nodes[i].file]
    }
}

/// Parse one source file into a [`ParsedFile`].
pub fn parse_file(src: &str, ctx: FileCtx) -> ParsedFile {
    let s = crate::lexer::scan(src);
    let fns = crate::parser::parse_fns(&s.toks);
    let allows = crate::rules::parse_allows(&s.comments);
    ParsedFile {
        ctx,
        toks: s.toks,
        comments: s.comments,
        allows,
        fns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf(crate_name: &str, rel: &str, src: &str) -> ParsedFile {
        parse_file(
            src,
            FileCtx {
                crate_name: crate_name.to_string(),
                rel_path: rel.to_string(),
            },
        )
    }

    fn idx(g: &Graph, files: &[ParsedFile], name: &str) -> usize {
        (0..g.nodes.len())
            .find(|&i| g.def(files, i).name == name)
            .unwrap()
    }

    #[test]
    fn free_calls_link_across_files() {
        let files = vec![
            pf("sim", "crates/sim/src/a.rs", "pub fn entry() { helper(); }"),
            pf(
                "core",
                "crates/core/src/b.rs",
                "pub fn helper() { leaf(); }\nfn leaf() {}",
            ),
        ];
        let g = Graph::build(&files);
        let r = g.reach([idx(&g, &files, "entry")]);
        let leaf = idx(&g, &files, "leaf");
        assert!(r.contains(leaf));
        let path = r.path_to(leaf);
        assert_eq!(
            g.render_path(&files, &path),
            "sim::entry → core::helper → core::leaf"
        );
    }

    #[test]
    fn qualified_calls_resolve_through_traits_and_self() {
        let src = "
            pub trait Hook { fn fire(&self); }
            pub struct Gun;
            impl Gun {
                pub fn trigger(&self) { Self::cock(); Hook::fire(self); }
                fn cock() {}
            }
            impl Hook for Gun { fn fire(&self) { boom(); } }
            fn boom() {}
        ";
        let files = vec![pf("sim", "crates/sim/src/g.rs", src)];
        let g = Graph::build(&files);
        let r = g.reach([idx(&g, &files, "trigger")]);
        assert!(r.contains(idx(&g, &files, "cock")));
        assert!(r.contains(idx(&g, &files, "boom")));
    }

    #[test]
    fn method_calls_over_approximate_by_name() {
        let files = vec![
            pf("sim", "crates/sim/src/a.rs", "pub fn go(x: X) { x.step(); }"),
            pf(
                "core",
                "crates/core/src/b.rs",
                "impl A { pub fn step(&self) {} }\nimpl B { pub fn step(&self) { deep(); } }\nfn deep() {}",
            ),
        ];
        let g = Graph::build(&files);
        let r = g.reach([idx(&g, &files, "go")]);
        // Both candidates (and B::step's callee) are reachable.
        assert!(r.contains(idx(&g, &files, "deep")));
    }

    #[test]
    fn test_fns_are_isolated() {
        let src = "
            pub fn live() {}
            #[cfg(test)]
            mod tests {
                fn t() { dangerous(); }
            }
            fn dangerous() { q.unwrap(); }
        ";
        let files = vec![pf("sim", "crates/sim/src/a.rs", src)];
        let g = Graph::build(&files);
        let r = g.reach([idx(&g, &files, "live")]);
        assert!(!r.contains(idx(&g, &files, "dangerous")));
        // And the test fn itself produces no outgoing edges.
        let t = idx(&g, &files, "t");
        assert!(g.edges[t].is_empty());
    }
}
