//! **P2 — hot-path allocation.** Flags `Vec::new`, `.clone()`,
//! `.to_vec()`, and `format!` inside the per-event hooks and the
//! `EpochParallel` worker loop — the two places PR 1's event-loop
//! optimisation and PR 7's epoch-parallel stepping bought their wins,
//! and the two places a stray per-event allocation silently gives them
//! back.
//!
//! The hot set is:
//!
//! * every method of an `impl … for` block implementing `Policy`,
//!   `FaultHook`, or `Observer` (and the trait declarations' default
//!   bodies) — these run once per simulated event;
//! * every `on_*` / `reschedule` fn in `crates/sim/src/engine.rs` (the
//!   engine's own event-loop hooks, same set P1 documents);
//! * `execute_shards_epoch` in `crates/cluster/src/run.rs` — closures
//!   lex inside their enclosing fn, so the epoch worker bodies land
//!   here.
//!
//! Scope is the hook bodies themselves (closures included), not their
//! transitive callees: a named helper that allocates is a deliberate,
//! reviewable choice; an inline allocation in the per-event loop is
//! usually an accident. Suppress with `// lint: allow(P2) — reason`.

use crate::graph::ParsedFile;
use crate::parser::{CallKind, FnDef};
use crate::rules::Finding;

/// Traits whose impl methods run once per simulated event.
const HOT_TRAITS: &[&str] = &["Policy", "FaultHook", "Observer"];

fn is_hot(file: &ParsedFile, d: &FnDef) -> bool {
    let in_hot_trait = d
        .trait_impl
        .as_deref()
        .is_some_and(|t| HOT_TRAITS.contains(&t))
        || (d.in_trait_decl && d.owner.as_deref().is_some_and(|o| HOT_TRAITS.contains(&o)));
    let engine_hook = file.ctx.rel_path == "crates/sim/src/engine.rs"
        && (d.name.starts_with("on_") || d.name == "reschedule");
    let epoch_worker =
        file.ctx.rel_path == "crates/cluster/src/run.rs" && d.name == "execute_shards_epoch";
    in_hot_trait || engine_hook || epoch_worker
}

/// Run the P2 pass. Findings are appended unsorted; the caller sorts.
pub fn rule_p2(files: &[ParsedFile], findings: &mut Vec<Finding>) {
    for file in files {
        for d in &file.fns {
            if d.in_test || !is_hot(file, d) {
                continue;
            }
            for c in &d.calls {
                let what = match (&c.kind, c.name.as_str()) {
                    (CallKind::Qualified(q), "new") if q == "Vec" => Some("Vec::new"),
                    (CallKind::Method, "clone") => Some(".clone()"),
                    (CallKind::Method, "to_vec") => Some(".to_vec()"),
                    (CallKind::Macro, "format") => Some("format!"),
                    _ => None,
                };
                let Some(what) = what else { continue };
                if file.allows.suppresses("P2", c.line) {
                    continue;
                }
                let qual = format!("{}::{}", file.ctx.crate_name, d.qual_name());
                findings.push(Finding {
                    file: file.ctx.rel_path.clone(),
                    line: c.line,
                    rule: "P2",
                    message: format!("{what} allocates inside per-event hot path `{qual}`"),
                    hint: "hoist the allocation out of the hook, reuse a scratch buffer, or annotate: // lint: allow(P2) — <why this is not per-event>".to_string(),
                    symbol: qual,
                    kind: format!("alloc:{what}"),
                    fingerprint: String::new(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::parse_file;
    use crate::rules::FileCtx;

    fn pf(rel: &str, src: &str) -> ParsedFile {
        parse_file(
            src,
            FileCtx {
                crate_name: "sim".to_string(),
                rel_path: rel.to_string(),
            },
        )
    }

    fn run(files: &[ParsedFile]) -> Vec<Finding> {
        let mut fs = Vec::new();
        rule_p2(files, &mut fs);
        fs
    }

    #[test]
    fn policy_impl_allocations_are_reported() {
        let files = vec![pf(
            "crates/sim/src/p.rs",
            "
            impl Policy for Unit {
                fn on_query(&mut self, q: &Q) {
                    let label = format!(\"q{}\", q.id);
                    let copy = q.versions.to_vec();
                }
                fn decide(&self) -> Vec<u32> { Vec::new() }
            }
            ",
        )];
        let fs = run(&files);
        let kinds: Vec<_> = fs.iter().map(|f| f.kind.as_str()).collect();
        assert_eq!(
            kinds,
            vec!["alloc:format!", "alloc:.to_vec()", "alloc:Vec::new"]
        );
        assert!(fs[0].symbol.contains("Unit::on_query"), "{}", fs[0].symbol);
    }

    #[test]
    fn engine_hooks_and_epoch_worker_are_hot() {
        let engine = pf(
            "crates/sim/src/engine.rs",
            "impl Sim { fn on_completion(&mut self) { self.buf.clone(); } fn cold(&self) { x.clone(); } }",
        );
        let cluster = pf(
            "crates/cluster/src/run.rs",
            "fn execute_shards_epoch() { scope.spawn(move || { hooks.clone(); }); }",
        );
        let fs = run(&[engine, cluster]);
        let syms: Vec<_> = fs.iter().map(|f| f.symbol.as_str()).collect();
        assert_eq!(
            syms,
            vec!["sim::Sim::on_completion", "sim::execute_shards_epoch"]
        );
    }

    #[test]
    fn allow_p2_suppresses() {
        let files = vec![pf(
            "crates/sim/src/p.rs",
            "
            impl Observer for Rec {
                fn on_event(&mut self) {
                    // lint: allow(P2) — amortized: grows once then reused
                    self.names.push(format!(\"e\"));
                }
            }
            ",
        )];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn cold_code_is_ignored() {
        let files = vec![pf(
            "crates/sim/src/p.rs",
            "pub fn setup() -> Vec<u32> { let v = Vec::new(); x.clone(); v }",
        )];
        assert!(run(&files).is_empty());
    }
}
