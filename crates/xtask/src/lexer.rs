//! A minimal token-level Rust scanner — pure std, no `syn`.
//!
//! The lint rules (see [`crate::rules`]) only need a token stream with line
//! numbers, comment text, and a notion of "is this token inside test code".
//! The lexer therefore handles exactly the lexical constructs that would
//! otherwise produce false positives:
//!
//! * line (`//`) and block (`/* */`, nested) comments, with doc comments
//!   (`///`, `//!`, `/**`, `/*!`) kept separate so `P1` can find them and so
//!   code inside doc examples never reaches the rules;
//! * string, raw-string (`r#"…"#`), byte-string, and char literals (so a
//!   `"HashMap"` in a message is not a `HashMap` use);
//! * char literal vs. lifetime disambiguation (`'a'` vs. `'a`);
//! * float vs. integer literal classification (for `D4`'s `== <float>`
//!   heuristic);
//! * `#[cfg(test)]` / `#[test]` item tracking, so panics in unit tests are
//!   exempt from `D3` by construction.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `as`, …).
    Ident,
    /// A lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
    /// Integer literal (including hex/octal/binary and int-suffixed forms).
    Int,
    /// Float literal (`1.0`, `1e-6`, `2f64`, …).
    Float,
    /// String, raw-string, or byte-string literal (content dropped).
    Str,
    /// Char or byte literal (content dropped).
    Char,
    /// Punctuation. Multi-char operators the rules care about (`::`, `==`,
    /// `!=`, `->`, `=>`) arrive as one token; everything else is one char.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexeme kind.
    pub kind: TokKind,
    /// Lexeme text (empty for string/char literals — rules never need it).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Byte range `[start, end)` of the lexeme in the source. Always on
    /// char boundaries, `start <= end <= src.len()`, and starts are
    /// monotone across the token stream (pinned by a workspace-wide
    /// property test).
    pub span: (usize, usize),
    /// True when the token sits inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

/// A comment, captured for allow-annotation parsing (`//` style) and doc
/// scanning (`///` / `//!` style).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body (without the `//` / `/*` markers).
    pub text: String,
    /// True for doc comments (`///`, `//!`, `/**`, `/*!`).
    pub is_doc: bool,
}

/// Lexer output: the token stream plus every comment encountered.
#[derive(Debug, Default)]
pub struct Scan {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`, then mark test-item token ranges.
pub fn scan(src: &str) -> Scan {
    let mut s = lex(src);
    mark_test_items(&mut s.toks);
    s
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn lex(src: &str) -> Scan {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    // Byte offset of each char index (plus the end sentinel), so token
    // spans can be reported in byte coordinates against the original src.
    let mut byte_of = Vec::with_capacity(n + 1);
    let mut o = 0usize;
    for c in &b {
        byte_of.push(o);
        o += c.len_utf8();
    }
    byte_of.push(o);
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Scan::default();

    macro_rules! push {
        ($kind:expr, $text:expr, $line:expr, $start:expr, $end:expr) => {
            out.toks.push(Tok {
                kind: $kind,
                text: $text,
                line: $line,
                span: (byte_of[$start], byte_of[($end).min(n)]),
                in_test: false,
            })
        };
    }

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                let text: String = b[start..j].iter().collect();
                // `///x` and `//!x` are doc comments; `////…` is not.
                let is_doc =
                    (text.starts_with('/') && !text.starts_with("//")) || text.starts_with('!');
                out.comments.push(Comment { line, text, is_doc });
                i = j;
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let start_line = line;
                let start = i + 2;
                let is_doc = start < n && (b[start] == '*' || b[start] == '!')
                    // `/**/` is empty, `/***/` is plain.
                    && !(start + 1 < n && b[start] == '*' && b[start + 1] == '/');
                let mut depth = 1usize;
                let mut j = start;
                while j < n && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: b[start..end].iter().collect(),
                    is_doc,
                });
                i = j;
            }
            '"' => {
                let start_line = line;
                let start = i;
                i += 1;
                while i < n {
                    match b[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                push!(TokKind::Str, String::new(), start_line, start, i);
            }
            '\'' => {
                // Char literal vs. lifetime.
                let next = b.get(i + 1).copied();
                let after = b.get(i + 2).copied();
                let is_char = match next {
                    Some('\\') => true,
                    Some(c2) if is_ident_start(c2) || c2.is_ascii_digit() => after == Some('\''),
                    Some(_) => true, // e.g. '(' — a char literal like '('
                    None => false,
                };
                if is_char {
                    let start_line = line;
                    let start = i;
                    i += 1;
                    while i < n {
                        match b[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    push!(TokKind::Char, String::new(), start_line, start, i);
                } else {
                    let start = i + 1;
                    let mut j = start;
                    while j < n && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    push!(TokKind::Lifetime, b[start..j].iter().collect(), line, i, j);
                    i = j;
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                let mut j = i;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                let text: String = b[start..j].iter().collect();
                // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
                let is_raw_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb")
                    && j < n
                    && (b[j] == '"' || b[j] == '#');
                if is_raw_prefix && consume_raw_string(&b, &mut j, &mut line, text.contains('r')) {
                    push!(TokKind::Str, String::new(), line, start, j);
                    i = j;
                } else if text == "b" && j < n && b[j] == '\'' {
                    // Byte literal b'x'.
                    let mut k = j + 1;
                    while k < n {
                        match b[k] {
                            '\\' => k += 2,
                            '\'' => {
                                k += 1;
                                break;
                            }
                            _ => k += 1,
                        }
                    }
                    push!(TokKind::Char, String::new(), line, start, k);
                    i = k;
                } else {
                    push!(TokKind::Ident, text, line, start, j);
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let (kind, j) = lex_number(&b, i);
                push!(kind, b[i..j].iter().collect(), line, i, j);
                i = j;
            }
            _ => {
                let two: String = b[i..n.min(i + 2)].iter().collect();
                let tok = match two.as_str() {
                    "::" | "==" | "!=" | "->" | "=>" => two,
                    _ => c.to_string(),
                };
                let start = i;
                i += tok.chars().count();
                push!(TokKind::Punct, tok, line, start, i);
            }
        }
    }
    out
}

/// Consume a raw (or raw-byte) string starting at `*j` (positioned at `#` or
/// `"` after the `r`/`br` prefix). Returns false if this is not actually a
/// raw string (e.g. `r#foo` raw identifiers), leaving `*j` untouched.
fn consume_raw_string(b: &[char], j: &mut usize, line: &mut u32, _raw: bool) -> bool {
    let n = b.len();
    let mut k = *j;
    let mut hashes = 0usize;
    while k < n && b[k] == '#' {
        hashes += 1;
        k += 1;
    }
    if k >= n || b[k] != '"' {
        return false; // raw identifier like r#fn
    }
    k += 1;
    'outer: while k < n {
        if b[k] == '\n' {
            *line += 1;
            k += 1;
            continue;
        }
        if b[k] == '"' {
            let mut h = 0usize;
            while h < hashes && k + 1 + h < n && b[k + 1 + h] == '#' {
                h += 1;
            }
            if h == hashes {
                k += 1 + hashes;
                break 'outer;
            }
        }
        k += 1;
    }
    *j = k;
    true
}

/// Lex a numeric literal starting at `i`; returns (kind, end index).
fn lex_number(b: &[char], i: usize) -> (TokKind, usize) {
    let n = b.len();
    let mut j = i;
    let mut float = false;
    if b[j] == '0' && j + 1 < n && matches!(b[j + 1], 'x' | 'X' | 'o' | 'O' | 'b' | 'B') {
        j += 2;
        while j < n && (b[j].is_ascii_hexdigit() || b[j] == '_') {
            j += 1;
        }
        return (TokKind::Int, j);
    }
    while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
        j += 1;
    }
    if j < n && b[j] == '.' {
        let next = b.get(j + 1).copied();
        match next {
            // `1.5` — fraction digits follow.
            Some(c) if c.is_ascii_digit() => {
                float = true;
                j += 1;
                while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                    j += 1;
                }
            }
            // `1..2` is a range, `1.max(2)` a method call — stop at the dot.
            Some('.') => return (TokKind::Int, j),
            Some(c) if is_ident_start(c) => return (TokKind::Int, j),
            // Trailing-dot float: `1.`
            _ => {
                float = true;
                j += 1;
            }
        }
    }
    if j < n && matches!(b[j], 'e' | 'E') {
        let mut k = j + 1;
        if k < n && matches!(b[k], '+' | '-') {
            k += 1;
        }
        if k < n && b[k].is_ascii_digit() {
            float = true;
            j = k;
            while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                j += 1;
            }
        }
    }
    // Type suffix (`f64`, `u32`, …).
    let suffix_start = j;
    while j < n && is_ident_continue(b[j]) {
        j += 1;
    }
    let suffix: String = b[suffix_start..j].iter().collect();
    if suffix.starts_with('f') {
        float = true;
    }
    (if float { TokKind::Float } else { TokKind::Int }, j)
}

/// Mark tokens belonging to `#[cfg(test)]` / `#[test]` items as test code.
///
/// After a test attribute, everything up to the end of the following item is
/// test code: either the matching `}` of the item's first brace block, or a
/// `;` encountered before any brace (for `use` / declarations).
fn mark_test_items(toks: &mut [Tok]) {
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct && toks[i].text == "#") {
            i += 1;
            continue;
        }
        // Parse one attribute `#[ … ]`, tracking bracket depth.
        let attr_start = i;
        let Some(open) = toks.get(i + 1) else { break };
        if !(open.kind == TokKind::Punct && open.text == "[") {
            i += 1;
            continue;
        }
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut has_test = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct && t.text == "[" {
                depth += 1;
            } else if t.kind == TokKind::Punct && t.text == "]" {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokKind::Ident && t.text == "test" {
                // `#[cfg(not(test))]` guards *non*-test code.
                let negated = j >= 2
                    && toks[j - 1].text == "("
                    && toks[j - 2].kind == TokKind::Ident
                    && toks[j - 2].text == "not";
                if !negated {
                    has_test = true;
                }
            }
            j += 1;
        }
        if !has_test {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then consume the item.
        let mut k = j + 1;
        while k + 1 < toks.len()
            && toks[k].kind == TokKind::Punct
            && toks[k].text == "#"
            && toks[k + 1].text == "["
        {
            let mut d = 0usize;
            let mut m = k + 1;
            while m < toks.len() {
                if toks[m].text == "[" {
                    d += 1;
                } else if toks[m].text == "]" {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                m += 1;
            }
            k = m + 1;
        }
        // Find the item's extent: first `{ … }` block, or a `;` before it.
        // A stray `}` with no open block (malformed input) ends the item
        // too — the lexer must never panic on non-Rust soup.
        let mut brace = 0usize;
        let mut end = k;
        while end < toks.len() {
            let t = &toks[end];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => brace += 1,
                    "}" => {
                        if brace <= 1 {
                            break;
                        }
                        brace -= 1;
                    }
                    ";" if brace == 0 => break,
                    _ => {}
                }
            }
            end += 1;
        }
        let stop = (end + 1).min(toks.len());
        for t in &mut toks[attr_start..stop] {
            t.in_test = true;
        }
        i = end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in a block */
            let s = "HashMap";
            let r = r#"HashMap"#;
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|t| *t == "HashMap").count(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<_> = s
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(s.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn float_classification() {
        let s = scan("let a = 1.5; let b = 1..2; let c = 1e-6; let d = 2f64; let e = 3;");
        let kinds: Vec<_> = s
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Float,
                TokKind::Int,
                TokKind::Int,
                TokKind::Float,
                TokKind::Float,
                TokKind::Int
            ]
        );
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); }
            }
        ";
        let s = scan(src);
        let unwraps: Vec<_> = s
            .toks
            .iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let src = "
            #[test]
            fn a_test() { q.unwrap(); }
            fn live() { r.unwrap(); }
        ";
        let s = scan(src);
        let unwraps: Vec<_> = s
            .toks
            .iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn doc_comments_are_flagged() {
        let s = scan("/// docs O(1)\nfn f() {}\n// plain\n//! inner doc");
        let docs: Vec<_> = s.comments.iter().map(|c| c.is_doc).collect();
        assert_eq!(docs, vec![true, false, true]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let s = scan("a\nb\n  c");
        let lines: Vec<_> = s.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
