//! # xtask — workspace automation for the UNIT repro
//!
//! Two subcommands, both zero-dependency static analysis:
//!
//! * `cargo xtask lint` — the fast per-file pass: walks every `.rs` file
//!   under `crates/` and enforces the line-level determinism and
//!   invariant rules (D1–D4, P1, A1) the golden-digest test relies on.
//! * `cargo xtask analyze` — everything `lint` does, plus the
//!   interprocedural passes over an approximate workspace call graph:
//!   D5 digest taint ([`taint`]), D6 panic reachability ([`reach`]),
//!   and P2 hot-path allocation ([`hotpath`]) — gated by the
//!   `xtask-baseline.json` ratchet ([`baseline`]) and emitted as text,
//!   JSON, or SARIF ([`sarif`]) for code-scanning annotations.
//!
//! See [`rules`] for the rule table and the allow-annotation syntax, and
//! DESIGN.md §2.2 / §7 for the invariant each rule guards.
//!
//! Test code is exempt by construction: files under `tests/`, `benches/`,
//! `examples/`, and `fixtures/` directories are skipped by the walker, and
//! `#[cfg(test)]` / `#[test]` items are skipped by the lexer.

#![warn(missing_docs)]

pub mod baseline;
pub mod graph;
pub mod hotpath;
pub mod lexer;
pub mod parser;
pub mod reach;
pub mod rules;
pub mod sarif;
pub mod taint;

pub use rules::{check_source, FileCtx, Finding};

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Directory names the walker never descends into.
const SKIP_DIRS: &[&str] = &["tests", "benches", "examples", "fixtures", "target"];

/// Collect every lintable `.rs` file under `<root>/crates`, sorted by path
/// so output and exit codes are stable.
///
/// # Errors
/// Fails when the directory tree cannot be read.
pub fn workspace_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates = root.join("crates");
    let mut files = Vec::new();
    walk(&crates, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Build the [`FileCtx`] for a file, given the workspace root.
///
/// Returns `None` for files that do not live under `<root>/crates/<name>/`.
pub fn file_ctx(root: &Path, path: &Path) -> Option<FileCtx> {
    let rel = path.strip_prefix(root).ok()?;
    let mut parts = rel.components().map(|c| c.as_os_str().to_string_lossy());
    if parts.next().as_deref() != Some("crates") {
        return None;
    }
    let crate_name = parts.next()?.to_string();
    let rel_path = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/");
    Some(FileCtx {
        crate_name,
        rel_path,
    })
}

/// Lint the whole workspace rooted at `root`. Findings are ordered by file
/// path, then line.
///
/// # Errors
/// Fails when the tree cannot be walked or a source file cannot be read.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for path in workspace_rs_files(root)? {
        let Some(ctx) = file_ctx(root, &path) else {
            continue;
        };
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        findings.extend(check_source(&src, &ctx));
    }
    Ok(findings)
}

/// Crates included in the interprocedural call graph: the library crates
/// whose code can reach simulator state. `bench` (wall-clock measurement
/// by design) and `xtask` itself stay out.
pub const GRAPH_CRATES: &[&str] = &[
    "core",
    "sim",
    "workload",
    "baselines",
    "cluster",
    "faults",
    "obs",
    "server",
];

/// Run the full analysis — per-file rules plus the D5/D6/P2 graph passes —
/// over the workspace rooted at `root`. Findings come back sorted by
/// (file, line, rule) with fingerprints assigned; baseline gating is the
/// caller's job (see [`baseline::Baseline::ratchet`]).
///
/// # Errors
/// Fails when the tree cannot be walked or a source file cannot be read.
pub fn analyze_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let mut parsed: Vec<graph::ParsedFile> = Vec::new();
    for path in workspace_rs_files(root)? {
        let Some(ctx) = file_ctx(root, &path) else {
            continue;
        };
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        findings.extend(check_source(&src, &ctx));
        if GRAPH_CRATES.contains(&ctx.crate_name.as_str()) {
            parsed.push(graph::parse_file(&src, ctx));
        }
    }
    let g = graph::Graph::build(&parsed);
    taint::rule_d5(&parsed, &g, &mut findings);
    reach::rule_d6(&parsed, &g, &mut findings);
    hotpath::rule_p2(&parsed, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.kind == b.kind
    });
    baseline::assign_fingerprints(&mut findings);
    Ok(findings)
}

/// Render findings as human-readable text, one violation per paragraph.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: {} {}", f.file, f.line, f.rule, f.message);
        let _ = writeln!(out, "    fix: {}", f.hint);
    }
    if findings.is_empty() {
        out.push_str("unit-lint: clean\n");
    } else {
        let _ = writeln!(out, "unit-lint: {} violation(s)", findings.len());
    }
    out
}

/// Render findings as a JSON array (hand-rolled: xtask has no dependencies).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{},\"hint\":{}",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(&f.message),
            json_str(&f.hint)
        );
        if !f.symbol.is_empty() {
            let _ = write!(out, ",\"symbol\":{}", json_str(&f.symbol));
        }
        if !f.fingerprint.is_empty() {
            let _ = write!(out, ",\"fingerprint\":{}", json_str(&f.fingerprint));
        }
        out.push('}');
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn file_ctx_parses_crate_layout() {
        let root = Path::new("/ws");
        let ctx = file_ctx(root, Path::new("/ws/crates/sim/src/engine.rs")).unwrap();
        assert_eq!(ctx.crate_name, "sim");
        assert_eq!(ctx.rel_path, "crates/sim/src/engine.rs");
        assert!(file_ctx(root, Path::new("/ws/vendor/rand/src/lib.rs")).is_none());
    }

    #[test]
    fn render_text_mentions_rule_and_line() {
        let f = Finding::new(
            "crates/sim/src/x.rs".into(),
            7,
            "D1",
            "m".into(),
            "h".into(),
        );
        let text = render_text(&[f]);
        assert!(text.contains("crates/sim/src/x.rs:7: D1 m"));
        assert!(text.contains("fix: h"));
    }
}
