//! # xtask — workspace automation for the UNIT repro
//!
//! The only subcommand today is `lint`: a zero-dependency static-analysis
//! pass (`cargo xtask lint`) that walks every `.rs` file under `crates/`
//! and enforces the determinism and invariant rules the golden-digest test
//! relies on. See [`rules`] for the rule table and the allow-annotation
//! syntax, and DESIGN.md §2.2 for the invariant each rule guards.
//!
//! Test code is exempt by construction: files under `tests/`, `benches/`,
//! `examples/`, and `fixtures/` directories are skipped by the walker, and
//! `#[cfg(test)]` / `#[test]` items are skipped by the lexer.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{check_source, FileCtx, Finding};

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Directory names the walker never descends into.
const SKIP_DIRS: &[&str] = &["tests", "benches", "examples", "fixtures", "target"];

/// Collect every lintable `.rs` file under `<root>/crates`, sorted by path
/// so output and exit codes are stable.
///
/// # Errors
/// Fails when the directory tree cannot be read.
pub fn workspace_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates = root.join("crates");
    let mut files = Vec::new();
    walk(&crates, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Build the [`FileCtx`] for a file, given the workspace root.
///
/// Returns `None` for files that do not live under `<root>/crates/<name>/`.
pub fn file_ctx(root: &Path, path: &Path) -> Option<FileCtx> {
    let rel = path.strip_prefix(root).ok()?;
    let mut parts = rel.components().map(|c| c.as_os_str().to_string_lossy());
    if parts.next().as_deref() != Some("crates") {
        return None;
    }
    let crate_name = parts.next()?.to_string();
    let rel_path = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/");
    Some(FileCtx {
        crate_name,
        rel_path,
    })
}

/// Lint the whole workspace rooted at `root`. Findings are ordered by file
/// path, then line.
///
/// # Errors
/// Fails when the tree cannot be walked or a source file cannot be read.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for path in workspace_rs_files(root)? {
        let Some(ctx) = file_ctx(root, &path) else {
            continue;
        };
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        findings.extend(check_source(&src, &ctx));
    }
    Ok(findings)
}

/// Render findings as human-readable text, one violation per paragraph.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: {} {}", f.file, f.line, f.rule, f.message);
        let _ = writeln!(out, "    fix: {}", f.hint);
    }
    if findings.is_empty() {
        out.push_str("unit-lint: clean\n");
    } else {
        let _ = writeln!(out, "unit-lint: {} violation(s)", findings.len());
    }
    out
}

/// Render findings as a JSON array (hand-rolled: xtask has no dependencies).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{},\"hint\":{}}}",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(&f.message),
            json_str(&f.hint)
        );
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn file_ctx_parses_crate_layout() {
        let root = Path::new("/ws");
        let ctx = file_ctx(root, Path::new("/ws/crates/sim/src/engine.rs")).unwrap();
        assert_eq!(ctx.crate_name, "sim");
        assert_eq!(ctx.rel_path, "crates/sim/src/engine.rs");
        assert!(file_ctx(root, Path::new("/ws/vendor/rand/src/lib.rs")).is_none());
    }

    #[test]
    fn render_text_mentions_rule_and_line() {
        let f = Finding {
            file: "crates/sim/src/x.rs".into(),
            line: 7,
            rule: "D1",
            message: "m".into(),
            hint: "h".into(),
        };
        let text = render_text(&[f]);
        assert!(text.contains("crates/sim/src/x.rs:7: D1 m"));
        assert!(text.contains("fix: h"));
    }
}
