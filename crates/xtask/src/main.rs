//! `cargo xtask` — workspace automation CLI.
//!
//! ```text
//! cargo xtask lint    [--format text|json] [--root <path>]
//! cargo xtask analyze [--format text|json|sarif] [--root <path>]
//!                     [--baseline <path>] [--no-baseline] [--update-baseline]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found (for `analyze`:
//! non-baselined findings), `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
xtask — workspace automation for the UNIT repro

USAGE:
    cargo xtask lint    [--format text|json] [--root <path>]
    cargo xtask analyze [--format text|json|sarif] [--root <path>]
                        [--baseline <path>] [--no-baseline] [--update-baseline]

SUBCOMMANDS:
    lint       run the per-file determinism & invariant rules
               (D1-D4, P1, A1; see CONTRIBUTING.md and DESIGN.md §2.2)
    analyze    everything lint does, plus the interprocedural passes over
               the workspace call graph: D5 digest taint, D6 panic
               reachability, P2 hot-path allocation — gated by the
               xtask-baseline.json ratchet (see DESIGN.md §7)

OPTIONS:
    --format <fmt>       output format: text or json for lint;
                         text, json, or sarif for analyze (default: text)
    --root <path>        workspace root (default: inferred from this binary)
    --baseline <path>    baseline file (default: <root>/xtask-baseline.json)
    --no-baseline        report every finding, ignore the baseline
    --update-baseline    rewrite the baseline from the current findings
                         and exit 0
";

/// Default root: two levels above this crate's manifest dir
/// (crates/xtask -> workspace root), so the pass works from any cwd.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn lint(args: &[String]) -> ExitCode {
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" => format = f.clone(),
                _ => {
                    eprintln!("xtask: --format expects `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask: --root expects a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);

    match xtask::lint_workspace(&root) {
        Ok(findings) => {
            if format == "json" {
                print!("{}", xtask::render_json(&findings));
            } else {
                print!("{}", xtask::render_text(&findings));
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}

fn analyze(args: &[String]) -> ExitCode {
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut update_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" || f == "sarif" => format = f.clone(),
                _ => {
                    eprintln!("xtask: --format expects `text`, `json`, or `sarif`");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask: --root expects a path");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask: --baseline expects a path");
                    return ExitCode::from(2);
                }
            },
            "--no-baseline" => no_baseline = true,
            "--update-baseline" => update_baseline = true,
            other => {
                eprintln!("xtask: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("xtask-baseline.json"));

    let findings = match xtask::analyze_workspace(&root) {
        Ok(fs) => fs,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };

    if update_baseline {
        let rendered = xtask::baseline::render_baseline(&findings);
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!("xtask: write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "unit-analyze: baseline updated with {} finding(s) at {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    // Load the ratchet: a missing baseline file means an empty baseline
    // (every finding is new) unless --no-baseline asked for exactly that.
    let base = if no_baseline {
        xtask::baseline::Baseline::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(src) => match xtask::baseline::parse_baseline(&src) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("xtask: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(_) => xtask::baseline::Baseline::default(),
        }
    };
    let ratchet = base.ratchet(findings);

    match format.as_str() {
        "json" => print!("{}", xtask::render_json(&ratchet.new)),
        "sarif" => print!("{}", xtask::sarif::render_sarif(&ratchet.new)),
        _ => {
            print!("{}", xtask::render_text(&ratchet.new));
            if !ratchet.baselined.is_empty() {
                println!(
                    "unit-analyze: {} baselined finding(s) suppressed (accepted debt)",
                    ratchet.baselined.len()
                );
            }
            for (fp, desc) in &ratchet.stale {
                println!("unit-analyze: stale baseline entry {fp} ({desc}) — remove it");
            }
        }
    }
    if ratchet.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
