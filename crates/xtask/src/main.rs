//! `cargo xtask` — workspace automation CLI.
//!
//! ```text
//! cargo xtask lint [--format text|json] [--root <path>]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
xtask — workspace automation for the UNIT repro

USAGE:
    cargo xtask lint [--format text|json] [--root <path>]

SUBCOMMANDS:
    lint    run the unit-lint determinism & invariant static-analysis pass
            (rules D1-D4, P1; see CONTRIBUTING.md and DESIGN.md §2.2)

OPTIONS:
    --format text|json   output format (default: text)
    --root <path>        workspace root (default: inferred from this binary)
";

fn lint(args: &[String]) -> ExitCode {
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" => format = f.clone(),
                _ => {
                    eprintln!("xtask: --format expects `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask: --root expects a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: two levels above this crate's manifest dir
    // (crates/xtask -> workspace root), so the pass works from any cwd.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    match xtask::lint_workspace(&root) {
        Ok(findings) => {
            if format == "json" {
                print!("{}", xtask::render_json(&findings));
            } else {
                print!("{}", xtask::render_text(&findings));
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}
