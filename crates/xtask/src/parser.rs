//! A lightweight item/signature parser on top of [`crate::lexer`].
//!
//! This is *not* a Rust parser — it recovers exactly the structure the
//! interprocedural passes need from the token stream:
//!
//! * every `fn` item, with its name, 1-based line, visibility, the
//!   `impl`/`trait` block it sits in (one level — nested items keep the
//!   innermost owner), whether it is test code, and the token range of its
//!   body;
//! * every call site inside a body: free calls (`helper(…)`), method
//!   calls (`x.helper(…)`), qualified calls (`Type::helper(…)`), and
//!   macro invocations (`format!(…)`);
//! * every slice/array indexing site (`xs[i]` — a potential panic).
//!
//! Everything downstream ([`crate::graph`] and the passes built on it) is
//! an over-approximation by design: a call that cannot be resolved
//! precisely resolves to every same-named candidate, never to none.

use crate::lexer::{Tok, TokKind};

/// Keywords that can be followed by `(`/`[` without being a call or an
/// index expression.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "where", "impl", "dyn", "fn", "pub", "use", "mod", "struct",
    "enum", "trait", "type", "const", "static", "unsafe", "async", "await", "self", "Self",
    "super", "crate", "box", "yield",
];

/// Is this identifier a Rust keyword (for call/index disambiguation)?
pub fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(…)` — a free function (or tuple-struct constructor).
    Free,
    /// `x.helper(…)` — a method on some receiver.
    Method,
    /// `Type::helper(…)` — the qualifier is the last path segment before
    /// the method (`Instant` in `std::time::Instant::now`).
    Qualified(String),
    /// `helper!(…)` — a macro invocation.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// How the target is named.
    pub kind: CallKind,
    /// The called name (`now`, `clone`, `format`, …).
    pub name: String,
    /// 1-based source line.
    pub line: u32,
}

/// One slice/array indexing site (`xs[i]` — can panic on out-of-bounds).
#[derive(Debug, Clone)]
pub struct IndexSite {
    /// 1-based source line.
    pub line: u32,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` type or trait the fn is declared in, if any
    /// (`Simulator` for `impl Simulator`, `Policy` for `trait Policy` and
    /// for `impl Policy for UnitPolicy` methods the *type* is the owner).
    pub owner: Option<String>,
    /// For `impl Trait for Type` methods, the implemented trait's name.
    pub trait_impl: Option<String>,
    /// True when declared directly inside a `trait … { }` block.
    pub in_trait_decl: bool,
    /// True for unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// True when the `fn` token sits inside `#[cfg(test)]`/`#[test]` code.
    pub in_test: bool,
    /// 1-based line of the `fn` token.
    pub line: u32,
    /// Token-index range `(open, close)` of the body braces, inclusive of
    /// both brace tokens; `None` for bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Call sites inside the body, in source order.
    pub calls: Vec<Call>,
    /// Indexing sites inside the body, in source order.
    pub index_sites: Vec<IndexSite>,
}

impl FnDef {
    /// Display name: `Owner::name` or bare `name`.
    pub fn qual_name(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Parse every `fn` item out of a token stream.
pub fn parse_fns(toks: &[Tok]) -> Vec<FnDef> {
    let mut out = Vec::new();
    parse_range(toks, 0, toks.len(), None, &mut out);
    out
}

/// The owner context handed down while recursing into `impl`/`trait`
/// blocks.
#[derive(Debug, Clone)]
struct Owner {
    name: String,
    trait_impl: Option<String>,
    is_trait_decl: bool,
}

/// Index of the `}` matching the `{` at `open` (or the last token when the
/// stream is truncated — the parser never panics on malformed input).
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct {
            match toks[i].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Skip a `<…>` generics group starting at `i` (which points at `<`).
/// Returns the index just past the matching `>`.
fn skip_generics(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        if toks[j].kind == TokKind::Punct {
            match toks[j].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                // A `->` inside generics would only appear in `Fn(..) -> T`
                // bounds; it carries no angle brackets of its own.
                ";" | "{" => return j, // malformed — bail out
                _ => {}
            }
        }
        j += 1;
    }
    j
}

/// Parse one type path starting at `i`: returns the last path-segment
/// identifier (the type's name) and the index just past the path
/// (generics skipped). `&`, `mut`, and leading `::` are tolerated.
fn parse_type_path(toks: &[Tok], mut i: usize, hi: usize) -> (Option<String>, usize) {
    let mut last = None;
    while i < hi {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if matches!(t.text.as_str(), "&" | "::") => i += 1,
            TokKind::Lifetime => i += 1,
            TokKind::Ident if t.text == "mut" || t.text == "dyn" => i += 1,
            TokKind::Ident if t.text == "for" || t.text == "where" => break,
            TokKind::Ident => {
                last = Some(t.text.clone());
                i += 1;
                if i < hi && toks[i].kind == TokKind::Punct && toks[i].text == "<" {
                    i = skip_generics(toks, i);
                }
                // A path continues through `::`; anything else ends it.
                if !(i < hi && toks[i].kind == TokKind::Punct && toks[i].text == "::") {
                    break;
                }
            }
            _ => break,
        }
    }
    (last, i)
}

fn parse_range(toks: &[Tok], lo: usize, hi: usize, owner: Option<&Owner>, out: &mut Vec<FnDef>) {
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                // `impl<G> TraitOrType<…> [for Type<…>] [where …] {`
                let mut j = i + 1;
                if j < hi && toks[j].kind == TokKind::Punct && toks[j].text == "<" {
                    j = skip_generics(toks, j);
                }
                let (first, after) = parse_type_path(toks, j, hi);
                let mut trait_impl = None;
                let mut name = first.clone();
                let mut k = after;
                if k < hi && toks[k].kind == TokKind::Ident && toks[k].text == "for" {
                    trait_impl = first;
                    let (ty, after_ty) = parse_type_path(toks, k + 1, hi);
                    name = ty;
                    k = after_ty;
                }
                // Find the block (skipping any `where` clause).
                while k < hi && !(toks[k].kind == TokKind::Punct && toks[k].text == "{") {
                    k += 1;
                }
                if k >= hi {
                    i = hi;
                    continue;
                }
                let close = matching_brace(toks, k).min(hi.saturating_sub(1));
                let ctx = name.map(|name| Owner {
                    name,
                    trait_impl,
                    is_trait_decl: false,
                });
                parse_range(toks, k + 1, close, ctx.as_ref().or(owner), out);
                i = close + 1;
            }
            "trait" => {
                let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                let mut k = i + 2;
                while k < hi && !(toks[k].kind == TokKind::Punct && toks[k].text == "{") {
                    // `trait X: Bound;`-style aliases end without a block.
                    if toks[k].kind == TokKind::Punct && toks[k].text == ";" {
                        break;
                    }
                    k += 1;
                }
                if k >= hi || toks[k].text != "{" {
                    i = k + 1;
                    continue;
                }
                let close = matching_brace(toks, k).min(hi.saturating_sub(1));
                let ctx = Owner {
                    name: name_tok.text.clone(),
                    trait_impl: None,
                    is_trait_decl: true,
                };
                parse_range(toks, k + 1, close, Some(&ctx), out);
                i = close + 1;
            }
            "fn" => {
                // A real item, not a `fn(..)` pointer type.
                let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                // Visibility: scan back over qualifiers for a bare `pub`.
                let is_pub = {
                    let mut k = i;
                    let mut found = false;
                    while k > lo {
                        let p = &toks[k - 1];
                        let qualifier = p.kind == TokKind::Ident
                            && matches!(
                                p.text.as_str(),
                                "const" | "unsafe" | "async" | "extern" | "default"
                            )
                            || p.kind == TokKind::Str; // extern "C"
                        if p.kind == TokKind::Ident && p.text == "pub" {
                            found = true;
                            break;
                        }
                        if !qualifier {
                            break;
                        }
                        k -= 1;
                    }
                    // `pub(crate)` / `pub(super)`: the token after `pub` is `(`.
                    found
                        && !(toks.get(i).is_some() && {
                            // Find the pub token again and peek past it.
                            let mut k = i;
                            let mut restricted = false;
                            while k > lo {
                                let p = &toks[k - 1];
                                if p.kind == TokKind::Ident && p.text == "pub" {
                                    restricted = toks
                                        .get(k)
                                        .is_some_and(|n| n.kind == TokKind::Punct && n.text == "(");
                                    break;
                                }
                                k -= 1;
                            }
                            restricted
                        })
                };
                // Signature: scan to the body `{` or a bodyless `;`,
                // ignoring separators nested in `(…)`, `[…]`, `<…>`.
                let mut k = i + 2;
                let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
                let mut body = None;
                while k < hi {
                    let s = &toks[k];
                    if s.kind == TokKind::Punct {
                        match s.text.as_str() {
                            "(" => paren += 1,
                            ")" => paren -= 1,
                            "[" => bracket += 1,
                            "]" => bracket -= 1,
                            "<" => angle += 1,
                            ">" => angle = (angle - 1).max(0),
                            "->" => angle = angle.max(0),
                            "{" if paren == 0 && bracket == 0 => {
                                body = Some((k, matching_brace(toks, k).min(hi)));
                                break;
                            }
                            ";" if paren == 0 && bracket == 0 && angle == 0 => break,
                            _ => {}
                        }
                    }
                    k += 1;
                }
                let (calls, index_sites) = match body {
                    Some((open, close)) => extract_sites(toks, open + 1, close),
                    None => (Vec::new(), Vec::new()),
                };
                out.push(FnDef {
                    name: name_tok.text.clone(),
                    owner: owner.map(|o| o.name.clone()),
                    trait_impl: owner.and_then(|o| o.trait_impl.clone()),
                    in_trait_decl: owner.is_some_and(|o| o.is_trait_decl),
                    is_pub,
                    in_test: t.in_test,
                    line: t.line,
                    body,
                    calls,
                    index_sites,
                });
                match body {
                    Some((open, close)) => {
                        // Recurse for nested fns (attributed to the same
                        // owner; their calls are also in the outer body —
                        // an intentional over-approximation).
                        parse_range(toks, open + 1, close, owner, out);
                        i = close + 1;
                    }
                    None => i = k + 1,
                }
            }
            _ => i += 1,
        }
    }
}

/// Collect call and indexing sites in a body token range.
fn extract_sites(toks: &[Tok], lo: usize, hi: usize) -> (Vec<Call>, Vec<IndexSite>) {
    let mut calls = Vec::new();
    let mut index_sites = Vec::new();
    let mut j = lo;
    while j < hi.min(toks.len()) {
        let t = &toks[j];
        // Indexing: `xs[…]`, `f(..)[…]`, `xs[i][j]` — `[` after a value.
        if t.kind == TokKind::Punct && t.text == "[" {
            if let Some(p) = j.checked_sub(1).map(|k| &toks[k]) {
                let value_before = (p.kind == TokKind::Ident && !is_keyword(&p.text))
                    || (p.kind == TokKind::Punct && matches!(p.text.as_str(), ")" | "]" | "?"));
                if value_before {
                    index_sites.push(IndexSite { line: t.line });
                }
            }
            j += 1;
            continue;
        }
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            j += 1;
            continue;
        }
        let next = toks.get(j + 1);
        // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
        if next.is_some_and(|n| n.kind == TokKind::Punct && n.text == "!")
            && toks.get(j + 2).is_some_and(|n| {
                n.kind == TokKind::Punct && matches!(n.text.as_str(), "(" | "[" | "{")
            })
        {
            calls.push(Call {
                kind: CallKind::Macro,
                name: t.text.clone(),
                line: t.line,
            });
            j += 2;
            continue;
        }
        if next.is_some_and(|n| n.kind == TokKind::Punct && n.text == "(") {
            let prev = j.checked_sub(1).map(|k| &toks[k]);
            let kind = match prev {
                Some(p) if p.kind == TokKind::Ident && p.text == "fn" => None, // nested def
                Some(p) if p.kind == TokKind::Punct && p.text == "." => Some(CallKind::Method),
                Some(p) if p.kind == TokKind::Punct && p.text == "::" => {
                    let qualifier = j
                        .checked_sub(2)
                        .map(|k| &toks[k])
                        .filter(|q| q.kind == TokKind::Ident)
                        .map(|q| q.text.clone());
                    Some(match qualifier {
                        Some(q) => CallKind::Qualified(q),
                        None => CallKind::Free, // `Foo::<T>::new` and friends
                    })
                }
                _ => Some(CallKind::Free),
            };
            if let Some(kind) = kind {
                calls.push(Call {
                    kind,
                    name: t.text.clone(),
                    line: t.line,
                });
            }
        }
        j += 1;
    }
    (calls, index_sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn fns(src: &str) -> Vec<FnDef> {
        parse_fns(&scan(src).toks)
    }

    #[test]
    fn free_and_impl_fns_are_attributed() {
        let src = "
            pub fn free() { helper(1); }
            struct S;
            impl S {
                pub fn method(&self) { self.other(); }
                fn private(&self) {}
            }
        ";
        let fs = fns(src);
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[0].qual_name(), "free");
        assert!(fs[0].is_pub);
        assert_eq!(fs[1].qual_name(), "S::method");
        assert_eq!(fs[2].qual_name(), "S::private");
        assert!(!fs[2].is_pub);
        assert_eq!(fs[0].calls.len(), 1);
        assert_eq!(fs[0].calls[0].kind, CallKind::Free);
        assert_eq!(fs[1].calls[0].kind, CallKind::Method);
    }

    #[test]
    fn trait_impls_record_the_trait() {
        let src = "
            pub trait Hook { fn fire(&self); fn armed(&self) -> bool { true } }
            impl Hook for Gun { fn fire(&self) { bang(); } }
        ";
        let fs = fns(src);
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[0].qual_name(), "Hook::fire");
        assert!(fs[0].in_trait_decl);
        assert!(fs[0].body.is_none());
        assert_eq!(fs[1].qual_name(), "Hook::armed");
        assert!(fs[1].body.is_some());
        assert_eq!(fs[2].qual_name(), "Gun::fire");
        assert_eq!(fs[2].trait_impl.as_deref(), Some("Hook"));
    }

    #[test]
    fn generic_impls_resolve_the_type_name() {
        let src = "
            impl<'a, P: Policy + Send> Simulator<'a, P> {
                fn step(&mut self) { self.heap.pop(); Instant::now(); }
            }
            impl std::fmt::Display for Err2 { fn fmt(&self) -> F { write!(f, \"x\") } }
        ";
        let fs = fns(src);
        assert_eq!(fs[0].qual_name(), "Simulator::step");
        let quals: Vec<_> = fs[0]
            .calls
            .iter()
            .filter_map(|c| match &c.kind {
                CallKind::Qualified(q) => Some((q.as_str(), c.name.as_str())),
                _ => None,
            })
            .collect();
        assert_eq!(quals, vec![("Instant", "now")]);
        assert_eq!(fs[1].qual_name(), "Err2::fmt");
        assert_eq!(fs[1].trait_impl.as_deref(), Some("Display"));
        assert_eq!(fs[1].calls[0].kind, CallKind::Macro);
        assert_eq!(fs[1].calls[0].name, "write");
    }

    #[test]
    fn indexing_sites_are_found_and_types_are_not() {
        let src = "
            fn f(xs: &[u64], m: [u8; 4]) -> [f64; 2] {
                let a = xs[0];
                let b = vec![1, 2];
                let c = m[a as usize];
                [0.0, 1.0]
            }
        ";
        let fs = fns(src);
        assert_eq!(fs[0].index_sites.len(), 2);
        assert_eq!(fs[0].index_sites[0].line, 3);
        assert_eq!(fs[0].index_sites[1].line, 5);
    }

    #[test]
    fn test_code_is_marked() {
        let src = "
            #[cfg(test)]
            mod tests {
                fn t() { x.unwrap(); }
            }
            fn live() {}
        ";
        let fs = fns(src);
        assert_eq!(fs.len(), 2);
        assert!(fs[0].in_test);
        assert!(!fs[1].in_test);
    }

    #[test]
    fn pub_crate_is_not_public() {
        let src = "pub(crate) fn a() {} pub fn b() {} pub const unsafe fn c() {}";
        let fs = fns(src);
        assert!(!fs[0].is_pub);
        assert!(fs[1].is_pub);
        assert!(fs[2].is_pub);
    }

    #[test]
    fn array_semicolon_in_signature_does_not_truncate() {
        let src = "fn f(x: [u8; 4]) -> u8 { g(x[0]); x[1] }";
        let fs = fns(src);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].body.is_some());
        assert_eq!(fs[0].calls.len(), 1);
        assert_eq!(fs[0].index_sites.len(), 2);
    }

    #[test]
    fn closures_attribute_calls_to_the_enclosing_fn() {
        let src = "
            fn outer() {
                scope.spawn(move || {
                    inner(1);
                    xs[0]
                });
            }
        ";
        let fs = fns(src);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].calls.iter().any(|c| c.name == "inner"));
        assert_eq!(fs[0].index_sites.len(), 1);
    }
}
