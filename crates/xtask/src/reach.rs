//! **D6 — panic reachability.** Every `unwrap`/`expect`/`panic!`-family/
//! indexing site reachable from a public library entry point is reported
//! with its call path, unless covered by a reasoned `// lint: allow`.
//!
//! Where D3 is a per-line rule ("there is an `unwrap` in library code"),
//! D6 answers the caller's question: *can this panic actually fire from
//! the API surface?* Roots are every unrestricted-`pub` fn in the
//! analyzed crates; a panic site buried in a private helper is reported
//! once per helper (with the shortest entry path), not once per caller.
//!
//! Suppression: a line-scoped `// lint: allow(D6) — reason` on the site,
//! or an existing `allow(D3)`/`allow(panic)` annotation — a justified D3
//! exemption ("cannot fire, input validated") covers reachability too,
//! so the two rules never demand duplicate annotations.

use crate::graph::{Graph, ParsedFile};
use crate::parser::{CallKind, FnDef};
use crate::rules::Finding;

/// One potential panic site inside a fn body.
struct PanicSite {
    /// `unwrap`, `expect`, `panic!`, `unreachable!`, … or `index`.
    what: String,
    /// Fingerprint tag (`call:unwrap`, `macro:panic`, `index`).
    kind: String,
    line: u32,
}

fn panic_sites(d: &FnDef) -> Vec<PanicSite> {
    let mut out = Vec::new();
    for c in &d.calls {
        match (&c.kind, c.name.as_str()) {
            (CallKind::Method, "unwrap" | "expect") => out.push(PanicSite {
                what: format!(".{}()", c.name),
                kind: format!("call:{}", c.name),
                line: c.line,
            }),
            (CallKind::Macro, "panic" | "unreachable" | "todo" | "unimplemented") => {
                out.push(PanicSite {
                    what: format!("{}!", c.name),
                    kind: format!("macro:{}", c.name),
                    line: c.line,
                });
            }
            _ => {}
        }
    }
    for s in &d.index_sites {
        out.push(PanicSite {
            what: "indexing".to_string(),
            kind: "index".to_string(),
            line: s.line,
        });
    }
    out.sort_by_key(|s| s.line);
    out
}

/// Run the D6 pass. Findings are appended unsorted; the caller sorts.
pub fn rule_d6(files: &[ParsedFile], graph: &Graph, findings: &mut Vec<Finding>) {
    let roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let d = graph.def(files, i);
            d.is_pub && !d.in_test
        })
        .collect();
    let reach = graph.reach(roots.iter().copied());

    for i in 0..graph.nodes.len() {
        if !reach.contains(i) {
            continue;
        }
        let d = graph.def(files, i);
        if d.in_test {
            continue;
        }
        let file = graph.file(files, i);
        for s in panic_sites(d) {
            let allowed =
                file.allows.suppresses("D6", s.line) || file.allows.suppresses("D3", s.line);
            if allowed {
                continue;
            }
            let path = graph.render_path(files, &reach.path_to(i));
            findings.push(Finding {
                file: file.ctx.rel_path.clone(),
                line: s.line,
                rule: "D6",
                message: format!(
                    "{} can panic and is reachable from the public API: {}",
                    s.what, path
                ),
                hint: "return a Result, use .get(..), or annotate: // lint: allow(D6) — <why this cannot fire>".to_string(),
                symbol: graph.qual_name(files, i),
                kind: s.kind,
                fingerprint: String::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::parse_file;
    use crate::rules::FileCtx;

    fn pf(src: &str) -> ParsedFile {
        parse_file(
            src,
            FileCtx {
                crate_name: "sim".to_string(),
                rel_path: "crates/sim/src/x.rs".to_string(),
            },
        )
    }

    fn run(files: &[ParsedFile]) -> Vec<Finding> {
        let g = Graph::build(files);
        let mut fs = Vec::new();
        rule_d6(files, &g, &mut fs);
        fs
    }

    #[test]
    fn unwrap_behind_private_helper_is_reported_with_path() {
        let files = vec![pf("
            pub fn api() { helper(); }
            fn helper() { deep(); }
            fn deep() { x.unwrap(); }
            ")];
        let fs = run(&files);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "D6");
        assert_eq!(fs[0].line, 4);
        assert!(
            fs[0].message.contains("sim::api → sim::helper → sim::deep"),
            "{}",
            fs[0].message
        );
    }

    #[test]
    fn unreachable_panic_is_clean() {
        let files = vec![pf("
            pub fn api() {}
            fn orphan() { panic!(\"never called\"); }
            ")];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn allow_d3_or_d6_suppresses() {
        let files = vec![pf("
            pub fn api() {
                // lint: allow(panic) — heap is non-empty by the loop guard
                a.unwrap();
                // lint: allow(D6) — index is bounds-checked above
                xs[i];
                b.expect(\"boom\");
            }
            ")];
        let fs = run(&files);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].kind, "call:expect");
    }

    #[test]
    fn indexing_and_macros_are_sites() {
        let files = vec![pf("
            pub fn api(xs: &[u64], i: usize) -> u64 {
                if i > xs.len() { unreachable!(); }
                xs[i]
            }
            ")];
        let fs = run(&files);
        let kinds: Vec<_> = fs.iter().map(|f| f.kind.as_str()).collect();
        assert_eq!(kinds, vec!["macro:unreachable", "index"]);
    }

    #[test]
    fn private_only_code_is_out_of_scope() {
        let files = vec![pf("fn internal() { x.unwrap(); }")];
        assert!(run(&files).is_empty());
    }
}
