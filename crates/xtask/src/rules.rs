//! The unit-lint rule set: determinism and invariant hygiene for the UNIT
//! workspace.
//!
//! | Rule | What it forbids | Where |
//! |------|-----------------|-------|
//! | `D1` | `HashMap`/`HashSet` (iteration-order nondeterminism) | `core`, `sim`, `workload`, `baselines`, `cluster`, `faults`, `obs`, `server` |
//! | `D2` | wall clocks (`Instant::now`, `SystemTime::now`, `WallClock`) everywhere but `bench`/`server`; unseeded RNGs (`thread_rng`, `rand::random`) everywhere but `bench` | two-tier, see below |
//! | `D3` | `unwrap()`/`expect()`/`panic!`-family in non-test library code | `core`, `sim`, `workload`, `baselines`, `cluster`, `faults`, `obs`, `server` |
//! | `D4` | direct `f64` `==`/`!=` against float literals; `as`-cast truncation of simulated-time values | library crates, except `core/src/time.rs` |
//! | `P1` | `Policy`/`FaultHook`/`Observer`-surface / event-loop functions without a `/// O(...)` complexity doc | `core/src/policy.rs`, `sim/src/engine.rs`, `sim/src/faults.rs`, `obs/src/recorder.rs` |
//! | `A1` | malformed `lint: allow` annotations (unknown rule id, or no reason clause) | everywhere |
//!
//! The interprocedural rules `D5` (digest taint), `D6` (panic
//! reachability), and `P2` (hot-path allocation) run only under
//! `cargo xtask analyze`; see [`crate::taint`], [`crate::reach`], and
//! [`crate::hotpath`]. Their allow annotations share this syntax.
//!
//! Suppression:
//!
//! * line-scoped — `// lint: allow(D3) — reason` on the violation line or
//!   the line directly above it (`panic` is an alias for `D3`);
//! * file-scoped — `// lint: allow-file(D1) — reason` anywhere in the file.
//!
//! Annotations without a reason are ignored (and reported as `A1`), so
//! every exemption in the tree carries its own justification.

use crate::lexer::{scan, Comment, Tok, TokKind};
use std::collections::BTreeMap;

/// Crates where iteration-order nondeterminism can reach simulator state.
/// `workload` is included since the streaming generators feed the engine
/// directly — a hash-ordered loop there would scramble trace order.
const D1_CRATES: &[&str] = &[
    "core",
    "sim",
    "workload",
    "baselines",
    "cluster",
    "faults",
    "obs",
    "server",
];
/// D2 is two-tier since the live serving runtime landed:
///
/// * **wall-clock tier** — `Instant::now` / `SystemTime::now` / the
///   `WallClock` type are allowed only in `server` (reading the machine
///   clock is the serving runtime's job; everything else consumes time
///   through the `Clock` trait) and `bench` (harness timing);
/// * **entropy tier** — `thread_rng` / `rand::random` are allowed only in
///   `bench`; the server must stay entropy-free like the rest.
const D2_WALL_EXEMPT_CRATES: &[&str] = &["bench", "server"];
/// Crates allowed to draw OS entropy (see [`D2_WALL_EXEMPT_CRATES`]).
const D2_ENTROPY_EXEMPT_CRATES: &[&str] = &["bench"];
/// Library crates where panics must be annotated.
const D3_CRATES: &[&str] = &[
    "core",
    "sim",
    "workload",
    "baselines",
    "cluster",
    "faults",
    "obs",
    "server",
];
/// Library crates where float-equality / time-cast hygiene applies.
const D4_CRATES: &[&str] = &[
    "core",
    "sim",
    "workload",
    "baselines",
    "cluster",
    "faults",
    "obs",
    "server",
];
/// The one file allowed to truncate simulated-time floats: the tick
/// conversion boundary itself.
const D4_EXEMPT_FILES: &[&str] = &["crates/core/src/time.rs"];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id (`D1` … `D6`, `P1`, `P2`, `A1`).
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
    /// How to fix it (or how to annotate an intentional exemption).
    pub hint: String,
    /// Qualified name of the function the finding is anchored to
    /// (empty for per-file rules — fingerprints fall back to the file).
    pub symbol: String,
    /// Short site tag used for fingerprint stability (`call:unwrap`,
    /// `taint:Instant::now`, …); empty for per-file rules.
    pub kind: String,
    /// Stable fingerprint, assigned by [`crate::baseline::assign_fingerprints`]
    /// over (rule, file, symbol, kind, occurrence index) — line numbers are
    /// deliberately excluded so unrelated edits don't churn the baseline.
    pub fingerprint: String,
}

impl Finding {
    /// A finding with only the per-file fields set (symbol/kind/fingerprint
    /// empty until fingerprint assignment).
    pub fn new(file: String, line: u32, rule: &'static str, message: String, hint: String) -> Self {
        Finding {
            file,
            line,
            rule,
            message,
            hint,
            symbol: String::new(),
            kind: String::new(),
            fingerprint: String::new(),
        }
    }
}

/// Where a file sits in the workspace, for rule scoping.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Crate directory name under `crates/` (e.g. `"sim"`).
    pub crate_name: String,
    /// Workspace-relative path with forward slashes
    /// (e.g. `"crates/sim/src/engine.rs"`).
    pub rel_path: String,
}

/// Parsed allow annotations for one file.
#[derive(Debug, Default)]
pub struct Allows {
    /// rule -> lines carrying a line-scoped allow.
    lines: BTreeMap<String, Vec<u32>>,
    /// rules allowed for the whole file.
    file: Vec<String>,
}

impl Allows {
    /// Is `rule` suppressed at `line` (same line, the line above, or a
    /// file-scoped allow)?
    pub fn suppresses(&self, rule: &str, line: u32) -> bool {
        if self.file.iter().any(|r| r == rule) {
            return true;
        }
        self.lines
            .get(rule)
            .is_some_and(|ls| ls.iter().any(|&l| l == line || l + 1 == line))
    }
}

/// Map an annotation rule name to its canonical id. `A1` is deliberately
/// absent: annotation hygiene cannot be allowed away.
fn canonical_rule(name: &str) -> Option<&'static str> {
    match name.trim() {
        "D1" => Some("D1"),
        "D2" => Some("D2"),
        "D3" | "panic" => Some("D3"),
        "D4" => Some("D4"),
        "D5" => Some("D5"),
        "D6" => Some("D6"),
        "P1" => Some("P1"),
        "P2" => Some("P2"),
        _ => None,
    }
}

/// Parse `lint: allow(...)` / `lint: allow-file(...)` annotations out of the
/// file's comments. An annotation must carry a non-empty reason after the
/// closing parenthesis to take effect.
pub fn parse_allows(comments: &[Comment]) -> Allows {
    let mut allows = Allows::default();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (file_scoped, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\u{2014}', '\u{2013}', '-', ':', '\t'])
            .trim();
        if reason.is_empty() {
            continue; // exemptions must be justified
        }
        for name in rest[..close].split(',') {
            let Some(rule) = canonical_rule(name) else {
                continue;
            };
            if file_scoped {
                allows.file.push(rule.to_string());
            } else {
                allows
                    .lines
                    .entry(rule.to_string())
                    .or_default()
                    .push(c.line);
            }
        }
    }
    allows
}

/// Run every rule over one file's source. Returns findings sorted by line.
pub fn check_source(src: &str, ctx: &FileCtx) -> Vec<Finding> {
    let s = scan(src);
    let allows = parse_allows(&s.comments);
    let mut findings = Vec::new();

    rule_d1(&s.toks, ctx, &mut findings);
    rule_d2(&s.toks, ctx, &mut findings);
    rule_d3(&s.toks, ctx, &mut findings);
    rule_d4(&s.toks, ctx, &mut findings);
    rule_p1(&s.toks, &s.comments, ctx, &mut findings);
    rule_a1(&s.comments, ctx, &mut findings);

    findings.retain(|f| !allows.suppresses(f.rule, f.line));
    findings.sort_by_key(|f| (f.line, f.rule));
    // One report per (line, rule): three float `==` on one line are one
    // problem to fix, not three.
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    findings
}

fn in_crate(ctx: &FileCtx, list: &[&str]) -> bool {
    list.iter().any(|c| *c == ctx.crate_name)
}

fn push(
    findings: &mut Vec<Finding>,
    ctx: &FileCtx,
    line: u32,
    rule: &'static str,
    message: String,
    hint: String,
) {
    findings.push(Finding::new(
        ctx.rel_path.clone(),
        line,
        rule,
        message,
        hint,
    ));
}

/// A1 — allow-annotation hygiene: every `lint: allow(...)` must name a
/// known rule and carry a non-empty reason clause. Malformed annotations
/// are dead weight (they suppress nothing) and, worse, they *look* like
/// an audit trail — so they are findings in their own right.
fn rule_a1(comments: &[Comment], ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let rest = if let Some(r) = rest.strip_prefix("allow-file(") {
            r
        } else if let Some(r) = rest.strip_prefix("allow(") {
            r
        } else {
            push(
                findings,
                ctx,
                c.line,
                "A1",
                format!("unrecognized lint annotation `lint:{rest}`"),
                "use `// lint: allow(RULE) — reason` or `// lint: allow-file(RULE) — reason`"
                    .to_string(),
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            push(
                findings,
                ctx,
                c.line,
                "A1",
                "allow annotation is missing its closing parenthesis".to_string(),
                "write `// lint: allow(RULE) — reason`".to_string(),
            );
            continue;
        };
        for name in rest[..close].split(',') {
            if canonical_rule(name).is_none() {
                push(
                    findings,
                    ctx,
                    c.line,
                    "A1",
                    format!("allow annotation names unknown rule id `{}`", name.trim()),
                    "valid ids: D1–D6, P1, P2 (alias `panic` for D3); delete the annotation if the rule no longer exists".to_string(),
                );
            }
        }
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\u{2014}', '\u{2013}', '-', ':', '\t'])
            .trim();
        if reason.is_empty() {
            push(
                findings,
                ctx,
                c.line,
                "A1",
                "allow annotation has no reason clause, so it suppresses nothing".to_string(),
                "append `— <why this exemption is sound>` after the closing parenthesis"
                    .to_string(),
            );
        }
    }
}

/// D1 — `HashMap`/`HashSet` in deterministic crates.
fn rule_d1(toks: &[Tok], ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if !in_crate(ctx, D1_CRATES) {
        return;
    }
    for t in toks {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            push(
                findings,
                ctx,
                t.line,
                "D1",
                format!(
                    "{} has nondeterministic iteration order; crate `{}` feeds simulator state",
                    t.text, ctx.crate_name
                ),
                format!(
                    "use BTree{} (ordered) or an index-keyed Vec; see DESIGN.md §2.2",
                    &t.text[4..]
                ),
            );
        }
    }
}

/// D2 — wall clocks outside `server`/`bench`, unseeded entropy outside
/// `bench` (two tiers; see [`D2_WALL_EXEMPT_CRATES`]).
fn rule_d2(toks: &[Tok], ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let wall_exempt = in_crate(ctx, D2_WALL_EXEMPT_CRATES);
    let entropy_exempt = in_crate(ctx, D2_ENTROPY_EXEMPT_CRATES);
    if wall_exempt && entropy_exempt {
        return;
    }
    let live = |t: &Tok| !t.in_test;
    for (i, t) in toks.iter().enumerate() {
        if !live(t) || t.kind != TokKind::Ident {
            continue;
        }
        let path_call = |head: &str, tail: &str| {
            t.text == head
                && toks.get(i + 1).is_some_and(|p| p.text == "::")
                && toks.get(i + 2).is_some_and(|m| m.text == tail)
        };
        // Wall-clock tier: reading (or naming a handle to) the machine
        // clock. `WallClock` as a bare type token counts — holding the
        // wall-clock handle outside the serving boundary is the leak this
        // tier exists to catch, whether or not `.now()` appears in the
        // same file.
        let wall_hit = if path_call("Instant", "now") {
            Some("Instant::now")
        } else if path_call("SystemTime", "now") {
            Some("SystemTime::now")
        } else if t.text == "WallClock" {
            Some("WallClock")
        } else {
            None
        };
        if let Some(what) = wall_hit {
            if !wall_exempt {
                push(
                    findings,
                    ctx,
                    t.line,
                    "D2",
                    format!("{what} reads the machine clock; only crates/server (the serving runtime) and bench may"),
                    "consume time through the unit_core::clock::Clock trait (VirtualClock outside the server)".to_string(),
                );
            }
            continue;
        }
        // Entropy tier: unseeded randomness.
        let entropy_hit = if t.text == "thread_rng" {
            Some("thread_rng")
        } else if path_call("rand", "random") {
            Some("rand::random")
        } else {
            None
        };
        if let Some(what) = entropy_hit {
            if !entropy_exempt {
                push(
                    findings,
                    ctx,
                    t.line,
                    "D2",
                    format!("{what} is nondeterministic; simulation code must not read OS entropy"),
                    "derive randomness from a seeded StdRng".to_string(),
                );
            }
        }
    }
}

/// D3 — panic-family calls in non-test library code.
fn rule_d3(toks: &[Tok], ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if !in_crate(ctx, D3_CRATES) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == ".";
        let next_paren = toks.get(i + 1).is_some_and(|n| n.text == "(");
        let next_bang = toks.get(i + 1).is_some_and(|n| n.text == "!");
        let hit = match t.text.as_str() {
            "unwrap" | "expect" if prev_dot && next_paren => Some(format!(".{}()", t.text)),
            "panic" | "unreachable" | "todo" | "unimplemented" if next_bang => {
                Some(format!("{}!", t.text))
            }
            _ => None,
        };
        if let Some(what) = hit {
            push(
                findings,
                ctx,
                t.line,
                "D3",
                format!("{what} can panic in library code"),
                "return a Result, or annotate: // lint: allow(panic) — <why this cannot fire>"
                    .to_string(),
            );
        }
    }
}

/// D4 — float equality and simulated-time truncation casts.
fn rule_d4(toks: &[Tok], ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if !in_crate(ctx, D4_CRATES) || D4_EXEMPT_FILES.contains(&ctx.rel_path.as_str()) {
        return;
    }
    const INT_TYPES: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    ];
    const TIME_MARKERS: &[&str] = &["as_secs_f64", "TICKS_PER_SEC"];
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        // D4a: `==` / `!=` adjacent to a float literal.
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let float_adjacent = (i > 0 && toks[i - 1].kind == TokKind::Float)
                || toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float);
            if float_adjacent {
                push(
                    findings,
                    ctx,
                    t.line,
                    "D4",
                    format!("direct float `{}` comparison is exact-representation fragile", t.text),
                    "compare against an epsilon, restructure around integer ticks, or annotate: // lint: allow(D4) — <why exactness is intended>".to_string(),
                );
            }
        }
        // D4b: `<time expr> as <int>` truncation outside core/src/time.rs.
        if t.kind == TokKind::Ident
            && t.text == "as"
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && INT_TYPES.contains(&n.text.as_str()))
        {
            // Walk back through the current expression (stop at statement /
            // block boundaries) looking for simulated-time markers.
            let mut j = i;
            let mut found = false;
            while j > 0 {
                j -= 1;
                let b = &toks[j];
                if b.kind == TokKind::Punct && matches!(b.text.as_str(), ";" | "{" | "}") {
                    break;
                }
                if b.kind == TokKind::Ident && TIME_MARKERS.contains(&b.text.as_str()) {
                    found = true;
                    break;
                }
                if i - j > 40 {
                    break;
                }
            }
            if found {
                push(
                    findings,
                    ctx,
                    t.line,
                    "D4",
                    "as-cast truncation of a simulated-time value outside core/src/time.rs"
                        .to_string(),
                    "convert through SimTime::from_secs_f64 / SimDuration::from_secs_f64 so rounding lives in one place".to_string(),
                );
            }
        }
    }
}

/// P1 — complexity documentation on the `Policy` and `FaultHook` trait
/// surfaces and the engine's event-loop hooks.
fn rule_p1(toks: &[Tok], comments: &[Comment], ctx: &FileCtx, findings: &mut Vec<Finding>) {
    enum Scope {
        /// Every `fn` inside `trait <name> { … }` (and its impls share the
        /// docs through rustdoc inheritance, so only the trait is checked).
        TraitSurface(&'static str),
        /// Every `fn on_*` plus `fn reschedule` (the event loop hooks).
        EngineHooks,
    }
    let scope = match ctx.rel_path.as_str() {
        "crates/core/src/policy.rs" => Scope::TraitSurface("Policy"),
        "crates/sim/src/faults.rs" => Scope::TraitSurface("FaultHook"),
        "crates/obs/src/recorder.rs" => Scope::TraitSurface("Observer"),
        "crates/sim/src/engine.rs" => Scope::EngineHooks,
        _ => return,
    };

    // For a trait scope: find the token range of `trait <name> { … }`.
    let trait_range = match scope {
        Scope::TraitSurface(trait_name) => {
            let mut range = None;
            for (i, t) in toks.iter().enumerate() {
                if t.kind == TokKind::Ident
                    && t.text == "trait"
                    && toks.get(i + 1).is_some_and(|n| n.text == trait_name)
                {
                    let mut depth = 0usize;
                    for (j, u) in toks.iter().enumerate().skip(i) {
                        if u.kind == TokKind::Punct && u.text == "{" {
                            depth += 1;
                        } else if u.kind == TokKind::Punct && u.text == "}" {
                            depth -= 1;
                            if depth == 0 {
                                range = Some((i, j));
                                break;
                            }
                        }
                    }
                    break;
                }
            }
            range
        }
        Scope::EngineHooks => None,
    };

    for (i, t) in toks.iter().enumerate() {
        if t.in_test || !(t.kind == TokKind::Ident && t.text == "fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        let wanted = match scope {
            Scope::TraitSurface(_) => trait_range.is_some_and(|(lo, hi)| i > lo && i < hi),
            Scope::EngineHooks => name_tok.text.starts_with("on_") || name_tok.text == "reschedule",
        };
        if !wanted {
            continue;
        }
        // The doc block is the contiguous run of doc-comment lines directly
        // above the item (attributes may sit between the docs and the fn).
        let mut item_line = t.line;
        let mut k = i;
        while k > 0 {
            let p = &toks[k - 1];
            if p.kind == TokKind::Punct && p.text == "]" {
                // Skip a whole attribute `#[ … ]` backwards, whatever it holds.
                let mut depth = 0usize;
                let mut m = k - 1;
                loop {
                    if toks[m].kind == TokKind::Punct {
                        if toks[m].text == "]" {
                            depth += 1;
                        } else if toks[m].text == "[" {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                    }
                    if m == 0 {
                        break;
                    }
                    m -= 1;
                }
                if m > 0 && toks[m - 1].kind == TokKind::Punct && toks[m - 1].text == "#" {
                    m -= 1;
                }
                item_line = toks[m].line;
                k = m;
                continue;
            }
            let qualifier = (p.kind == TokKind::Ident
                && matches!(
                    p.text.as_str(),
                    "pub" | "crate" | "super" | "const" | "unsafe" | "default" | "async" | "extern"
                ))
                || (p.kind == TokKind::Punct && matches!(p.text.as_str(), "(" | ")"));
            if !qualifier {
                break;
            }
            item_line = p.line;
            k -= 1;
        }
        let mut doc_text = String::new();
        let mut want_line = item_line;
        for c in comments.iter().rev() {
            if !c.is_doc || c.line >= item_line {
                continue;
            }
            if c.line + 1 == want_line || c.line == want_line {
                doc_text.push_str(&c.text);
                want_line = c.line;
            }
        }
        if !doc_text.contains("O(") {
            push(
                findings,
                ctx,
                t.line,
                "P1",
                format!(
                    "`fn {}` is on the hot-path surface but its docs state no complexity bound",
                    name_tok.text
                ),
                "add a `/// O(...)` cost to the doc comment (see DESIGN.md §2.1)".to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(crate_name: &str, rel: &str) -> FileCtx {
        FileCtx {
            crate_name: crate_name.to_string(),
            rel_path: rel.to_string(),
        }
    }

    #[test]
    fn d1_fires_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            check_source(src, &ctx("sim", "crates/sim/src/x.rs"))
                .iter()
                .filter(|f| f.rule == "D1")
                .count(),
            1
        );
        assert!(check_source(src, &ctx("bench", "crates/bench/src/x.rs")).is_empty());
    }

    #[test]
    fn d3_skips_test_code_and_honors_allow() {
        let src = "
fn live() { x.unwrap(); }
fn ok() {
    // lint: allow(panic) — input validated above
    y.expect(\"fine\");
}
#[cfg(test)]
mod tests { fn t() { z.unwrap(); } }
";
        let fs = check_source(src, &ctx("core", "crates/core/src/x.rs"));
        let d3: Vec<_> = fs.iter().filter(|f| f.rule == "D3").collect();
        assert_eq!(d3.len(), 1);
        assert_eq!(d3[0].line, 2);
    }

    #[test]
    fn allow_without_reason_does_not_suppress() {
        let src = "// lint: allow(panic)\nfn f() { x.unwrap(); }\n";
        let fs = check_source(src, &ctx("core", "crates/core/src/x.rs"));
        assert_eq!(fs.iter().filter(|f| f.rule == "D3").count(), 1);
    }

    #[test]
    fn file_scoped_allow_covers_everything() {
        let src = "// lint: allow-file(D3) — prototype module\nfn f() { x.unwrap(); }\nfn g() { y.unwrap(); }\n";
        assert!(check_source(src, &ctx("core", "crates/core/src/x.rs")).is_empty());
    }

    #[test]
    fn d4_time_exempt_file() {
        let src = "let t = (secs * TICKS_PER_SEC as f64).round() as u64;\n";
        assert!(check_source(src, &ctx("core", "crates/core/src/time.rs")).is_empty());
        assert_eq!(
            check_source(src, &ctx("core", "crates/core/src/other.rs"))
                .iter()
                .filter(|f| f.rule == "D4")
                .count(),
            1
        );
    }
}
