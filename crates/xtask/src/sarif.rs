//! SARIF 2.1.0 emission for GitHub code scanning.
//!
//! One run, one driver (`unit-analyze`), one result per finding. The
//! stable fingerprint rides along as `partialFingerprints` under the
//! `unitAnalyze/v1` key, so code scanning tracks a finding across line
//! shifts exactly as the baseline ratchet does. Hand-rolled like every
//! other serializer in this crate — xtask has no dependencies.

use crate::json_str;
use crate::rules::Finding;
use std::fmt::Write as _;

/// Rule metadata: (id, short description).
const RULES: &[(&str, &str)] = &[
    (
        "D1",
        "HashMap/HashSet in deterministic crates (iteration-order nondeterminism)",
    ),
    ("D2", "Wall clocks or unseeded entropy in simulation code"),
    ("D3", "Panic-family call in non-test library code"),
    ("D4", "Float equality or simulated-time truncation cast"),
    (
        "D5",
        "Nondeterminism source reachable from report_digest / outcome-log construction",
    ),
    ("D6", "Panic site reachable from the public API"),
    ("P1", "Hot-path surface fn without an O(...) complexity doc"),
    ("P2", "Allocation inside a per-event hook or epoch worker"),
    (
        "A1",
        "Malformed lint-allow annotation (unknown rule id or missing reason)",
    ),
];

/// Render `findings` as a SARIF 2.1.0 log.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
    out.push_str("\"version\":\"2.1.0\",\"runs\":[{");
    out.push_str("\"tool\":{\"driver\":{\"name\":\"unit-analyze\",");
    out.push_str("\"informationUri\":\"https://example.invalid/unit/DESIGN.md\",");
    out.push_str("\"rules\":[");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
            json_str(id),
            json_str(desc)
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},",
            json_str(f.rule),
            json_str(&format!("{} — fix: {}", f.message, f.hint))
        );
        let _ = write!(
            out,
            "\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{},\"uriBaseId\":\"%SRCROOT%\"}},\"region\":{{\"startLine\":{}}}}}}}]",
            json_str(&f.file),
            f.line
        );
        if !f.fingerprint.is_empty() {
            let _ = write!(
                out,
                ",\"partialFingerprints\":{{\"unitAnalyze/v1\":{}}}",
                json_str(&f.fingerprint)
            );
        }
        out.push('}');
    }
    out.push_str("]}]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_carries_rule_location_and_fingerprint() {
        let f = Finding {
            file: "crates/sim/src/x.rs".into(),
            line: 7,
            rule: "D5",
            message: "taint \"path\"".into(),
            hint: "h".into(),
            symbol: "sim::f".into(),
            kind: "taint:Instant::now".into(),
            fingerprint: "00ff00ff00ff00ff".into(),
        };
        let s = render_sarif(&[f]);
        assert!(s.contains("\"ruleId\":\"D5\""), "{s}");
        assert!(s.contains("\"startLine\":7"), "{s}");
        assert!(s.contains("\"uri\":\"crates/sim/src/x.rs\""), "{s}");
        assert!(
            s.contains("\"partialFingerprints\":{\"unitAnalyze/v1\":\"00ff00ff00ff00ff\"}"),
            "{s}"
        );
        // The quoted word in the message must be escaped.
        assert!(s.contains("taint \\\"path\\\""), "{s}");
        // All nine rules are declared.
        for (id, _) in RULES {
            assert!(s.contains(&format!("\"id\":\"{id}\"")), "{id} missing");
        }
    }

    #[test]
    fn empty_findings_is_still_valid_sarif_shape() {
        let s = render_sarif(&[]);
        assert!(s.contains("\"results\":[]"), "{s}");
        assert!(s.starts_with("{\"$schema\""), "{s}");
    }
}
