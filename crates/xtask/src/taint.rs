//! **D5 — digest taint.** No D2-class nondeterminism source may flow into
//! any function reachable from `report_digest` or from outcome-log
//! construction.
//!
//! Sinks (the taint roots):
//!
//! * every `fn report_digest` in the analyzed crates;
//! * every function that constructs an `OutcomeRecord { … }` literal
//!   (the outcome log feeds the replay/export goldens).
//!
//! The pass walks the call graph *forward* from the sinks — everything a
//! sink (transitively) calls computes digest input — and reports any
//! nondeterminism source found in that closure:
//!
//! * wall clocks: `Instant::now`, `SystemTime::now`, `WallClock::now`
//!   (the serving runtime's handle — D2-legal in `crates/server`, but its
//!   ticks must never feed digest input);
//! * OS entropy: `thread_rng`, `rand::random`;
//! * machine shape: `available_parallelism`;
//! * iteration-order / address hashing: `HashMap` / `HashSet` anywhere in
//!   the body (their iteration order hashes pointer-derived state).
//!
//! `// lint: allow(D2)` does **not** suppress D5: the per-shard wall
//! clocks in `cluster::run` are D2-allowed *because* they are diagnostic
//! and digest-excluded — if one of them ever becomes reachable from
//! `report_digest`, that is exactly the regression this rule exists to
//! catch. Only an explicit `// lint: allow(D5) — reason` (or the
//! baseline) silences a D5 finding.

use crate::graph::{Graph, ParsedFile};
use crate::lexer::TokKind;
use crate::parser::{CallKind, FnDef};
use crate::rules::Finding;

/// One nondeterminism source site inside a fn body.
struct Source {
    what: &'static str,
    line: u32,
}

/// Does this fn body construct an `OutcomeRecord { … }` literal?
fn builds_outcome_record(file: &ParsedFile, d: &FnDef) -> bool {
    let Some((open, close)) = d.body else {
        return false;
    };
    let hi = close.min(file.toks.len());
    (open..hi).any(|i| {
        let t = &file.toks[i];
        t.kind == TokKind::Ident
            && t.text == "OutcomeRecord"
            && file
                .toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Punct && n.text == "{")
    })
}

/// Collect the D5 source sites in one fn.
fn sources_in(file: &ParsedFile, d: &FnDef) -> Vec<Source> {
    let mut out = Vec::new();
    for c in &d.calls {
        let what = match (&c.kind, c.name.as_str()) {
            (CallKind::Qualified(q), "now") if q == "Instant" => Some("Instant::now"),
            (CallKind::Qualified(q), "now") if q == "SystemTime" => Some("SystemTime::now"),
            // The serving runtime's clock handle: D2-legal inside
            // crates/server, but its ticks must never feed digest input.
            (CallKind::Qualified(q), "now") if q == "WallClock" => Some("WallClock::now"),
            (_, "thread_rng") => Some("thread_rng"),
            (CallKind::Qualified(q), "random") if q == "rand" => Some("rand::random"),
            (_, "available_parallelism") => Some("available_parallelism"),
            _ => None,
        };
        if let Some(what) = what {
            out.push(Source { what, line: c.line });
        }
    }
    if let Some((open, close)) = d.body {
        let hi = close.min(file.toks.len());
        for t in &file.toks[open..hi] {
            if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                out.push(Source {
                    what: if t.text == "HashMap" {
                        "HashMap iteration order"
                    } else {
                        "HashSet iteration order"
                    },
                    line: t.line,
                });
            }
        }
    }
    out.sort_by_key(|s| s.line);
    out
}

/// Run the D5 pass. Findings are appended unsorted; the caller sorts.
pub fn rule_d5(files: &[ParsedFile], graph: &Graph, findings: &mut Vec<Finding>) {
    let roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let d = graph.def(files, i);
            !d.in_test
                && (d.name == "report_digest" || builds_outcome_record(graph.file(files, i), d))
        })
        .collect();
    if roots.is_empty() {
        return;
    }
    let reach = graph.reach(roots.iter().copied());

    for i in 0..graph.nodes.len() {
        if !reach.contains(i) {
            continue;
        }
        let d = graph.def(files, i);
        if d.in_test {
            continue;
        }
        let file = graph.file(files, i);
        for s in sources_in(file, d) {
            if file.allows.suppresses("D5", s.line) {
                continue;
            }
            let path = graph.render_path(files, &reach.path_to(i));
            findings.push(Finding {
                file: file.ctx.rel_path.clone(),
                line: s.line,
                rule: "D5",
                message: format!(
                    "`{}` is a nondeterminism source inside digest-reachable code: {}",
                    s.what, path
                ),
                hint: "report_digest must be a pure function of (trace, seed, config); move the source out of the digest closure or annotate: // lint: allow(D5) — <why this cannot reach digest state>".to_string(),
                symbol: graph.qual_name(files, i),
                kind: format!("taint:{}", s.what),
                fingerprint: String::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::parse_file;
    use crate::rules::FileCtx;

    fn pf(crate_name: &str, rel: &str, src: &str) -> ParsedFile {
        parse_file(
            src,
            FileCtx {
                crate_name: crate_name.to_string(),
                rel_path: rel.to_string(),
            },
        )
    }

    fn run(files: &[ParsedFile]) -> Vec<Finding> {
        let g = Graph::build(files);
        let mut fs = Vec::new();
        rule_d5(files, &g, &mut fs);
        fs
    }

    #[test]
    fn wall_clock_reachable_from_digest_is_reported_with_path() {
        let files = vec![pf(
            "sim",
            "crates/sim/src/stats.rs",
            "
            pub fn report_digest(r: &R) -> u64 { mix(r) }
            fn mix(r: &R) -> u64 { stamp() }
            fn stamp() -> u64 { Instant::now(); 0 }
            ",
        )];
        let fs = run(&files);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "D5");
        assert_eq!(fs[0].line, 4);
        assert!(
            fs[0]
                .message
                .contains("sim::report_digest → sim::mix → sim::stamp"),
            "{}",
            fs[0].message
        );
    }

    #[test]
    fn allow_d2_does_not_suppress_d5_but_allow_d5_does() {
        let src = "
            pub fn report_digest(r: &R) -> u64 { a(); b(); 0 }
            fn a() {
                // lint: allow(D2) — diagnostic only
                Instant::now();
            }
            fn b() {
                // lint: allow(D5) — value is discarded before hashing
                Instant::now();
            }
        ";
        let files = vec![pf("sim", "crates/sim/src/stats.rs", src)];
        let fs = run(&files);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].symbol.ends_with("::a"), "{}", fs[0].symbol);
    }

    #[test]
    fn unreachable_wall_clock_is_clean() {
        let files = vec![pf(
            "cluster",
            "crates/cluster/src/run.rs",
            "
            pub fn report_digest(r: &R) -> u64 { 0 }
            pub fn shard_diag() { Instant::now(); }
            ",
        )];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn outcome_record_construction_is_a_sink() {
        let files = vec![pf(
            "sim",
            "crates/sim/src/stats.rs",
            "
            pub fn record(q: &Q) -> OutcomeRecord {
                OutcomeRecord { t: stamp() }
            }
            fn stamp() -> u64 { SystemTime::now(); 0 }
            ",
        )];
        let fs = run(&files);
        assert_eq!(fs.len(), 1);
        assert!(
            fs[0].message.contains("SystemTime::now"),
            "{}",
            fs[0].message
        );
    }

    #[test]
    fn hashmap_and_parallelism_are_sources() {
        let files = vec![pf(
            "sim",
            "crates/sim/src/stats.rs",
            "
            pub fn report_digest(r: &R) -> u64 {
                let m: HashMap<u32, u32> = HashMap::new();
                let w = std::thread::available_parallelism();
                0
            }
            ",
        )];
        let fs = run(&files);
        let whats: Vec<_> = fs.iter().map(|f| f.kind.as_str()).collect();
        assert!(
            whats.contains(&"taint:HashMap iteration order"),
            "{whats:?}"
        );
        assert!(whats.contains(&"taint:available_parallelism"), "{whats:?}");
    }
}
