//! Fixture-driven tests for `cargo xtask analyze`: each seeded violation
//! (one per interprocedural rule) must be reported with its exact rule id
//! and call path, the baseline ratchet must gate exit codes, and the real
//! workspace must be clean under the checked-in `xtask-baseline.json`.

use std::path::{Path, PathBuf};
use xtask::baseline::{parse_baseline, render_baseline};
use xtask::{analyze_workspace, Finding};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap()
}

/// Build a throwaway workspace containing the given `crates/<c>/src/<f>`
/// files and return its root.
fn fake_workspace(tag: &str, files: &[(&str, &str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("unit-analyze-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    for (krate, file, contents) in files {
        let src_dir = root.join("crates").join(krate).join("src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(src_dir.join(file), contents).unwrap();
    }
    root
}

fn by_rule<'a>(fs: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    fs.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn d5_fixture_reports_the_taint_flow_with_call_path() {
    let root = fake_workspace("d5", &[("sim", "stats.rs", &fixture("d5_taint.rs"))]);
    let fs = analyze_workspace(&root).unwrap();
    let d5 = by_rule(&fs, "D5");
    assert_eq!(d5.len(), 1, "{fs:?}");
    assert_eq!(d5[0].line, 14);
    assert_eq!(d5[0].file, "crates/sim/src/stats.rs");
    assert_eq!(d5[0].symbol, "sim::stamp_nanos");
    assert!(
        d5[0]
            .message
            .contains("sim::report_digest → sim::fold → sim::stamp_nanos"),
        "{}",
        d5[0].message
    );
    // The same line also trips per-file D2 — the two rules are
    // complementary, not redundant.
    assert!(fs.iter().any(|f| f.rule == "D2" && f.line == 14), "{fs:?}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn d6_fixture_reports_reachable_panics_with_call_path() {
    let root = fake_workspace("d6", &[("sim", "lookup.rs", &fixture("d6_reach.rs"))]);
    let fs = analyze_workspace(&root).unwrap();
    let d6 = by_rule(&fs, "D6");
    // Line 9's unwrap and line 12's raw index; line 11's annotated index
    // stays quiet.
    assert_eq!(
        d6.iter()
            .map(|f| (f.line, f.kind.as_str()))
            .collect::<Vec<_>>(),
        vec![(9, "call:unwrap"), (12, "index")],
        "{d6:?}"
    );
    for f in &d6 {
        assert_eq!(f.symbol, "sim::pick");
        assert!(
            f.message.contains("sim::lookup → sim::pick"),
            "{}",
            f.message
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn p2_fixture_reports_hot_path_allocations() {
    let root = fake_workspace("p2", &[("sim", "greedy.rs", &fixture("p2_hotpath.rs"))]);
    let fs = analyze_workspace(&root).unwrap();
    let p2 = by_rule(&fs, "P2");
    assert_eq!(
        p2.iter()
            .map(|f| (f.line, f.kind.as_str(), f.symbol.as_str()))
            .collect::<Vec<_>>(),
        vec![
            (9, "alloc:format!", "sim::Greedy::on_query"),
            (14, "alloc:.to_vec()", "sim::Greedy::snapshot"),
        ],
        "{p2:?}"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn a1_fixture_reports_malformed_allows() {
    let root = fake_workspace("a1", &[("sim", "bad.rs", &fixture("a1_allow.rs"))]);
    let fs = analyze_workspace(&root).unwrap();
    let a1 = by_rule(&fs, "A1");
    assert_eq!(a1.len(), 2, "{a1:?}");
    assert_eq!(a1[0].line, 4);
    assert!(
        a1[0].message.contains("no reason clause"),
        "{}",
        a1[0].message
    );
    assert_eq!(a1[1].line, 6);
    assert!(
        a1[1].message.contains("unknown rule id `Q9`"),
        "{}",
        a1[1].message
    );
    // And because neither annotation takes effect, both unwraps still
    // trip D3.
    assert_eq!(by_rule(&fs, "D3").len(), 2, "{fs:?}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn fingerprints_are_stable_across_unrelated_line_shifts() {
    let src = fixture("d6_reach.rs");
    let root = fake_workspace("fp-a", &[("sim", "lookup.rs", &src)]);
    let before = analyze_workspace(&root).unwrap();
    // Prepend comment lines: every finding moves, no fingerprint does.
    let shifted = format!("// pad\n// pad\n// pad\n{src}");
    let root_b = fake_workspace("fp-b", &[("sim", "lookup.rs", &shifted)]);
    let after = analyze_workspace(&root_b).unwrap();
    let fp = |fs: &[Finding]| {
        fs.iter()
            .map(|f| (f.rule, f.fingerprint.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(fp(&before), fp(&after));
    assert!(before.iter().zip(&after).all(|(b, a)| b.line + 3 == a.line));
    std::fs::remove_dir_all(&root).ok();
    std::fs::remove_dir_all(&root_b).ok();
}

// --- binary-level tests: exit codes, formats, and the ratchet ------------

fn xtask_bin(root: &Path, args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .args(["--root", root.to_str().unwrap()])
        .output()
        .unwrap()
}

#[test]
fn analyze_binary_fails_then_passes_after_baselining() {
    let root = fake_workspace(
        "ratchet",
        &[
            ("sim", "stats.rs", &fixture("d5_taint.rs")),
            ("sim", "lookup.rs", &fixture("d6_reach.rs")),
        ],
    );
    // Fresh tree, no baseline: seeded findings fail the run.
    let out = xtask_bin(&root, &["analyze"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("D5"), "{stdout}");
    assert!(stdout.contains("D6"), "{stdout}");

    // Accept the debt, then the same tree is clean…
    let out = xtask_bin(&root, &["analyze", "--update-baseline"]);
    assert_eq!(out.status.code(), Some(0));
    let out = xtask_bin(&root, &["analyze"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // …until a new violation lands, which fails again (ratchet, not gate).
    let extra = "pub fn fresh(xs: &[u64]) -> u64 { xs[0] }\n";
    std::fs::write(root.join("crates/sim/src/extra.rs"), extra).unwrap();
    let out = xtask_bin(&root, &["analyze", "--format", "json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"rule\":\"D6\""), "{stdout}");
    assert!(stdout.contains("crates/sim/src/extra.rs"), "{stdout}");
    // Only the new finding is reported; the baselined ones stay quiet.
    assert!(!stdout.contains("crates/sim/src/stats.rs"), "{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn analyze_binary_emits_sarif_with_fingerprints() {
    let root = fake_workspace("sarif", &[("sim", "greedy.rs", &fixture("p2_hotpath.rs"))]);
    let out = xtask_bin(&root, &["analyze", "--format", "sarif", "--no-baseline"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"version\":\"2.1.0\""), "{stdout}");
    assert!(stdout.contains("\"ruleId\":\"P2\""), "{stdout}");
    assert!(
        stdout.contains("\"uri\":\"crates/sim/src/greedy.rs\""),
        "{stdout}"
    );
    assert!(stdout.contains("unitAnalyze/v1"), "{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn analyze_binary_rejects_unknown_flags_with_exit_2() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["analyze", "--format", "yaml"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["analyze", "--frobnicate"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

// --- the real workspace ---------------------------------------------------

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn real_workspace_is_clean_under_the_checked_in_baseline() {
    let root = workspace_root();
    let findings = analyze_workspace(&root).unwrap();
    let baseline_src = std::fs::read_to_string(root.join("xtask-baseline.json")).unwrap();
    let baseline = parse_baseline(&baseline_src).unwrap();
    let r = baseline.ratchet(findings);
    assert!(
        r.new.is_empty(),
        "non-baselined findings — fix them or run `cargo xtask analyze --update-baseline`:\n{}",
        r.new
            .iter()
            .map(|f| format!("{}:{} {} {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        r.stale.is_empty(),
        "stale baseline entries — shrink the baseline:\n{:?}",
        r.stale
    );
}

#[test]
fn real_workspace_has_no_digest_taint_at_all() {
    // D5 is the tentpole invariant: nothing nondeterministic is reachable
    // from report_digest or outcome-log construction, baselined or not.
    let findings = analyze_workspace(&workspace_root()).unwrap();
    let d5: Vec<_> = findings.iter().filter(|f| f.rule == "D5").collect();
    assert!(d5.is_empty(), "{d5:?}");
}

#[test]
fn baseline_file_roundtrips_through_render() {
    let src = std::fs::read_to_string(workspace_root().join("xtask-baseline.json")).unwrap();
    let parsed = parse_baseline(&src).unwrap();
    assert!(!parsed.entries.is_empty());
    // Rendering findings and re-parsing is identity on the entry set —
    // guards the hand-rolled JSON against quoting drift.
    let reparsed = parse_baseline(&src.replace('\n', " ")).unwrap();
    assert_eq!(parsed.entries, reparsed.entries);
}

#[test]
fn update_baseline_is_idempotent() {
    let root = fake_workspace("idem", &[("sim", "lookup.rs", &fixture("d6_reach.rs"))]);
    assert_eq!(
        xtask_bin(&root, &["analyze", "--update-baseline"])
            .status
            .code(),
        Some(0)
    );
    let first = std::fs::read_to_string(root.join("xtask-baseline.json")).unwrap();
    assert_eq!(
        xtask_bin(&root, &["analyze", "--update-baseline"])
            .status
            .code(),
        Some(0)
    );
    let second = std::fs::read_to_string(root.join("xtask-baseline.json")).unwrap();
    assert_eq!(first, second);
    // And the rendered form parses back to the same fingerprint set the
    // in-process API computes.
    let findings = analyze_workspace(&root).unwrap();
    let b = parse_baseline(&render_baseline(&findings)).unwrap();
    let c = parse_baseline(&first).unwrap();
    assert_eq!(b.entries, c.entries);
    std::fs::remove_dir_all(&root).ok();
}
