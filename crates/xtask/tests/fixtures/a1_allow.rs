// Fixture: malformed allow annotations — each is dead weight (suppresses
// nothing) and must be reported as A1.
fn validated(x: Option<u64>, y: Option<u64>) -> u64 {
    // lint: allow(panic)
    let a = x.unwrap();
    // lint: allow(Q9) — there is no rule Q9
    let b = y.unwrap();
    a + b
}
