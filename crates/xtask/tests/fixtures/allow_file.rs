// lint: allow-file(D1) — fixture: file-wide exemption with a reason
use std::collections::HashMap;

pub type Index = HashMap<u64, u32>;
