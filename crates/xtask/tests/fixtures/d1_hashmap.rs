//! D1 fixture: hash containers in a deterministic crate.
use std::collections::HashMap;
use std::collections::HashSet;

pub struct State {
    by_txn: HashMap<u64, u32>,
    seen: HashSet<u32>,
}
