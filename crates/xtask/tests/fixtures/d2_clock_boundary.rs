//! D2 clock-boundary fixture: one seeded violation of the serving-clock
//! boundary — a non-server crate holding a `WallClock` handle — plus an
//! entropy draw, which is forbidden even inside `server`.
use unit_server::WallClock;

pub fn leak_a_wall_clock() -> WallClock {
    WallClock::new()
}

pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
