//! D2 fixture: wall clocks and OS entropy in simulation code.
use std::time::Instant;

pub fn elapsed() -> std::time::Duration {
    let start = Instant::now();
    start.elapsed()
}

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rand::random()
}
