//! D3 fixture: panic-family calls, one carrying a justified allow.
pub fn first(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn second(x: Option<u32>) -> u32 {
    // lint: allow(panic) — fixture: justified exemption
    x.expect("checked by caller")
}

pub fn boom() {
    panic!("unconditional");
}
