//! D4 fixture: float equality and simulated-time truncation.
pub fn exact(a: f64) -> bool {
    a == 0.5
}

pub fn truncate(d: SimDuration) -> u64 {
    (d.as_secs_f64() * 1000.0) as u64
}
