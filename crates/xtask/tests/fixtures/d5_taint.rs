// Fixture: a wall clock smuggled into the digest closure through two
// hops of private helpers — the exact shape no per-line rule can see.
pub struct SimReport;

pub fn report_digest(_r: &SimReport) -> u64 {
    fold(_r)
}

fn fold(_r: &SimReport) -> u64 {
    stamp_nanos()
}

fn stamp_nanos() -> u64 {
    let _t = Instant::now();
    0
}
