// Fixture: panic sites buried in a private helper that the public API
// reaches — one unwrap, one raw index, plus an annotated site that must
// stay quiet.
pub fn lookup(xs: &[u64], i: usize) -> u64 {
    pick(xs, i)
}

fn pick(xs: &[u64], i: usize) -> u64 {
    let head = xs.first().unwrap();
    // lint: allow(D6) — fixture: bounds-checked by the caller
    let tail = xs[xs.len() - 1];
    head + tail + xs[i]
}
