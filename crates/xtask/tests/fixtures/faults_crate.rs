//! Faults-crate fixture: one deliberate violation per determinism rule.
use std::collections::HashMap;

pub fn windows() -> HashMap<u64, u64> {
    HashMap::new()
}

pub fn now_seed() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}

pub fn pick(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn boundary(frac: f64) -> bool {
    frac == 0.25
}

pub fn to_ticks(secs: f64) -> u64 {
    (secs * TICKS_PER_SEC as f64) as u64
}
