//! Obs-crate fixture: one deliberate violation per determinism rule.
use std::collections::HashMap;

pub fn counts_by_kind() -> HashMap<u64, u64> {
    HashMap::new()
}

pub fn stamp() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}

pub fn first_time(events: &[u64]) -> u64 {
    *events.first().unwrap()
}

pub fn at_origin(usm: f64) -> bool {
    usm == 0.0
}

pub fn bucket(secs: f64) -> u64 {
    (secs * TICKS_PER_SEC as f64) as u64
}
