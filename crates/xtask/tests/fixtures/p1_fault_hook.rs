//! P1 fixture: FaultHook trait fns must document a complexity bound.
pub trait FaultHook {
    /// Documented hook. O(log F).
    fn health(&self);

    /// Missing a complexity bound.
    fn update_fault(&self);

    fn load_at(&self);
}

pub trait Unrelated {
    fn ignored(&self);
}
