//! P1 fixture: Observer trait fns must document a complexity bound.
pub trait Observer {
    /// Documented sink. O(1) amortized.
    fn on_event(&mut self);

    /// Missing a complexity bound.
    fn flush(&mut self);

    fn drained(&self);
}

pub struct RingRecorder;

impl RingRecorder {
    pub fn outside_the_trait(&self) {}
}
