//! P1 fixture: Policy trait fns must document a complexity bound.
pub trait Policy {
    /// Documented hook. O(1).
    fn good(&self);

    /// Missing a complexity bound.
    fn bad(&self);

    fn naked(&self);
}
