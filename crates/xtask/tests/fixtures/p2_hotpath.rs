// Fixture: per-event allocations inside a Policy impl hook — the shape
// that silently gives back the event-loop perf wins.
pub struct Greedy {
    seen: Vec<String>,
}

impl Policy for Greedy {
    fn on_query(&mut self, name: &str) {
        let label = format!("q-{name}");
        self.seen.push(label);
    }

    fn snapshot(&self) -> Vec<String> {
        self.seen.to_vec()
    }
}
