//! Fixture shaped like the streaming/epoch code paths (chunked trace
//! ingestion + epoch-parallel shard stepping), carrying exactly ONE
//! violation of each determinism rule D1–D4. Exercised by
//! `lint_fixtures.rs` under both the `sim` and `cluster` crate contexts —
//! the crates the streaming engine and the epoch executor live in.
//! (Never compiled; only `check_source` reads it.)
use std::collections::HashMap; // D1: hash order would scramble the feed

fn feed_chunk(pending: &mut Vec<u64>, chunk: usize) -> usize {
    let started = std::time::Instant::now(); // D2: wall clock in sim code
    let mut fed = 0usize;
    while fed < chunk {
        let spec = pending.pop().unwrap(); // D3: unannotated panic path
        let _ = spec;
        fed += 1;
    }
    let _ = started;
    fed
}

fn epoch_limit(epoch: std::time::Duration) -> u64 {
    epoch.as_secs_f64() as u64 // D4: sim-time truncation cast
}

fn main() {
    let mut q = vec![1, 2, 3];
    let _ = feed_chunk(&mut q, 2);
    let _ = epoch_limit(std::time::Duration::from_secs(1));
}
