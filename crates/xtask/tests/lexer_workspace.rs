//! Lexer robustness over real-world syntax (ISSUE 7, satellite 3):
//!
//! (a) **workspace sweep** — the lexer processes every `.rs` file in the
//!     repository (including test/bench/fixture files the lint walker
//!     skips, and the vendored crates) without panicking, and every
//!     token satisfies the span contract;
//! (b) **fuzz** — random near-Rust soup built from a token palette and
//!     raw random chars upholds the same contract.
//!
//! The span contract (documented on [`xtask::lexer::Tok::span`], relied
//! on by the item parser and the fingerprinting layer):
//! `start <= end <= src.len()`, both on char boundaries, token starts
//! monotone non-decreasing in stream order, and for ident/number tokens
//! the span slices back to exactly the token text.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use xtask::lexer::{scan, TokKind};

/// Every `.rs` file under `dir`, with no skip list — unlike the lint
/// walker, this sweep wants the weird files too.
fn all_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            all_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Assert the span contract for one source string. Returns the token
/// count so callers can sanity-check coverage.
fn check_span_contract(src: &str, origin: &str) -> usize {
    let s = scan(src);
    let mut prev_start = 0usize;
    for (i, t) in s.toks.iter().enumerate() {
        let (lo, hi) = t.span;
        assert!(lo <= hi, "{origin}: token {i} has span {lo}..{hi}");
        assert!(
            hi <= src.len(),
            "{origin}: token {i} span end {hi} > len {}",
            src.len()
        );
        assert!(
            src.is_char_boundary(lo) && src.is_char_boundary(hi),
            "{origin}: token {i} span {lo}..{hi} not on char boundaries"
        );
        assert!(
            lo >= prev_start,
            "{origin}: token {i} start {lo} went backwards (prev {prev_start})"
        );
        prev_start = lo;
        // Idents, numbers, and lifetimes carry their text; the span must
        // slice back to it (lifetimes include the leading tick).
        match t.kind {
            TokKind::Ident | TokKind::Int | TokKind::Float => {
                assert_eq!(
                    &src[lo..hi],
                    t.text,
                    "{origin}: token {i} span text mismatch"
                );
            }
            TokKind::Lifetime => {
                assert_eq!(
                    &src[lo..hi],
                    format!("'{}", t.text),
                    "{origin}: token {i} lifetime span mismatch"
                );
            }
            _ => {}
        }
    }
    s.toks.len()
}

#[test]
fn every_workspace_rs_file_lexes_with_valid_spans() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    all_rs_files(&root.join("crates"), &mut files);
    all_rs_files(&root.join("vendor"), &mut files);
    assert!(
        files.len() > 50,
        "workspace sweep found only {} files — walker broken?",
        files.len()
    );
    let mut total = 0usize;
    for path in &files {
        let src = std::fs::read_to_string(path).unwrap();
        total += check_span_contract(&src, &path.display().to_string());
    }
    assert!(total > 100_000, "only {total} tokens swept — suspicious");
}

/// Fragments that exercise every lexer mode, for recombination.
const PALETTE: &[&str] = &[
    "fn",
    "pub",
    "impl",
    "for",
    "where",
    "'a",
    "'\\n'",
    "r#\"raw \" str\"#",
    "b'\\x7f'",
    "\"str \\\" esc\"",
    "//! doc\n",
    "/* block /* nested */ */",
    "1.5e-6",
    "0xff_u32",
    "1..2",
    "::",
    "==",
    "=>",
    "->",
    "#[cfg(test)]",
    "mod",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    "…",
    "🦀",
    "r#fn",
    "b\"bytes\"",
    "1.",
    "'b",
    "x.unwrap()",
    "№",
    "\\",
    "\"unterminated",
    "/* open",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn palette_soup_upholds_the_span_contract(
        picks in proptest::collection::vec(0usize..37, 0..64),
        seps in proptest::collection::vec(0u8..4, 0..64),
    ) {
        let mut src = String::new();
        for (i, &p) in picks.iter().enumerate() {
            src.push_str(PALETTE[p % PALETTE.len()]);
            match seps.get(i).copied().unwrap_or(0) {
                0 => src.push(' '),
                1 => src.push('\n'),
                2 => {}
                _ => src.push('\t'),
            }
        }
        check_span_contract(&src, "palette-soup");
    }

    #[test]
    fn random_char_soup_never_panics(
        codes in proptest::collection::vec(any::<u32>(), 0..256),
    ) {
        let src: String = codes
            .iter()
            .filter_map(|&c| char::from_u32(c % 0x11_0000))
            .collect();
        check_span_contract(&src, "char-soup");
    }
}
