//! Fixture-driven linter tests: each file under `tests/fixtures/` must
//! produce exactly the findings (rule id + line number) asserted here — no
//! more, no fewer. The workspace walker skips `tests/` and `fixtures/`
//! directories, so these deliberately violating files never pollute the
//! real `cargo xtask lint` pass.

use std::path::Path;
use xtask::{check_source, FileCtx, Finding};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap()
}

fn ctx(crate_name: &str, rel_path: &str) -> FileCtx {
    FileCtx {
        crate_name: crate_name.to_string(),
        rel_path: rel_path.to_string(),
    }
}

fn rule_lines(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn d1_fixture_reports_every_hash_container() {
    let fs = check_source(
        &fixture("d1_hashmap.rs"),
        &ctx("sim", "crates/sim/src/fixture.rs"),
    );
    assert_eq!(
        rule_lines(&fs),
        vec![("D1", 2), ("D1", 3), ("D1", 6), ("D1", 7)]
    );
    assert!(fs[0].hint.contains("BTreeMap"), "{}", fs[0].hint);
    assert!(fs[1].hint.contains("BTreeSet"), "{}", fs[1].hint);
}

#[test]
fn d1_fixture_is_ignored_outside_deterministic_crates() {
    let fs = check_source(
        &fixture("d1_hashmap.rs"),
        &ctx("bench", "crates/bench/src/fixture.rs"),
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn d1_fixture_fires_in_workload() {
    // The streaming generators feed the engine in trace order, so
    // `workload` joined the D1 crates when streaming ingestion landed.
    let fs = check_source(
        &fixture("d1_hashmap.rs"),
        &ctx("workload", "crates/workload/src/fixture.rs"),
    );
    assert!(
        fs.iter().all(|f| f.rule == "D1") && !fs.is_empty(),
        "{fs:?}"
    );
}

#[test]
fn d2_fixture_reports_clocks_and_entropy() {
    let fs = check_source(
        &fixture("d2_wall_clock.rs"),
        &ctx("core", "crates/core/src/fixture.rs"),
    );
    assert_eq!(rule_lines(&fs), vec![("D2", 5), ("D2", 10), ("D2", 11)]);
    assert!(fs[0].message.contains("Instant::now"), "{}", fs[0].message);
    assert!(fs[1].message.contains("thread_rng"), "{}", fs[1].message);
    assert!(fs[2].message.contains("rand::random"), "{}", fs[2].message);
}

#[test]
fn d2_fixture_is_exempt_in_bench() {
    let fs = check_source(
        &fixture("d2_wall_clock.rs"),
        &ctx("bench", "crates/bench/src/fixture.rs"),
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn d2_clock_boundary_fixture_flags_wallclock_outside_server() {
    // The seeded boundary violation: a sim-crate file naming WallClock
    // (lines 4, 6, 7) and drawing entropy (line 11).
    let fs = check_source(
        &fixture("d2_clock_boundary.rs"),
        &ctx("sim", "crates/sim/src/fixture.rs"),
    );
    assert_eq!(
        rule_lines(&fs),
        vec![("D2", 4), ("D2", 6), ("D2", 7), ("D2", 11)]
    );
    assert!(fs[0].message.contains("WallClock"), "{}", fs[0].message);
    assert!(fs[0].hint.contains("Clock trait"), "{}", fs[0].hint);
}

#[test]
fn d2_clock_boundary_fixture_allows_wallclock_in_server_but_not_entropy() {
    // Inside crates/server the wall-clock tier is exempt; the entropy
    // tier still fires.
    let fs = check_source(
        &fixture("d2_clock_boundary.rs"),
        &ctx("server", "crates/server/src/fixture.rs"),
    );
    assert_eq!(rule_lines(&fs), vec![("D2", 11)]);
    assert!(fs[0].message.contains("thread_rng"), "{}", fs[0].message);
}

#[test]
fn d2_clock_boundary_fixture_is_fully_exempt_in_bench() {
    let fs = check_source(
        &fixture("d2_clock_boundary.rs"),
        &ctx("bench", "crates/bench/src/fixture.rs"),
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn d2_wall_clock_fixture_in_server_keeps_only_entropy_findings() {
    // Instant::now (line 5) is the server's to use; thread_rng/random
    // (lines 10, 11) are not.
    let fs = check_source(
        &fixture("d2_wall_clock.rs"),
        &ctx("server", "crates/server/src/fixture.rs"),
    );
    assert_eq!(rule_lines(&fs), vec![("D2", 10), ("D2", 11)]);
}

#[test]
fn d3_fixture_reports_unannotated_panics_only() {
    let fs = check_source(
        &fixture("d3_panics.rs"),
        &ctx("core", "crates/core/src/fixture.rs"),
    );
    // Line 8's `.expect` is suppressed by the allow on line 7.
    assert_eq!(rule_lines(&fs), vec![("D3", 3), ("D3", 12)]);
    assert!(fs[0].message.contains(".unwrap()"), "{}", fs[0].message);
    assert!(fs[1].message.contains("panic!"), "{}", fs[1].message);
    assert!(fs[0].hint.contains("allow(panic)"), "{}", fs[0].hint);
}

#[test]
fn d4_fixture_reports_equality_and_time_casts() {
    let fs = check_source(
        &fixture("d4_floats.rs"),
        &ctx("core", "crates/core/src/fixture.rs"),
    );
    assert_eq!(rule_lines(&fs), vec![("D4", 3), ("D4", 7)]);
    assert!(fs[0].message.contains("float `==`"), "{}", fs[0].message);
    assert!(fs[1].message.contains("as-cast"), "{}", fs[1].message);
}

#[test]
fn d4_fixture_is_exempt_in_the_time_module() {
    let fs = check_source(
        &fixture("d4_floats.rs"),
        &ctx("core", "crates/core/src/time.rs"),
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn p1_fixture_reports_undocumented_policy_fns() {
    let fs = check_source(
        &fixture("p1_policy.rs"),
        &ctx("core", "crates/core/src/policy.rs"),
    );
    assert_eq!(rule_lines(&fs), vec![("P1", 7), ("P1", 9)]);
    assert!(fs[0].message.contains("fn bad"), "{}", fs[0].message);
    assert!(fs[1].message.contains("fn naked"), "{}", fs[1].message);
}

#[test]
fn p1_fixture_only_applies_to_the_policy_surface() {
    let fs = check_source(
        &fixture("p1_policy.rs"),
        &ctx("core", "crates/core/src/other.rs"),
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn faults_crate_fixture_trips_every_determinism_rule() {
    // The faults crate is deterministic-simulation code: every D-rule
    // covers it, and each deliberate violation in the fixture is reported.
    let fs = check_source(
        &fixture("faults_crate.rs"),
        &ctx("faults", "crates/faults/src/fixture.rs"),
    );
    assert_eq!(
        rule_lines(&fs),
        vec![
            ("D1", 2),
            ("D1", 4),
            ("D1", 5),
            ("D2", 9),
            ("D3", 13),
            ("D4", 17),
            ("D4", 21),
        ]
    );
}

#[test]
fn obs_crate_fixture_trips_every_determinism_rule() {
    // The obs crate sits on the engine's hot path and its streams feed
    // replay/export goldens, so every D-rule covers it too.
    let fs = check_source(
        &fixture("obs_crate.rs"),
        &ctx("obs", "crates/obs/src/fixture.rs"),
    );
    assert_eq!(
        rule_lines(&fs),
        vec![
            ("D1", 2),
            ("D1", 4),
            ("D1", 5),
            ("D2", 9),
            ("D3", 13),
            ("D4", 17),
            ("D4", 21)
        ]
    );
}

#[test]
fn p1_covers_the_observer_surface() {
    let fs = check_source(
        &fixture("p1_observer.rs"),
        &ctx("obs", "crates/obs/src/recorder.rs"),
    );
    assert_eq!(rule_lines(&fs), vec![("P1", 7), ("P1", 9)]);
    assert!(fs[0].message.contains("fn flush"), "{}", fs[0].message);
    // Only the Observer trait body is in scope: the documented `on_event`
    // and the inherent `RingRecorder` method produce nothing.
    assert!(fs.iter().all(|f| f.line != 4 && f.line != 15), "{fs:?}");
}

#[test]
fn p1_observer_fixture_is_ignored_elsewhere() {
    let fs = check_source(
        &fixture("p1_observer.rs"),
        &ctx("obs", "crates/obs/src/event.rs"),
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn p1_covers_the_fault_hook_surface() {
    let fs = check_source(
        &fixture("p1_fault_hook.rs"),
        &ctx("sim", "crates/sim/src/faults.rs"),
    );
    assert_eq!(rule_lines(&fs), vec![("P1", 7), ("P1", 9)]);
    assert!(
        fs[0].message.contains("fn update_fault"),
        "{}",
        fs[0].message
    );
    // Only the FaultHook trait body is in scope: `Unrelated::ignored` and
    // the documented `health` produce nothing.
    assert!(fs.iter().all(|f| f.line != 4 && f.line != 13), "{fs:?}");
}

#[test]
fn p1_fault_hook_fixture_is_ignored_elsewhere() {
    let fs = check_source(
        &fixture("p1_fault_hook.rs"),
        &ctx("sim", "crates/sim/src/other.rs"),
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn file_scoped_allow_suppresses_the_whole_file() {
    let fs = check_source(
        &fixture("allow_file.rs"),
        &ctx("sim", "crates/sim/src/fixture.rs"),
    );
    assert!(fs.is_empty(), "{fs:?}");
}

// --- binary-level tests: exit codes and output formats -------------------

fn fake_workspace(tag: &str, file: &str, contents: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("unit-lint-{tag}-{}", std::process::id()));
    let src_dir = root.join("crates/sim/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(src_dir.join(file), contents).unwrap();
    root
}

#[test]
fn lint_binary_exits_nonzero_with_json_findings() {
    let root = fake_workspace("dirty", "bad.rs", &fixture("d1_hashmap.rs"));
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--format", "json", "--root"])
        .arg(&root)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"rule\":\"D1\""), "{stdout}");
    assert!(stdout.contains("\"line\":2"), "{stdout}");
    assert!(
        stdout.contains("\"file\":\"crates/sim/src/bad.rs\""),
        "{stdout}"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn lint_binary_exits_zero_on_a_clean_tree() {
    let root = fake_workspace("clean", "good.rs", "pub fn id(x: u32) -> u32 { x }\n");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(&root)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("unit-lint: clean"), "{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

/// The streaming/epoch fixture carries exactly one violation of each
/// determinism rule, at a known line — the shape of a bug slipping into
/// the chunked-ingestion or epoch-stepping code. It must report all four
/// (and only those four) in both crates those modules live in.
#[test]
fn streaming_epoch_fixture_reports_one_violation_per_rule() {
    for (krate, rel) in [
        ("sim", "crates/sim/src/engine.rs"),
        ("cluster", "crates/cluster/src/run.rs"),
    ] {
        let fs = check_source(&fixture("streaming_epoch.rs"), &ctx(krate, rel));
        assert_eq!(
            rule_lines(&fs),
            vec![("D1", 7), ("D2", 10), ("D3", 13), ("D4", 22)],
            "crate {krate}: {fs:?}"
        );
    }
}

/// The same source is inert in `bench`, the one crate allowed to touch
/// wall clocks (and exempt from the library-hygiene rules).
#[test]
fn streaming_epoch_fixture_is_inert_in_bench() {
    let fs = check_source(
        &fixture("streaming_epoch.rs"),
        &ctx("bench", "crates/bench/src/fixture.rs"),
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn lint_binary_rejects_unknown_flags_with_exit_2() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--format", "yaml"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
