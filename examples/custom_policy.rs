//! Custom policy: plugging your own transaction manager into the server.
//!
//! The whole evaluation surface — UNIT and all baselines — sits behind the
//! `unit_core::policy::Policy` trait. This example implements a simple
//! "freshness-first with a fixed admission quota" policy from scratch and
//! runs it against UNIT on the same workload, demonstrating the extension
//! point a downstream user would build on.
//!
//! ```sh
//! cargo run --release -p unit-bench --example custom_policy
//! ```

use unit_core::policy::{AdmissionDecision, Policy, UpdateAction};
use unit_core::prelude::*;
use unit_core::snapshot::SnapshotView;
use unit_sim::{run_simulation, SimConfig};
use unit_workload::prelude::*;

/// Admits queries while the backlog stays under a fixed work quota and
/// applies every other version of every item (a static 50% update shed).
struct QuotaPolicy {
    /// Maximum outstanding work (seconds) before arrivals are rejected.
    backlog_quota_secs: f64,
    /// Per-item toggle used to halve every stream's frequency.
    apply_toggle: Vec<bool>,
    rejected: u64,
}

impl QuotaPolicy {
    fn new(backlog_quota_secs: f64) -> Self {
        QuotaPolicy {
            backlog_quota_secs,
            apply_toggle: Vec::new(),
            rejected: 0,
        }
    }
}

impl Policy for QuotaPolicy {
    fn name(&self) -> &str {
        "QUOTA"
    }

    fn init(&mut self, n_items: usize, _updates: &[UpdateSpec]) {
        self.apply_toggle = vec![true; n_items];
    }

    fn on_query_arrival(&mut self, q: &QuerySpec, sys: &SnapshotView<'_>) -> AdmissionDecision {
        let backlog = sys.update_backlog.as_secs_f64() + sys.query_backlog().as_secs_f64();
        if backlog + q.exec_time.as_secs_f64() > self.backlog_quota_secs {
            self.rejected += 1;
            AdmissionDecision::Reject
        } else {
            AdmissionDecision::Admit
        }
    }

    fn on_version_arrival(
        &mut self,
        item: DataId,
        _now: SimTime,
        _sys: &SnapshotView<'_>,
    ) -> UpdateAction {
        // Static modulation: apply every other version.
        let slot = &mut self.apply_toggle[item.index()];
        *slot = !*slot;
        if *slot {
            UpdateAction::Skip
        } else {
            UpdateAction::Apply
        }
    }
}

fn main() {
    let queries = QueryTraceConfig {
        n_items: 128,
        n_queries: 4_000,
        horizon: SimDuration::from_secs(140_000),
        ..QueryTraceConfig::default()
    };
    let updates =
        UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform).with_total(1_100);
    let bundle = TraceBundle::generate(&queries, &updates);
    let cfg = SimConfig::new(bundle.horizon);

    println!(
        "workload `{}` at {:.0}% offered load\n",
        bundle.name,
        100.0 * bundle.offered_load()
    );

    let quota = run_simulation(&bundle.trace, QuotaPolicy::new(300.0), cfg);
    println!("{}", quota.summary());

    let unit = run_simulation(&bundle.trace, UnitPolicy::new(UnitConfig::default()), cfg);
    println!("{}", unit.summary());

    println!(
        "\nThe static quota policy sheds exactly 50% of updates everywhere and uses a\n\
         fixed admission quota; UNIT adapts both decisions to the observed outcome\n\
         mix ({:+.3} vs {:+.3} success ratio here). Implementing `Policy` took ~40\n\
         lines — the server, locking, deadlines, and freshness accounting are shared.",
        unit.success_ratio(),
        quota.success_ratio()
    );
}
