//! Flash crowd: admission control under a sudden query burst.
//!
//! A breaking-news site runs comfortably at ~35% load until a story lands
//! and the arrival rate jumps 20x for ten minutes. Without admission
//! control every query is accepted, the EDF queue fills with transactions
//! that can no longer make their deadlines, and they burn CPU until their
//! firm deadlines abort them. UNIT's deadline check turns the hopeless ones
//! away at the door, so the CPU only runs winners.
//!
//! ```sh
//! cargo run --release -p unit-bench --example flash_crowd
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unit_baselines::OduPolicy;
use unit_core::prelude::*;
use unit_sim::{run_simulation, SimConfig};
use unit_workload::TraceBuilder;

const ITEMS: usize = 32;
const HORIZON_S: f64 = 20_000.0;
const BURST_START: f64 = 8_000.0;
const BURST_END: f64 = 8_600.0;

fn build_trace() -> Trace {
    let mut rng = StdRng::seed_from_u64(99);
    let mut builder = TraceBuilder::new(ITEMS);
    let mut t = 0.0;
    while t < HORIZON_S {
        let in_burst = (BURST_START..BURST_END).contains(&t);
        let rate = if in_burst { 2.0 } else { 0.1 }; // queries per second
        t += -(rng.gen_range(f64::MIN_POSITIVE..1.0f64)).ln() / rate;
        builder = builder.query(
            t,
            &[rng.gen_range(0..ITEMS as u32)],
            rng.gen_range(2.0..4.0),
            rng.gen_range(10.0..40.0),
        );
    }
    // A light background update feed so freshness is in play.
    for i in 0..ITEMS as u32 {
        builder = builder.update_stream_at(i, 2_000.0, 5.0, rng.gen_range(0.0..2_000.0));
    }
    builder.build().expect("valid trace")
}

fn main() {
    let trace = build_trace();
    trace.validate().expect("valid trace");
    let horizon = SimDuration::from_secs_f64(HORIZON_S);
    let burst_queries = trace
        .queries
        .iter()
        .filter(|q| (BURST_START..BURST_END).contains(&q.arrival.as_secs_f64()))
        .count();
    println!(
        "flash crowd: {} queries total, {} of them inside a {}s burst (~6x the CPU)\n",
        trace.queries.len(),
        burst_queries,
        (BURST_END - BURST_START) as u64
    );

    // ODU admits everything (no admission control).
    let odu = run_simulation(&trace, OduPolicy::new(), SimConfig::new(horizon));
    println!("{}", odu.summary());

    // UNIT turns hopeless queries away instead of letting them waste CPU.
    let unit = run_simulation(
        &trace,
        UnitPolicy::new(UnitConfig::default()),
        SimConfig::new(horizon),
    );
    println!("{}", unit.summary());

    println!(
        "\nDuring the crowd, UNIT rejected {:.1}% of all queries up front and converted\n\
         wasted partial executions into completed ones: {} successes vs {} without\n\
         admission control.",
        100.0 * unit.ratios()[1],
        unit.counts.success,
        odu.counts.success
    );
    assert!(
        unit.counts.success >= odu.counts.success,
        "admission control should not lose successes on this workload"
    );
}
