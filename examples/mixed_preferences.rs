//! Mixed user preferences: the paper's §3.1 "multiple preferences" extension.
//!
//! Two user populations share one server:
//!
//! * **Traders** (class 0): tight deadlines (5–15 s), strict freshness, and
//!   stale data is worthless — `C_fs` dominates their penalty vector. They
//!   would rather be turned away than act on an old price.
//! * **Analysts** (class 1): relaxed deadlines (2–7 min), tolerant of
//!   somewhat-stale data, but a missed deadline wrecks a downstream
//!   pipeline — `C_fm` dominates.
//!
//! The multi-preference UNIT prices every outcome with the *submitting
//! user's* weights: the admission USM-check weighs an endangered analyst's
//! DMF (expensive) against a trader's rejection (cheap) using each party's
//! own penalties, the controller chases the dominant aggregate cost, and
//! the report decomposes outcomes per class.
//!
//! ```sh
//! cargo run --release -p unit-bench --example mixed_preferences
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unit_core::prelude::*;
use unit_core::usm::UsmWeights;
use unit_sim::{run_simulation, SimConfig, SimReport};

const ITEMS: usize = 96;
const HORIZON_S: u64 = 150_000;

fn build_trace() -> Trace {
    let mut rng = StdRng::seed_from_u64(61);
    // Market-data style updates: each item refreshes every ~1500s at ~15s
    // of server work apiece (~95% offered update CPU over 96 items).
    let updates = (0..ITEMS)
        .map(|i| UpdateSpec {
            id: UpdateStreamId(i as u32),
            item: DataId(i as u32),
            period: SimDuration::from_secs(1_500),
            exec_time: SimDuration::from_secs_f64(rng.gen_range(10.0..20.0)),
            first_arrival: SimTime::from_secs(rng.gen_range(0..1_500)),
        })
        .collect();

    let mut queries = Vec::new();
    let mut t = 0.0;
    let mut id = 0u64;
    while t < HORIZON_S as f64 {
        t += -(rng.gen_range(f64::MIN_POSITIVE..1.0f64)).ln() * 25.0;
        let item = DataId(((rng.gen::<f64>().powi(2) * ITEMS as f64) as u32).min(ITEMS as u32 - 1));
        let is_trader = rng.gen::<f64>() < 0.5;
        let (deadline, freshness_req, pref_class) = if is_trader {
            (rng.gen_range(5.0..15.0), 0.9, 0)
        } else {
            (rng.gen_range(120.0..420.0), 0.5, 1)
        };
        queries.push(QuerySpec {
            id: QueryId(id),
            arrival: SimTime::from_secs_f64(t),
            items: vec![item],
            exec_time: SimDuration::from_secs_f64(rng.gen_range(0.5..2.0)),
            relative_deadline: SimDuration::from_secs_f64(deadline),
            freshness_req,
            pref_class,
        });
        id += 1;
    }
    Trace {
        n_items: ITEMS,
        queries,
        updates,
    }
}

fn per_class_line(r: &SimReport, class: u32, who: &str, w: &UsmWeights) -> String {
    let c = r.class_counts(class);
    format!(
        "  {who} (n={:>4}): success {:>5.1}%  rejected {:>5.1}%  missed {:>4.1}%  stale {:>4.1}%  USM {:+.3}",
        c.total(),
        100.0 * c.ratio(Outcome::Success),
        100.0 * c.ratio(Outcome::Rejected),
        100.0 * c.ratio(Outcome::DeadlineMiss),
        100.0 * c.ratio(Outcome::DataStale),
        c.average_usm(w),
    )
}

fn main() {
    let trace = build_trace();
    trace.validate().expect("valid trace");
    let horizon = SimDuration::from_secs(HORIZON_S);

    // Penalties per population (>1 so relative pricing bites).
    let traders = UsmWeights::penalties(0.5, 1.0, 6.0); // stale = worthless
    let analysts = UsmWeights::penalties(0.5, 6.0, 1.0); // a miss = pipeline outage

    println!(
        "mixed preferences: {} queries over {} items, offered update load {:.0}%\n",
        trace.queries.len(),
        ITEMS,
        100.0 * trace.offered_update_utilization(horizon)
    );

    let cfg = UnitConfig::with_weights(traders) // default/fallback class
        .with_class_weights(vec![traders, analysts]);
    let report = run_simulation(&trace, UnitPolicy::new(cfg), SimConfig::new(horizon));

    println!("class-aware UNIT:");
    println!("{}", per_class_line(&report, 0, "traders ", &traders));
    println!("{}", per_class_line(&report, 1, "analysts", &analysts));
    println!(
        "  overall class-priced USM: {:+.4}",
        report.average_usm_multiclass(&traders, &[traders, analysts])
    );

    let t = report.class_counts(0);
    let a = report.class_counts(1);
    println!(
        "\nEach population is served — and priced — by its own economics: analysts'\n\
         generous deadlines and loose freshness succeed {:.1}% of the time (vs the\n\
         traders' demanding {:.1}%), the expensive analyst DMF (C_fm = 6) makes the\n\
         admission USM-check shield them from endangering newcomers (analyst\n\
         rejections: {:.1}%), and per-class accounting exposes the traders' true\n\
         dissatisfaction with this overloaded server instead of averaging it away.",
        100.0 * a.ratio(Outcome::Success),
        100.0 * t.ratio(Outcome::Success),
        100.0 * a.ratio(Outcome::Rejected),
    );
}
