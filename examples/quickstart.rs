//! Quickstart: build a small workload, run UNIT on it, read the report.
//!
//! ```sh
//! cargo run --release -p unit-bench --example quickstart
//! ```

use unit_core::prelude::*;
use unit_sim::{run_simulation, SimConfig};
use unit_workload::prelude::*;

fn main() {
    // 1. Synthesize a workload: a cello99a-like query trace over 128 items
    //    and a Table-1-style update trace at medium volume, uniformly spread.
    let queries = QueryTraceConfig {
        n_items: 128,
        n_queries: 4_000,
        horizon: SimDuration::from_secs(140_000),
        ..QueryTraceConfig::default()
    };
    let updates =
        UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform).with_total(1_100); // ~1100 updates x ~96s over 140,000s ≈ 75% CPU
    let bundle = TraceBundle::generate(&queries, &updates);
    println!(
        "workload `{}`: {} queries + {} update streams, offered load {:.0}%",
        bundle.name,
        bundle.trace.queries.len(),
        bundle.trace.updates.len(),
        100.0 * bundle.offered_load()
    );

    // 2. Pick user preferences: deadline misses are the most annoying.
    let weights = UsmWeights::low_high_cfm();

    // 3. Run the UNIT policy over the workload on the simulated server.
    let policy = UnitPolicy::new(UnitConfig::with_weights(weights));
    let report = run_simulation(
        &bundle.trace,
        policy,
        SimConfig::new(bundle.horizon).with_weights(weights),
    );

    // 4. Read the results.
    println!("{}", report.summary());
    let [rs, rr, rfm, rfs] = report.ratios();
    println!("success   {:>6.1}%", 100.0 * rs);
    println!("rejected  {:>6.1}%", 100.0 * rr);
    println!("missed    {:>6.1}%", 100.0 * rfm);
    println!("stale     {:>6.1}%", 100.0 * rfs);
    println!(
        "average USM = {:+.4} (range [{}, {}])",
        report.average_usm(),
        weights.range().0,
        weights.range().1
    );
    println!(
        "update shedding: applied {:.1}% of {} emitted versions",
        100.0 * report.applied_ratio(),
        report.versions_arrived.iter().sum::<u64>()
    );
}
