//! Sensor dashboard with temporal validity: the time-based freshness model.
//!
//! A monitoring dashboard reads sensors whose values are considered valid
//! for a fixed interval after a newer reading exists (the classical
//! real-time-database notion of temporal validity — cf. the deferrable
//! scheduling line of work the paper cites). Under the paper's lag-based
//! metric, one skipped reading already violates a 90% freshness
//! requirement; under time-based freshness a skipped reading is fine as
//! long as the value's age stays inside the validity window — so the same
//! shedding decisions produce far fewer Data-Stale Failures.
//!
//! ```sh
//! cargo run --release -p unit-bench --example sensor_validity
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unit_core::prelude::*;
use unit_sim::{run_simulation, SimConfig};

const SENSORS: usize = 48;
const HORIZON_S: u64 = 60_000;

fn build_trace() -> Trace {
    let mut rng = StdRng::seed_from_u64(7);
    // Sensors report every 360s; ingesting a report costs ~15s of server
    // time (aggregation, rollups). Offered update load: 48 x 15/360 = 2x.
    let updates = (0..SENSORS)
        .map(|i| UpdateSpec {
            id: UpdateStreamId(i as u32),
            item: DataId(i as u32),
            period: SimDuration::from_secs(360),
            exec_time: SimDuration::from_secs_f64(rng.gen_range(10.0..20.0)),
            first_arrival: SimTime::from_secs(rng.gen_range(0..360)),
        })
        .collect();

    // Dashboard queries: skewed over sensors, 1s each, 10-60s deadlines.
    let mut queries = Vec::new();
    let mut t = 0.0;
    let mut id = 0u64;
    while t < HORIZON_S as f64 {
        t += -(rng.gen_range(f64::MIN_POSITIVE..1.0f64)).ln() * 8.0;
        let sensor = (rng.gen::<f64>().powi(3) * SENSORS as f64) as usize;
        queries.push(QuerySpec {
            id: QueryId(id),
            arrival: SimTime::from_secs_f64(t),
            items: vec![DataId(sensor.min(SENSORS - 1) as u32)],
            exec_time: SimDuration::from_secs_f64(rng.gen_range(0.5..2.0)),
            relative_deadline: SimDuration::from_secs_f64(rng.gen_range(10.0..60.0)),
            freshness_req: 0.5, // tolerate freshness down to 0.5
            pref_class: 0,
        });
        id += 1;
    }
    Trace {
        n_items: SENSORS,
        queries,
        updates,
    }
}

fn main() {
    let trace = build_trace();
    trace.validate().expect("valid trace");
    let horizon = SimDuration::from_secs(HORIZON_S);
    println!(
        "sensor dashboard: {} sensors, {} queries, offered update load {:.1}x CPU\n",
        SENSORS,
        trace.queries.len(),
        trace.offered_update_utilization(horizon)
    );

    // Same UNIT policy, three freshness semantics.
    for (label, model) in [
        ("lag-based (paper)", FreshnessModel::Lag),
        (
            "time-based, 600s validity",
            FreshnessModel::TimeBased {
                validity: SimDuration::from_secs(600),
            },
        ),
        (
            "divergence-based, decay 0.3",
            FreshnessModel::Divergence { decay: 0.3 },
        ),
    ] {
        let report = run_simulation(
            &trace,
            UnitPolicy::new(UnitConfig::default()),
            SimConfig::new(horizon).with_freshness_model(model),
        );
        println!("{label:<28} {}", report.summary());
    }

    println!(
        "\nUnder temporal validity, skipped readings stay acceptable while the value\n\
         is young, so far fewer reads count as stale — and because the controller\n\
         reacts to the outcomes it observes, the gentler verdict also lets UNIT shed\n\
         deeper without triggering Upgrade signals (compare the applied%% columns)."
    );
}
