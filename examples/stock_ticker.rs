//! Stock ticker: the paper's §1 motivating scenario, hand-built.
//!
//! A web-database server tracks 64 stock symbols. A handful of blue chips
//! receive almost all the user queries (portfolio checks with firm
//! deadlines), while *every* symbol streams ticks (updates) at the same
//! rate. Keeping every symbol perfectly fresh starves the foreground; UNIT
//! learns to spend update CPU only on the symbols people actually watch.
//!
//! ```sh
//! cargo run --release -p unit-bench --example stock_ticker
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unit_baselines::ImuPolicy;
use unit_core::prelude::*;
use unit_sim::{run_simulation, SimConfig};

const SYMBOLS: usize = 64;
const HOT_SYMBOLS: usize = 6; // the blue chips everyone watches
const HORIZON_S: u64 = 100_000;

fn build_trace() -> Trace {
    let mut rng = StdRng::seed_from_u64(2006);
    let horizon = SimTime::from_secs(HORIZON_S);

    // Every symbol ticks every 400s; applying a tick costs 30s of server
    // time (think: recompute the moving averages the answers are built on).
    let updates: Vec<UpdateSpec> = (0..SYMBOLS)
        .map(|i| UpdateSpec {
            id: UpdateStreamId(i as u32),
            item: DataId(i as u32),
            period: SimDuration::from_secs(400),
            exec_time: SimDuration::from_secs_f64(rng.gen_range(20.0..40.0)),
            first_arrival: SimTime::from_secs(rng.gen_range(0..400)),
        })
        .collect();
    // Offered update load: 64 symbols x 30s / 400s = 4.8x the CPU. Without
    // shedding, nothing else can run.

    // Portfolio queries: 90% hit the blue chips; 2s of work; users expect
    // an answer within 5-60s and at 90% freshness.
    let mut queries = Vec::new();
    let mut t = 0.0;
    let mut id = 0u64;
    while t < HORIZON_S as f64 {
        t += -(rng.gen_range(f64::MIN_POSITIVE..1.0f64)).ln() * 12.0; // ~1 query / 12s
        let symbol = if rng.gen::<f64>() < 0.9 {
            rng.gen_range(0..HOT_SYMBOLS)
        } else {
            rng.gen_range(HOT_SYMBOLS..SYMBOLS)
        };
        queries.push(QuerySpec {
            id: QueryId(id),
            arrival: SimTime::from_secs_f64(t),
            items: vec![DataId(symbol as u32)],
            exec_time: SimDuration::from_secs_f64(rng.gen_range(1.0..3.0)),
            relative_deadline: SimDuration::from_secs_f64(rng.gen_range(5.0..60.0)),
            freshness_req: 0.9,
            pref_class: 0,
        });
        id += 1;
    }
    let _ = horizon;

    Trace {
        n_items: SYMBOLS,
        queries,
        updates,
    }
}

fn main() {
    let trace = build_trace();
    trace.validate().expect("trace must be valid");
    let horizon = SimDuration::from_secs(HORIZON_S);
    println!(
        "stock ticker: {} symbols ({} hot), {} queries, offered update load {:.1}x CPU\n",
        SYMBOLS,
        HOT_SYMBOLS,
        trace.queries.len(),
        trace.offered_update_utilization(horizon)
    );

    // Naive strategy: apply every tick immediately.
    let imu = run_simulation(&trace, ImuPolicy::new(), SimConfig::new(horizon));
    println!("{}", imu.summary());

    // UNIT: shed ticks for unwatched symbols, keep the blue chips fresh.
    let unit = run_simulation(
        &trace,
        UnitPolicy::new(UnitConfig::default()),
        SimConfig::new(horizon),
    );
    println!("{}", unit.summary());

    let hot_kept: u64 = (0..HOT_SYMBOLS).map(|i| unit.updates_applied[i]).sum();
    let hot_arrived: u64 = (0..HOT_SYMBOLS).map(|i| unit.versions_arrived[i]).sum();
    let cold_kept: u64 = (HOT_SYMBOLS..SYMBOLS)
        .map(|i| unit.updates_applied[i])
        .sum();
    let cold_arrived: u64 = (HOT_SYMBOLS..SYMBOLS)
        .map(|i| unit.versions_arrived[i])
        .sum();
    println!(
        "\nUNIT kept {:.0}% of blue-chip ticks but only {:.0}% of unwatched-symbol ticks;",
        100.0 * hot_kept as f64 / hot_arrived.max(1) as f64,
        100.0 * cold_kept as f64 / cold_arrived.max(1) as f64,
    );
    println!(
        "success ratio {:.2} vs {:.2} under immediate updates.",
        unit.success_ratio(),
        imu.success_ratio()
    );
    assert!(
        unit.success_ratio() > imu.success_ratio(),
        "UNIT should beat IMU on this workload"
    );
}
