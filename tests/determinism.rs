//! Reproducibility: a run is a pure function of `(trace, policy, config)`.
//! These tests pin that property across the whole stack — generators,
//! policies with internal RNGs, and the event-driven server.

use unit_bench::{default_workload_plan, run_policy, PolicyKind};
use unit_core::config::UnitConfig;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_sim::{run_simulation, SimConfig};
use unit_workload::{
    generate_queries, QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig,
    UpdateVolume,
};

#[test]
fn workload_generation_is_bit_reproducible() {
    let qcfg = QueryTraceConfig {
        n_items: 128,
        n_queries: 1_000,
        ..QueryTraceConfig::default()
    };
    let a = generate_queries(&qcfg);
    let b = generate_queries(&qcfg);
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.item_weights, b.item_weights);

    let ucfg =
        UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::PositiveCorrelation)
            .with_total(500);
    let ta = TraceBundle::generate(&qcfg, &ucfg);
    let tb = TraceBundle::generate(&qcfg, &ucfg);
    assert_eq!(ta.trace, tb.trace);
    assert_eq!(ta.achieved_rho, tb.achieved_rho);
}

#[test]
fn full_runs_are_bit_reproducible_for_every_policy() {
    let plan = default_workload_plan(64);
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    for kind in PolicyKind::ALL {
        let a = run_policy(&plan, &bundle, kind, UsmWeights::low_high_cfm());
        let b = run_policy(&plan, &bundle, kind, UsmWeights::low_high_cfm());
        assert_eq!(a.report.counts, b.report.counts, "{}", kind.name());
        assert_eq!(a.report.cpu_busy, b.report.cpu_busy, "{}", kind.name());
        assert_eq!(
            a.report.updates_applied,
            b.report.updates_applied,
            "{}",
            kind.name()
        );
        assert_eq!(a.report.signals, b.report.signals, "{}", kind.name());
    }
}

#[test]
fn unit_seed_changes_the_lottery_but_not_the_accounting_invariants() {
    // Scale 8 keeps several versions per item, so the lottery genuinely
    // decides which are shed (at tiny scales every version is an item's
    // first and is always applied, regardless of seed).
    let plan = default_workload_plan(8);
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    let cfg = SimConfig::new(bundle.horizon);

    let a = run_simulation(
        &bundle.trace,
        UnitPolicy::new(UnitConfig::default().with_seed(1)),
        cfg,
    );
    let b = run_simulation(
        &bundle.trace,
        UnitPolicy::new(UnitConfig::default().with_seed(2)),
        cfg,
    );
    // Different lottery draws -> different per-item shedding...
    assert_ne!(a.updates_applied, b.updates_applied);
    // ...but the same conservation laws.
    assert_eq!(a.counts.total(), b.counts.total());
    // And comparable aggregate behaviour (same controller, same workload).
    assert!(
        (a.success_ratio() - b.success_ratio()).abs() < 0.05,
        "seeds should not change the macroscopic outcome much: {} vs {}",
        a.success_ratio(),
        b.success_ratio()
    );
}

#[test]
fn trace_serialization_round_trips_through_json() {
    let plan = default_workload_plan(128);
    let bundle = plan.bundle(UpdateVolume::Low, UpdateDistribution::NegativeCorrelation);
    let json = bundle.to_json().expect("serialize");
    let back = TraceBundle::from_json(&json).expect("deserialize");
    assert_eq!(bundle.trace, back.trace);

    // And the deserialized trace simulates identically.
    let cfg = SimConfig::new(bundle.horizon);
    let a = run_simulation(&bundle.trace, UnitPolicy::new(UnitConfig::default()), cfg);
    let b = run_simulation(&back.trace, UnitPolicy::new(UnitConfig::default()), cfg);
    assert_eq!(a.counts, b.counts);
}
