//! Cross-crate integration tests: generated workloads through the full
//! simulator under every policy, checking the global invariants that must
//! hold regardless of calibration.

use unit_bench::{default_workload_plan, run_policy, ExperimentPlan, PolicyKind};
use unit_core::usm::UsmWeights;
use unit_workload::{TraceBundle, UpdateDistribution, UpdateVolume};

/// A small but non-trivial plan: ~3.4k queries over ~120k simulated seconds.
fn plan() -> ExperimentPlan {
    default_workload_plan(32)
}

fn bundle(volume: UpdateVolume, dist: UpdateDistribution) -> TraceBundle {
    plan().bundle(volume, dist)
}

#[test]
fn every_policy_accounts_for_every_query() {
    let b = bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    for kind in PolicyKind::ALL {
        let out = run_policy(&plan(), &b, kind, UsmWeights::naive());
        let c = &out.report.counts;
        assert_eq!(
            c.total() as usize,
            b.trace.queries.len(),
            "{}: conservation of outcomes",
            kind.name()
        );
        let ratio_sum: f64 = out.report.ratios().iter().sum();
        assert!((ratio_sum - 1.0).abs() < 1e-9, "{}", kind.name());
    }
}

#[test]
fn usm_stays_in_its_theoretical_range() {
    let b = bundle(UpdateVolume::High, UpdateDistribution::Uniform);
    for weights in [
        UsmWeights::naive(),
        UsmWeights::low_high_cfm(),
        UsmWeights::high_high_cr(),
    ] {
        for kind in PolicyKind::ALL {
            let out = run_policy(&plan(), &b, kind, weights);
            let usm = out.report.counts.average_usm(&weights);
            let (lo, hi) = weights.range();
            assert!(
                usm >= lo - 1e-9 && usm <= hi + 1e-9,
                "{} USM {usm} outside [{lo}, {hi}]",
                kind.name()
            );
        }
    }
}

#[test]
fn imu_and_odu_never_reject_and_never_go_stale() {
    let b = bundle(UpdateVolume::Med, UpdateDistribution::PositiveCorrelation);
    for kind in [PolicyKind::Imu, PolicyKind::Odu] {
        let out = run_policy(&plan(), &b, kind, UsmWeights::naive());
        assert_eq!(out.report.counts.rejected, 0, "{} rejects", kind.name());
        assert_eq!(
            out.report.counts.data_stale,
            0,
            "{} must deliver 100% freshness",
            kind.name()
        );
    }
}

#[test]
fn imu_applies_every_version() {
    let b = bundle(UpdateVolume::Low, UpdateDistribution::Uniform);
    let out = run_policy(&plan(), &b, PolicyKind::Imu, UsmWeights::naive());
    assert!(
        (out.report.applied_ratio() - 1.0).abs() < 1e-9,
        "IMU applied {}",
        out.report.applied_ratio()
    );
}

#[test]
fn odu_applies_only_on_demand() {
    let b = bundle(UpdateVolume::Med, UpdateDistribution::NegativeCorrelation);
    let out = run_policy(&plan(), &b, PolicyKind::Odu, UsmWeights::naive());
    // Negatively correlated updates mostly hit unqueried items: the
    // on-demand policy must apply far less than everything.
    assert!(
        out.report.applied_ratio() < 0.6,
        "ODU applied {}",
        out.report.applied_ratio()
    );
    let applied: u64 = out.report.updates_applied.iter().sum();
    assert_eq!(
        applied, out.report.demand_refreshes,
        "every ODU application is an on-demand refresh"
    );
}

#[test]
fn unit_sheds_updates_under_overload_but_not_at_low_volume() {
    // Scale 8 keeps multiple versions per item so shedding is observable.
    let p = default_workload_plan(8);
    let low = run_policy(
        &p,
        &p.bundle(UpdateVolume::Low, UpdateDistribution::Uniform),
        PolicyKind::Unit,
        UsmWeights::naive(),
    );
    let high = run_policy(
        &p,
        &p.bundle(UpdateVolume::High, UpdateDistribution::Uniform),
        PolicyKind::Unit,
        UsmWeights::naive(),
    );
    assert!(
        high.report.applied_ratio() < low.report.applied_ratio(),
        "more offered update load must mean relatively deeper shedding \
         (low {:.2}, high {:.2})",
        low.report.applied_ratio(),
        high.report.applied_ratio()
    );
    assert!(
        high.report.utilization() < 1.05,
        "shedding must keep the CPU from drowning"
    );
}

#[test]
fn cpu_accounting_is_sane_for_all_policies() {
    let b = bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    for kind in PolicyKind::ALL {
        let out = run_policy(&plan(), &b, kind, UsmWeights::naive());
        let r = &out.report;
        assert!(
            r.cpu_busy.as_secs_f64() <= r.end_time.as_secs_f64() + 1e-6,
            "{}: busy {} > elapsed {}",
            kind.name(),
            r.cpu_busy,
            r.end_time
        );
        assert!(
            r.end_time.0 >= r.horizon.0,
            "{}: run ended early",
            kind.name()
        );
    }
}

#[test]
fn weight_insensitive_baselines_produce_identical_outcomes_under_any_weights() {
    let b = bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    for kind in [PolicyKind::Imu, PolicyKind::Odu, PolicyKind::Qmf] {
        let naive = run_policy(&plan(), &b, kind, UsmWeights::naive());
        let priced = run_policy(&plan(), &b, kind, UsmWeights::high_high_cfm());
        assert_eq!(
            naive.report.counts,
            priced.report.counts,
            "{} outcomes must not depend on the weights",
            kind.name()
        );
    }
}

#[test]
fn unit_reacts_to_weights() {
    let b = bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    let a = run_policy(&plan(), &b, PolicyKind::Unit, UsmWeights::high_high_cr());
    let c = run_policy(&plan(), &b, PolicyKind::Unit, UsmWeights::high_high_cfm());
    assert_ne!(
        a.report.counts, c.report.counts,
        "UNIT's controller must reshape outcomes under different preferences"
    );
    // The outcome mix should shift away from the expensive class.
    assert!(
        a.report.ratios()[1] <= c.report.ratios()[1] + 1e-9,
        "high C_r should not increase the rejection share \
         (got {:.4} vs {:.4})",
        a.report.ratios()[1],
        c.report.ratios()[1]
    );
}

#[test]
fn trace_bundles_report_their_offered_load() {
    let b = bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    assert!(
        (b.update_utilization - 0.75).abs() < 0.15,
        "{}",
        b.update_utilization
    );
    assert!(
        (b.query_utilization - 0.029).abs() < 0.01,
        "{}",
        b.query_utilization
    );
    b.trace.validate().expect("bundle validates");
}

#[test]
fn correlated_bundles_hit_their_targets() {
    // Correlation targets need enough updates per item for the integer
    // apportionment not to quantize the signal away; use scale 8.
    let p = default_workload_plan(8);
    let pos = p.bundle(UpdateVolume::Med, UpdateDistribution::PositiveCorrelation);
    assert!(
        (pos.achieved_rho - 0.8).abs() < 0.1,
        "pos rho {}",
        pos.achieved_rho
    );
    let neg = p.bundle(UpdateVolume::Med, UpdateDistribution::NegativeCorrelation);
    // Integer counts of ~3.7 updates/item quantize the anti-correlation
    // signal at this scale (full scale reaches ≈ -0.76, see table1); the
    // small-scale check is directional.
    assert!(neg.achieved_rho < -0.2, "neg rho {}", neg.achieved_rho);
}

#[test]
fn deferrable_updates_sit_between_odu_and_unit() {
    // DEF (related work, RTSS'05) refreshes ahead of predicted accesses:
    // better than waiting for the reader (ODU), weaker than UNIT's
    // feedback-controlled shedding + admission. Scale 4 keeps per-item
    // version counts meaningful.
    use unit_baselines::DeferrablePolicy;
    use unit_sim::run_simulation;

    let p = default_workload_plan(4);
    let b = p.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    let def = run_simulation(
        &b.trace,
        DeferrablePolicy::default(),
        p.sim_config(UsmWeights::naive()),
    );
    let odu = run_policy(&p, &b, PolicyKind::Odu, UsmWeights::naive());
    let unit = run_policy(&p, &b, PolicyKind::Unit, UsmWeights::naive());
    assert!(
        def.success_ratio() > odu.report.success_ratio(),
        "DEF {:.3} should beat ODU {:.3}",
        def.success_ratio(),
        odu.report.success_ratio()
    );
    assert!(
        unit.report.success_ratio() > def.success_ratio(),
        "UNIT {:.3} should beat DEF {:.3}",
        unit.report.success_ratio(),
        def.success_ratio()
    );
    // With the demand fallback on, DEF never delivers stale data.
    assert_eq!(def.counts.data_stale, 0);
}
