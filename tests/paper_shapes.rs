//! The paper's qualitative result shapes, asserted as tests.
//!
//! These encode what EXPERIMENTS.md reports: who wins, who collapses, and
//! how the outcome mix responds to preferences. Runs use a 1/2-scale
//! workload — large enough to keep per-item version counts (and therefore
//! the update-economics) faithful to the paper's setup.

use unit_bench::{default_workload_plan, run_matrix, run_policy, ExperimentPlan, PolicyKind};
use unit_core::usm::UsmWeights;
use unit_workload::{UpdateDistribution, UpdateVolume};

fn plan() -> ExperimentPlan {
    default_workload_plan(2)
}

/// Fig. 4: IMU collapses once updates saturate the CPU.
#[test]
fn imu_collapses_at_high_update_volume() {
    let p = plan();
    let med = run_policy(
        &p,
        &p.bundle(UpdateVolume::Med, UpdateDistribution::Uniform),
        PolicyKind::Imu,
        UsmWeights::naive(),
    );
    let high = run_policy(
        &p,
        &p.bundle(UpdateVolume::High, UpdateDistribution::Uniform),
        PolicyKind::Imu,
        UsmWeights::naive(),
    );
    assert!(
        med.report.success_ratio() < 0.55,
        "med {:.3}",
        med.report.success_ratio()
    );
    assert!(
        high.report.success_ratio() < 0.02,
        "IMU at 150% update load must produce near-zero USM, got {:.3}",
        high.report.success_ratio()
    );
}

/// Fig. 4: UNIT beats IMU and ODU on every trace, and never loses badly to
/// anyone.
#[test]
fn unit_dominates_imu_and_odu_across_the_matrix() {
    let p = plan();
    for dist in [
        UpdateDistribution::Uniform,
        UpdateDistribution::PositiveCorrelation,
        UpdateDistribution::NegativeCorrelation,
    ] {
        let bundles: Vec<_> = UpdateVolume::ALL
            .iter()
            .map(|&v| p.bundle(v, dist))
            .collect();
        let out = run_matrix(&p, &bundles, &PolicyKind::ALL, UsmWeights::naive());
        for (bi, bundle) in bundles.iter().enumerate() {
            let s = |pi: usize| out[bi * 4 + pi].report.success_ratio();
            let (imu, odu, qmf, unit) = (s(0), s(1), s(2), s(3));
            assert!(
                unit >= imu - 1e-9,
                "{}: UNIT {unit:.3} < IMU {imu:.3}",
                bundle.name
            );
            assert!(
                unit >= odu - 0.01,
                "{}: UNIT {unit:.3} < ODU {odu:.3}",
                bundle.name
            );
            assert!(
                unit >= qmf - 0.03,
                "{}: UNIT {unit:.3} must stay within a whisker of QMF {qmf:.3}",
                bundle.name
            );
        }
    }
}

/// Fig. 3: UNIT's surviving updates follow the query distribution — hot
/// items keep almost everything, the cold half keeps almost nothing.
#[test]
fn unit_shedding_follows_the_query_distribution() {
    let p = plan();
    let bundle = p.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    let out = run_policy(&p, &bundle, PolicyKind::Unit, UsmWeights::naive());
    let r = &out.report;

    let mut order: Vec<usize> = (0..bundle.trace.n_items).collect();
    order.sort_by(|&a, &b| r.query_accesses[b].cmp(&r.query_accesses[a]));
    let keep = |items: &[usize]| -> f64 {
        let a: u64 = items.iter().map(|&i| r.updates_applied[i]).sum();
        let v: u64 = items.iter().map(|&i| r.versions_arrived[i]).sum();
        a as f64 / v.max(1) as f64
    };
    let hot = keep(&order[..bundle.trace.n_items / 10]);
    let cold = keep(&order[bundle.trace.n_items / 2..]);
    assert!(hot > 0.75, "hot items keep {hot:.2} of their updates");
    assert!(cold < 0.30, "cold half keeps {cold:.2} of its updates");
    assert!(
        hot > 3.0 * cold,
        "hot/cold keep contrast: {hot:.2} vs {cold:.2}"
    );
}

/// Fig. 3(c): under negative correlation most update mass is shed.
#[test]
fn unit_sheds_most_updates_under_negative_correlation() {
    let p = plan();
    let bundle = p.bundle(UpdateVolume::Med, UpdateDistribution::NegativeCorrelation);
    let out = run_policy(&p, &bundle, PolicyKind::Unit, UsmWeights::naive());
    assert!(
        out.report.applied_ratio() < 0.40,
        "UNIT should shed the majority of negatively-correlated updates, applied {:.2}",
        out.report.applied_ratio()
    );
}

/// Fig. 5: weight sensitivity — QMF is punished by high C_r, IMU/ODU by
/// high C_fm, and UNIT stays the most stable.
#[test]
fn weight_sensitivity_matches_the_paper() {
    let p = plan();
    let bundle = p.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);

    let baselines: Vec<_> = [PolicyKind::Imu, PolicyKind::Odu, PolicyKind::Qmf]
        .iter()
        .map(|&k| run_policy(&p, &bundle, k, UsmWeights::naive()))
        .collect();

    // High C_r punishes QMF's aggressive rejections.
    let w = UsmWeights::high_high_cr();
    let qmf = baselines[2].report.usm_under(&w);
    let unit = run_policy(&p, &bundle, PolicyKind::Unit, w);
    assert!(
        unit.report.average_usm() > qmf,
        "UNIT {:.3} must beat QMF {qmf:.3} under high C_r",
        unit.report.average_usm()
    );

    // High C_fm punishes IMU and ODU (big deadline-miss shares).
    let w = UsmWeights::high_high_cfm();
    let imu = baselines[0].report.usm_under(&w);
    let odu = baselines[1].report.usm_under(&w);
    let unit = run_policy(&p, &bundle, PolicyKind::Unit, w);
    assert!(
        unit.report.average_usm() > imu + 1.0,
        "IMU must crater under high C_fm"
    );
    assert!(
        unit.report.average_usm() > odu + 0.5,
        "ODU must suffer under high C_fm"
    );
}

/// Fig. 6: UNIT reshapes its outcome mix toward the cheap failure class.
#[test]
fn unit_outcome_mix_tracks_the_weights() {
    let p = plan();
    let bundle = p.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);

    let high_cr = run_policy(&p, &bundle, PolicyKind::Unit, UsmWeights::low_high_cr());
    let high_cfm = run_policy(&p, &bundle, PolicyKind::Unit, UsmWeights::low_high_cfm());

    // Pricier rejections -> relatively fewer rejections than under pricier
    // deadline misses, and vice versa.
    let rr_cr = high_cr.report.ratios()[1];
    let rr_cfm = high_cfm.report.ratios()[1];
    let rfm_cr = high_cr.report.ratios()[2];
    let rfm_cfm = high_cfm.report.ratios()[2];
    assert!(
        rr_cr <= rr_cfm + 1e-9,
        "rejection share must not grow when rejections get pricier: {rr_cr:.4} vs {rr_cfm:.4}"
    );
    assert!(
        rfm_cfm <= rfm_cr + 1e-9,
        "DMF share must not grow when misses get pricier: {rfm_cfm:.4} vs {rfm_cr:.4}"
    );
}
