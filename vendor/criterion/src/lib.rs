//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple median-of-samples
//! wall-clock timer instead of criterion's full statistical engine.
//! Results print one line per benchmark; there is no HTML report and
//! no regression tracking.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id carrying only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Conversions accepted where criterion takes `impl Into<BenchmarkId>`.
impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { text: s }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Measure `routine` repeatedly; the per-iteration median is reported.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~5 ms.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
        self.samples.sort_unstable();
    }

    fn median(&self) -> Duration {
        self.samples
            .get(self.samples.len() / 2)
            .copied()
            .unwrap_or_default()
    }
}

fn run_one(full_name: &str, sample_count: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_count: sample_count.max(3),
    };
    f(&mut b);
    println!("{full_name:<50} {:>12.3?}/iter", b.median());
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark (criterion default: 100;
    /// this stand-in defaults to 10 to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.min(25);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_count,
            f,
        );
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_count,
            |b| f(b, input),
        );
        self
    }

    /// End the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: 10,
            _parent: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, 10, f);
        self
    }

    /// Accept (and ignore) CLI arguments, like criterion's builder.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::new("with", 4), &4u32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }
}
