//! Offline stand-in for `proptest`.
//!
//! Random-input property testing over the strategy combinators this
//! workspace uses: numeric ranges, `any::<T>()`, tuples, `Just`,
//! `prop_oneof!`, `prop::collection::vec`, and `.prop_map`. Cases are
//! generated from a seed derived deterministically from the test name,
//! so failures reproduce across runs. Unlike the real crate there is
//! **no shrinking** — a failing case is reported at full size — and no
//! persisted failure regressions; both are test-ergonomics features,
//! not correctness ones.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Runner configuration (the subset this workspace touches).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with explanation.
        Fail(String),
        /// Input rejected by a precondition.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// Build a rejection.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// RNG handed to strategies; deterministic per (test name, case).
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG for one case of one named test.
        pub fn for_case(test_seed: u64, case: u32) -> TestRng {
            TestRng {
                inner: StdRng::seed_from_u64(
                    test_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Drives one property: generates inputs and evaluates the body.
    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        /// Runner for the named test.
        pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRunner { config, seed: h }
        }

        /// Run the property over `config.cases` generated inputs,
        /// panicking (like `#[test]` expects) on the first failure.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
        where
            S: crate::strategy::Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            let mut rejected = 0u32;
            let mut case = 0u32;
            let mut attempts = 0u32;
            while case < self.config.cases {
                let mut rng = TestRng::for_case(self.seed, attempts);
                attempts += 1;
                let value = strategy.generate(&mut rng);
                match test(value) {
                    Ok(()) => case += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > self.config.cases.saturating_mul(16) {
                            panic!("proptest: too many rejected inputs ({rejected})");
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest property failed on case {case} (seed {:#x}): {msg}",
                            self.seed
                        );
                    }
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `.prop_map` combinator.
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Union over the given alternatives.
        pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!alternatives.is_empty(), "prop_oneof! needs at least one arm");
            Union(alternatives)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_range(0..self.0.len());
            self.0[idx].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rand::RngCore::next_u64(rng) as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rand::RngCore::next_u64(rng) & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen::<f64>()
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec`s with random length.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Vector of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced combinator modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Internal muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            let strategy = ($($strat,)+);
            runner.run(&strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Assert inside a property body; failure reports the generating case
/// instead of unwinding with a bare panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Reject the current input (counts as neither pass nor failure); the
/// runner draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            x in 0u64..100,
            v in prop::collection::vec(0.0f64..1.0, 1..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(x < 100);
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&f| (0.0..1.0).contains(&f)));
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn oneof_and_map(
            tag in prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|x| x)],
        ) {
            prop_assert!(tag == 1 || tag == 2 || (10..20).contains(&tag));
        }
    }

    #[test]
    #[should_panic(expected = "proptest property failed")]
    fn failures_panic() {
        let mut runner =
            TestRunner::new(ProptestConfig::with_cases(4), "failures_panic");
        runner.run(&(0u64..10,), |(x,)| {
            prop_assert!(x > 100, "x was {x}");
            Ok(())
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(16), "det");
            runner.run(&(0u64..1000,), |(x,)| {
                out.push(x);
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
