//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the rand 0.8 API it actually
//! uses: `StdRng` (here xoshiro256++ seeded by SplitMix64 instead of
//! ChaCha12 — a different but high-quality deterministic stream),
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}` over the
//! integer/float range forms that appear in the workspace, and
//! `seq::SliceRandom::shuffle`.
//!
//! Determinism is the property the simulator relies on — every figure
//! must reproduce bit-for-bit from a seed — and that holds here exactly
//! as it does with the real crate: same seed, same stream, every run.

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from their "natural" distribution via
/// [`Rng::gen`] (the rand `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges that can produce one uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ with SplitMix64
    /// seed expansion. Deterministic, 2^256 − 1 period, passes BigCrush.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing. Restoring via
        /// [`StdRng::from_state`] resumes the stream exactly where it was.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`SliceRandom`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
            let g: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&g));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let i: usize = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let f: f64 = rng.gen_range(0.0..1.0);
            lo_seen |= f < 0.1;
            hi_seen |= f > 0.9;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
