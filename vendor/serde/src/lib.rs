//! Offline stand-in for `serde`.
//!
//! The build environment cannot fetch crates.io, so the workspace
//! vendors the slice of serde it uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs/enums with the `transparent`,
//! `default`, and `default = "path"` attributes, consumed exclusively
//! through `serde_json`. Instead of serde's visitor machinery, both
//! traits go through an owned [`Value`] tree — ample for config and
//! trace snapshots, which are nowhere near any hot path.
//!
//! Numbers keep their integer-ness ([`Number::U`]/[`Number::I`] vs
//! [`Number::F`]) so that `u64` seeds and microsecond tick counts
//! round-trip exactly instead of passing through an f64.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped numeric value that preserves integer exactness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as an `f64` (lossy above 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(u) => Some(u),
            Number::I(i) if i >= 0 => Some(i as u64),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(u) if u <= i64::MAX as u64 => Some(u as i64),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) => {
                Some(f as i64)
            }
            _ => None,
        }
    }
}

/// Intermediate self-describing tree both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Array elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a field in an object by key (first match).
pub fn field<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Error for a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Error {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        };
        Error(format!("expected {what}, found {kind}"))
    }

    /// Error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    /// Error for a missing struct field.
    pub fn missing_field(name: &str) -> Error {
        Error(format!("missing field `{name}`"))
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can render itself into the [`Value`] tree.
pub trait Serialize {
    /// Build the tree representation.
    fn to_value(&self) -> Value;
}

/// A value reconstructable from the [`Value`] tree.
///
/// The lifetime mirrors serde's signature so `for<'de> Deserialize<'de>`
/// bounds written against the real crate keep compiling; this stand-in
/// only ever deserializes from owned trees.
pub trait Deserialize<'de>: Sized {
    /// Reconstruct from the tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", value)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Num(n) => n.as_u64(),
                    _ => None,
                };
                n.and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::expected(stringify!($t), value))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Num(Number::U(v as u64))
                } else {
                    Value::Num(Number::I(v))
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Num(n) => n.as_i64(),
                    _ => None,
                };
                n.and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::expected(stringify!($t), value))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::F(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(n) => Ok(n.as_f64() as $t),
                    _ => Err(Error::expected(stringify!($t), value)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", value)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", value)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Copy + Default, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_seq()
            .ok_or_else(|| Error::expected("array", value))?;
        if s.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                s.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, v) in out.iter_mut().zip(s) {
            *slot = T::from_value(v)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let s = value.as_seq().ok_or_else(|| Error::expected("array", value))?;
                if s.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of length {}, found {}", $len, s.len()
                    )));
                }
                Ok(($($name::from_value(&s[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2, 3].to_value()),
            Ok(vec![1, 2, 3])
        );
    }

    #[test]
    fn big_u64_is_exact() {
        let big = u64::MAX - 1;
        assert_eq!(u64::from_value(&big.to_value()), Ok(big));
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::Num(Number::U(1))).is_err());
        assert!(u8::from_value(&300u64.to_value()).is_err());
    }
}
