//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the vendored `serde` crate's Value-tree model, for the shapes this
//! workspace uses: named/tuple/unit structs and enums whose variants
//! are unit, newtype, tuple, or struct-like; container attribute
//! `#[serde(transparent)]`; field attributes `#[serde(default)]` and
//! `#[serde(default = "path")]`. No dependency on `syn`/`quote` — the
//! item is parsed directly from the token stream and the impls are
//! emitted as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field deserializes.
#[derive(Clone)]
enum FieldDefault {
    /// Hard error (serde's default behaviour).
    Required,
    /// `Default::default()` — `#[serde(default)]`.
    DefaultTrait,
    /// `path()` — `#[serde(default = "path")]`.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum Payload {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    payload: Payload,
}

enum Kind {
    Struct(Payload),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected identifier, found {other:?}"),
        }
    }

    /// Consume leading attributes, returning (transparent, field_default)
    /// extracted from any `#[serde(...)]` among them.
    fn eat_attrs(&mut self) -> (bool, FieldDefault) {
        let mut transparent = false;
        let mut default = FieldDefault::Required;
        while self.eat_punct('#') {
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde derive: malformed attribute, found {other:?}"),
            };
            let mut inner = Cursor::new(group.stream());
            if !inner.eat_ident("serde") {
                continue;
            }
            let args = match inner.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                other => panic!("serde derive: malformed serde attribute: {other:?}"),
            };
            let mut a = Cursor::new(args.stream());
            while let Some(tok) = a.next() {
                let word = match tok {
                    TokenTree::Ident(i) => i.to_string(),
                    TokenTree::Punct(p) if p.as_char() == ',' => continue,
                    other => panic!("serde derive: unsupported serde attribute token {other:?}"),
                };
                match word.as_str() {
                    "transparent" => transparent = true,
                    "default" => {
                        if a.eat_punct('=') {
                            let lit = match a.next() {
                                Some(TokenTree::Literal(l)) => l.to_string(),
                                other => {
                                    panic!("serde derive: expected path literal, got {other:?}")
                                }
                            };
                            default = FieldDefault::Path(lit.trim_matches('"').to_string());
                        } else {
                            default = FieldDefault::DefaultTrait;
                        }
                    }
                    other => panic!("serde derive: unsupported serde attribute `{other}`"),
                }
            }
        }
        (transparent, default)
    }

    /// Consume a visibility qualifier if present.
    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip a type expression: everything until a `,` at angle-depth 0.
    fn skip_type(&mut self) {
        let mut depth = 0i32;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let (_, default) = c.eat_attrs();
        c.eat_visibility();
        let name = c.expect_ident();
        assert!(c.eat_punct(':'), "serde derive: expected `:` after field");
        c.skip_type();
        c.eat_punct(',');
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut n = 0;
    while c.peek().is_some() {
        c.eat_attrs();
        c.eat_visibility();
        c.skip_type();
        c.eat_punct(',');
        n += 1;
    }
    n
}

fn parse_input(input: TokenStream) -> Input {
    let mut c = Cursor::new(input);
    let (transparent, _) = c.eat_attrs();
    c.eat_visibility();
    let kind_word = c.expect_ident();
    let name = c.expect_ident();
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stand-in: generic types are not supported");
    }
    match kind_word.as_str() {
        "struct" => {
            let payload = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Payload::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Payload::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Payload::Unit,
                other => panic!("serde derive: unexpected struct body {other:?}"),
            };
            Input {
                name,
                transparent,
                kind: Kind::Struct(payload),
            }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde derive: expected enum body, found {other:?}"),
            };
            let mut vc = Cursor::new(body.stream());
            let mut variants = Vec::new();
            while vc.peek().is_some() {
                vc.eat_attrs();
                let vname = vc.expect_ident();
                let payload = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        vc.pos += 1;
                        Payload::Named(fields)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        vc.pos += 1;
                        Payload::Tuple(n)
                    }
                    _ => Payload::Unit,
                };
                if vc.eat_punct('=') {
                    // Discriminant expression: skip to the trailing comma.
                    while let Some(tok) = vc.peek() {
                        if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                            break;
                        }
                        vc.pos += 1;
                    }
                }
                vc.eat_punct(',');
                variants.push(Variant {
                    name: vname,
                    payload,
                });
            }
            Input {
                name,
                transparent,
                kind: Kind::Enum(variants),
            }
        }
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

fn named_fields_to_map(fields: &[Field], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value(&{prefix}{n}))",
                n = f.name
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn named_fields_from_map(fields: &[Field], map_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let missing = match &f.default {
                FieldDefault::Required => format!(
                    "return ::core::result::Result::Err(::serde::Error::missing_field(\"{}\"))",
                    f.name
                ),
                FieldDefault::DefaultTrait => "::core::default::Default::default()".to_string(),
                FieldDefault::Path(p) => format!("{p}()"),
            };
            format!(
                "{n}: match ::serde::field({m}, \"{n}\") {{ \
                   ::core::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?, \
                   ::core::option::Option::None => {missing}, \
                 }},",
                n = f.name,
                m = map_var
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Payload::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Payload::Named(fields)) => {
            if input.transparent {
                assert_eq!(fields.len(), 1, "transparent needs exactly one field");
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            } else {
                named_fields_to_map(fields, "self.")
            }
        }
        Kind::Struct(Payload::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Payload::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.payload {
                        Payload::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Payload::Named(fields) => {
                            let binds: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let inner = named_fields_to_map(fields, "");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), {inner})]),",
                                binds = binds.join(", ")
                            )
                        }
                        Payload::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(x0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), {inner})]),",
                                binds = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Payload::Unit) => format!(
            "match value {{ \
               ::serde::Value::Null => ::core::result::Result::Ok({name}), \
               other => ::core::result::Result::Err(::serde::Error::expected(\"null\", other)), \
             }}"
        ),
        Kind::Struct(Payload::Named(fields)) => {
            if input.transparent {
                assert_eq!(fields.len(), 1, "transparent needs exactly one field");
                format!(
                    "::core::result::Result::Ok({name} {{ {f}: ::serde::Deserialize::from_value(value)? }})",
                    f = fields[0].name
                )
            } else {
                let inits = named_fields_from_map(fields, "m");
                format!(
                    "let m = value.as_map().ok_or_else(|| ::serde::Error::expected(\"object\", value))?;\n\
                     ::core::result::Result::Ok({name} {{\n{inits}\n}})"
                )
            }
        }
        Kind::Struct(Payload::Tuple(1)) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
        ),
        Kind::Struct(Payload::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                .collect();
            format!(
                "let s = value.as_seq().ok_or_else(|| ::serde::Error::expected(\"array\", value))?;\n\
                 if s.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::custom(\"wrong tuple length\")); }}\n\
                 ::core::result::Result::Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.payload, Payload::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.payload, Payload::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.payload {
                        Payload::Unit => unreachable!(),
                        Payload::Named(fields) => {
                            let inits = named_fields_from_map(fields, "fm");
                            format!(
                                "\"{vn}\" => {{ \
                                   let fm = v.as_map().ok_or_else(|| ::serde::Error::expected(\"object\", v))?; \
                                   ::core::result::Result::Ok({name}::{vn} {{ {inits} }}) \
                                 }}"
                            )
                        }
                        Payload::Tuple(1) => format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(v)?)),"
                        ),
                        Payload::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{ \
                                   let s = v.as_seq().ok_or_else(|| ::serde::Error::expected(\"array\", v))?; \
                                   if s.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::custom(\"wrong tuple length\")); }} \
                                   ::core::result::Result::Ok({name}::{vn}({elems})) \
                                 }}",
                                elems = elems.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match value {{\n\
                   ::serde::Value::Str(s) => match s.as_str() {{\n{units}\n\
                     other => ::core::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                   }},\n\
                   ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                     let (k, v) = &m[0];\n\
                     match k.as_str() {{\n{payloads}\n\
                       other => ::core::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }}\n\
                   }},\n\
                   other => ::core::result::Result::Err(::serde::Error::expected(\"enum representation\", other)),\n\
                 }}",
                units = unit_arms.join("\n"),
                payloads = payload_arms.join("\n")
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
           fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

/// Derive the vendored serde's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

/// Derive the vendored serde's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}
