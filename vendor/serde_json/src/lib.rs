//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored serde's [`Value`] tree to JSON text and
//! parses JSON text back into it. Covers the API this workspace calls:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and the
//! [`Result`]/[`Error`] pair. Integers round-trip exactly (no f64
//! detour); floats print via Rust's shortest-round-trip formatting.

use serde::{Deserialize, Number, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Alias matching `serde_json::Result`.
pub type Result<T> = core::result::Result<T, Error>;

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value).map_err(|e| Error::new(e.0))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_seq(items, indent, depth, out),
        Value::Map(entries) => write_map(entries, indent, depth, out),
    }
}

fn write_number(n: Number, out: &mut String) {
    use core::fmt::Write;
    match n {
        Number::U(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F(f) if f.is_finite() => {
            // `{:?}` is shortest-round-trip and always keeps a `.0` or
            // exponent so the value re-parses as a float.
            let _ = write!(out, "{f:?}");
        }
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    use core::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(core::iter::repeat(' ').take(w * depth));
    }
}

fn write_seq(items: &[Value], indent: Option<usize>, depth: usize, out: &mut String) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        write_value(item, indent, depth + 1, out);
    }
    newline_indent(indent, depth, out);
    out.push(']');
}

fn write_map(entries: &[(String, Value)], indent: Option<usize>, depth: usize, out: &mut String) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        write_string(k, out);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(v, indent, depth + 1, out);
    }
    newline_indent(indent, depth, out);
    out.push('}');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Build an error carrying the current byte offset, so every syntax
    /// error is locatable in the source text (callers map offsets to lines).
    fn err_at(&self, msg: impl core::fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| self.err_at("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.err_at("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err_at("truncated \\u escape"))?;
                            let hex = core::str::from_utf8(hex)
                                .map_err(|_| self.err_at("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err_at("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.err_at(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err_at("truncated UTF-8"))?;
                    let s =
                        core::str::from_utf8(chunk).map_err(|_| self.err_at("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err_at("invalid number"))?;
        let num = if is_float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| self.err_at(format!("invalid number `{text}`")))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            let _ = stripped;
            Number::I(
                text.parse::<i64>()
                    .map_err(|_| self.err_at(format!("invalid number `{text}`")))?,
            )
        } else {
            Number::U(
                text.parse::<u64>()
                    .map_err(|_| self.err_at(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Num(num))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err_at("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err_at("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        let big = u64::MAX - 3;
        assert_eq!(from_str::<u64>(&to_string(&big).unwrap()).unwrap(), big);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\te\u{1}f — π".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>("[1, 2 , 3]").unwrap(), v);
        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f64>>("2.5").unwrap(), Some(2.5));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u64], vec![], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
    }
}
